"""Table 3 — function-level search space statistics.

Regenerates the paper's Table 3 for the MiBench-like study functions:
unoptimized instructions, blocks, branches, loops; distinct function
instances, attempted phases, largest active sequence length, distinct
control flows, leaf instances; and the max/min/%diff leaf code sizes.

Expected shape versus the paper: the attempted space (15^Len) is
astronomically larger than the distinct-instance count; leaf counts are
small relative to instance counts (the DAG converges); code size gaps
between best and worst orderings average tens of percent; functions
whose per-level budget is exceeded appear as N/A.
"""

import statistics

from repro.core.stats import format_stats_table

from .conftest import bench_config, write_result


def test_table3(benchmark, enumerated_suite):
    rows = sorted(
        enumerated_suite.values(), key=lambda stat: -stat.insts
    )
    lines = [
        "Table 3 — function-level search space statistics",
        "(caps: see REPRO_BENCH_MAX_NODES / REPRO_BENCH_TIME_LIMIT;",
        " N/A = search exceeded the budget, as in the paper)",
        "",
        format_stats_table(rows),
    ]
    complete = [row for row in rows if row.completed]
    if complete:
        diffs = [
            row.codesize_diff_percent
            for row in complete
            if row.codesize_diff_percent is not None
        ]
        lines += [
            "",
            f"functions fully enumerated : {len(complete)}/{len(rows)}",
            f"average distinct instances : "
            f"{statistics.mean(row.fn_instances for row in complete):.1f}",
            f"average attempted phases   : "
            f"{statistics.mean(row.attempted_phases for row in complete):.1f}",
            f"largest active sequence    : "
            f"{max(row.max_seq_len for row in complete)}",
            f"average codesize %diff     : {statistics.mean(diffs):.1f}%"
            if diffs
            else "average codesize %diff     : N/A",
        ]
    write_result("table3.txt", "\n".join(lines))

    # Time one representative enumeration (the paper's "minutes for
    # most functions" claim, scaled to the simulator).
    from repro.opt import implicit_cleanup
    from repro.programs import compile_benchmark
    from repro.core.enumeration import enumerate_space

    def enumerate_one():
        func = compile_benchmark("sha").functions["rol"]
        implicit_cleanup(func)
        return enumerate_space(func, bench_config())

    result = benchmark.pedantic(enumerate_one, rounds=1, iterations=1)
    assert result.completed
