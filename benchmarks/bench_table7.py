"""Table 7 — batch vs probabilistic compilation.

Regenerates the paper's Table 7: every function of every benchmark is
compiled with the conventional fixed-order batch compiler and with the
Figure 8 probabilistic compiler (trained on the enumerated study set),
comparing attempted phases, active phases, compile time, code size, and
dynamic instruction counts (whole-benchmark execution, attributed per
function by the RTL interpreter).

Expected shape versus the paper: the probabilistic compiler attempts
roughly a fifth of the phases (the paper: 230 -> 48 on average), takes
well under half the compile time (the paper: under a third), while code
size and dynamic counts stay within a few percent of batch (ratios
about 1.0, occasionally better or slightly worse).
"""

from repro.core.batch import BatchCompiler
from repro.core.probabilistic import ProbabilisticCompiler
from repro.programs import PROGRAMS, compile_benchmark
from repro.vm import Interpreter

from .conftest import write_result


def compile_all(compiler_factory):
    """Compile every benchmark; returns (reports, runs)."""
    reports = {}
    runs = {}
    for bench_name, bench in PROGRAMS.items():
        program = compile_benchmark(bench_name)
        compiler = compiler_factory()
        for function_name in program.functions:
            reports[(bench_name, function_name)] = compiler.compile(
                program.functions[function_name]
            )
        runs[bench_name] = Interpreter(program, fuel=60_000_000).run(bench.entry)
    return reports, runs


def test_table7(benchmark, interactions):
    batch_reports, batch_runs = compile_all(BatchCompiler)
    prob_reports, prob_runs = compile_all(
        lambda: ProbabilisticCompiler(interactions)
    )

    # correctness first: both compilers must agree on every checksum
    for bench_name, bench in PROGRAMS.items():
        assert batch_runs[bench_name].value == prob_runs[bench_name].value

    header = (
        f"{'function':30s} {'batch':>13s} {'prob':>13s} "
        f"{'time':>6s} {'size':>6s} {'speed':>6s}"
    )
    lines = [
        "Table 7 — old batch vs probabilistic compilation",
        "(att/act = attempted/active phases; time/size/speed = prob/batch ratios;",
        " speed uses dynamic instruction counts from whole-benchmark runs)",
        "",
        header,
        "-" * len(header),
    ]
    totals = dict(batch_att=0, prob_att=0, batch_act=0, prob_act=0,
                  batch_time=0.0, prob_time=0.0)
    size_ratios, speed_ratios = [], []
    for key in sorted(batch_reports):
        bench_name, function_name = key
        rb, rp = batch_reports[key], prob_reports[key]
        totals["batch_att"] += rb.attempted
        totals["prob_att"] += rp.attempted
        totals["batch_act"] += rb.active
        totals["prob_act"] += rp.active
        totals["batch_time"] += rb.elapsed
        totals["prob_time"] += rp.elapsed
        size_ratio = rp.code_size / rb.code_size if rb.code_size else 1.0
        size_ratios.append(size_ratio)
        b_dyn = batch_runs[bench_name].per_function.get(function_name)
        p_dyn = prob_runs[bench_name].per_function.get(function_name)
        if b_dyn and p_dyn:
            speed_ratios.append(p_dyn / b_dyn)
            speed_text = f"{p_dyn / b_dyn:6.3f}"
        else:
            speed_text = "   N/A"
        time_ratio = rp.elapsed / rb.elapsed if rb.elapsed else 1.0
        lines.append(
            f"{bench_name + '.' + function_name:30s} "
            f"{rb.attempted:>7d}/{rb.active:<5d} "
            f"{rp.attempted:>7d}/{rp.active:<5d} "
            f"{time_ratio:6.3f} {size_ratio:6.3f} {speed_text}"
        )
    lines.append("-" * len(header))
    n = len(batch_reports)
    lines += [
        f"average attempted phases : batch {totals['batch_att']/n:.1f} -> "
        f"probabilistic {totals['prob_att']/n:.1f} "
        f"(ratio {totals['prob_att']/totals['batch_att']:.3f}; paper: 230.3 -> 47.7)",
        f"average active phases    : batch {totals['batch_act']/n:.1f} -> "
        f"probabilistic {totals['prob_act']/n:.1f} (paper: 8.9 -> 9.6)",
        f"compile-time ratio       : "
        f"{totals['prob_time']/totals['batch_time']:.3f} (paper: 0.297)",
        f"code-size ratio          : {sum(size_ratios)/len(size_ratios):.3f} "
        "(paper: 1.015)",
        f"dynamic-count ratio      : "
        f"{sum(speed_ratios)/len(speed_ratios):.3f} (paper: 1.005)"
        if speed_ratios
        else "dynamic-count ratio      : N/A",
    ]
    # Ablation: a small probability floor (phases are only attempted
    # when their activity probability clears it) — the "taking phase
    # benefits into account" refinement the paper's section 6 suggests.
    floor_reports, floor_runs = compile_all(
        lambda: ProbabilisticCompiler(interactions, threshold=0.05)
    )
    for bench_name in PROGRAMS:
        assert floor_runs[bench_name].value == batch_runs[bench_name].value
    floor_att = sum(report.attempted for report in floor_reports.values())
    floor_sizes = [
        floor_reports[key].code_size / batch_reports[key].code_size
        for key in batch_reports
        if batch_reports[key].code_size
    ]
    # Ablation 2: the section 6 refinement — weight selection by each
    # phase's measured code-size benefit, not just P(active).
    benefit_reports, benefit_runs = compile_all(
        lambda: ProbabilisticCompiler(interactions, use_benefits=True)
    )
    for bench_name in PROGRAMS:
        assert benefit_runs[bench_name].value == batch_runs[bench_name].value
    benefit_att = sum(report.attempted for report in benefit_reports.values())
    benefit_sizes = [
        benefit_reports[key].code_size / batch_reports[key].code_size
        for key in batch_reports
        if batch_reports[key].code_size
    ]
    lines += [
        "",
        "ablation — probability floor 0.05 (skip near-zero-probability attempts):",
        f"  attempted-phase ratio  : {floor_att/totals['batch_att']:.3f}",
        f"  code-size ratio        : {sum(floor_sizes)/len(floor_sizes):.3f}",
        "",
        "ablation — benefit-weighted selection (the section 6 refinement):",
        f"  attempted-phase ratio  : {benefit_att/totals['batch_att']:.3f}",
        f"  code-size ratio        : {sum(benefit_sizes)/len(benefit_sizes):.3f}",
        "",
        "note: this compiler's batch baseline already attempts ~4x fewer",
        "phases than VPO's (its fixpoint loop is tighter), so the ratio",
        "has less headroom than the paper's 230 -> 48; the shape — large",
        "attempted-phase reduction at unchanged code quality — holds.",
    ]
    write_result("table7.txt", "\n".join(lines))

    # the paper's headline: large attempted-phase reduction at equal
    # quality (scaled to this baseline's headroom)
    assert totals["prob_att"] < totals["batch_att"] * 0.7
    assert floor_att < totals["batch_att"] * 0.55

    def probabilistic_compile_once():
        program = compile_benchmark("sha")
        compiler = ProbabilisticCompiler(interactions)
        for function_name in program.functions:
            compiler.compile(program.functions[function_name])

    benchmark.pedantic(probabilistic_compile_once, rounds=3, iterations=1)
