"""Semantic collapse — measured pruning versus the syntactic space.

For the six collapse study seeds this regenerates the Table 3-style
node/leaf counts under both collapse modes and records the semantic
pruning each seed gets on top of the paper's remap+CRC dedup, the
proof-outcome breakdown (proved / co-execution-tested / splits), and —
per seed — how many leaves are *globally optimal with respect to the
phase set* (leaves achieving the minimum leaf code size, the paper's
optimization objective).

Hard invariants checked on every seed: the semantic space never
exceeds the syntactic one, and no merge candidate is ever refuted
(a refuted digest collision would be a canonicalizer bug).

Results land in ``benchmarks/results/collapse.json``; the measured
numbers quoted in ``docs/COLLAPSE.md`` come from this run.
"""

import json

from repro.core.enumeration import enumerate_space
from repro.opt import implicit_cleanup
from repro.programs import compile_benchmark

from .conftest import RESULTS_DIR, bench_config

#: the collapse study seeds: one function per study benchmark, all six
#: enumerable under the default caps in both modes
COLLAPSE_SEEDS = [
    ("bitcount", "ntbl_bitcount"),
    ("dijkstra", "next_rand"),
    ("fft", "fcos"),
    ("jpeg", "descale"),
    ("sha", "rol"),
    ("stringsearch", "set_pattern"),
]


def _seed(bench_name, function_name):
    program = compile_benchmark(bench_name)
    func = program.functions[function_name]
    implicit_cleanup(func)
    return program, func


def _space_row(result):
    dag = result.dag
    leaves = dag.leaves()
    row = {
        "nodes": len(dag),
        "leaves": len(leaves),
        "attempted": result.attempted_phases,
        "depth": dag.depth(),
        "completed": result.completed,
    }
    if leaves:
        best = min(leaf.num_insts for leaf in leaves)
        row["min_leaf_codesize"] = best
        row["max_leaf_codesize"] = max(leaf.num_insts for leaf in leaves)
        # the paper's "globally optimal w.r.t. the phase set": leaves
        # whose code size equals the best any ordering achieves
        row["optimal_leaves"] = sum(
            1 for leaf in leaves if leaf.num_insts == best
        )
    return row


def test_collapse_pruning(benchmark):
    seeds = {}
    for bench_name, function_name in COLLAPSE_SEEDS:
        label = f"{bench_name}.{function_name}"
        program, func = _seed(bench_name, function_name)
        syntactic = enumerate_space(func.clone(), bench_config())
        semantic = enumerate_space(
            func.clone(),
            bench_config(collapse="semantic", program=program),
        )
        stats = semantic.collapse_stats
        assert stats is not None, label
        assert stats["refuted"] == 0, label
        row = {
            "syntactic": _space_row(syntactic),
            "semantic": _space_row(semantic),
            "collapse_stats": stats,
        }
        if syntactic.completed and semantic.completed:
            assert row["semantic"]["nodes"] <= row["syntactic"]["nodes"], label
            # semantic merging never changes what the best ordering
            # can achieve — only how many instances stand for it
            assert (
                row["semantic"]["min_leaf_codesize"]
                == row["syntactic"]["min_leaf_codesize"]
            ), label
            pruned = row["syntactic"]["nodes"] - row["semantic"]["nodes"]
            row["pruned_nodes"] = pruned
            row["pruned_percent"] = round(
                100.0 * pruned / row["syntactic"]["nodes"], 1
            )
        seeds[label] = row

    complete = [row for row in seeds.values() if "pruned_percent" in row]
    summary = {
        "seeds_complete": len(complete),
        "seeds_total": len(seeds),
        "total_refuted": sum(
            row["collapse_stats"]["refuted"] for row in seeds.values()
        ),
        "total_merged": sum(
            row["collapse_stats"]["merged"] for row in seeds.values()
        ),
    }
    if complete:
        summary["mean_pruned_percent"] = round(
            sum(row["pruned_percent"] for row in complete) / len(complete), 1
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"seeds": seeds, "summary": summary}
    (RESULTS_DIR / "collapse.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\n{json.dumps(summary, indent=2)}\n")

    # Time the semantic enumeration of the representative seed (the
    # proof/collapse overhead the pruning pays for).
    program, func = _seed("sha", "rol")

    def enumerate_semantic():
        return enumerate_space(
            func.clone(),
            bench_config(collapse="semantic", program=program),
        )

    result = benchmark.pedantic(enumerate_semantic, rounds=1, iterations=1)
    assert result.completed
