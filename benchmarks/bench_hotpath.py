"""Hot-path expansion engine benchmark: edge throughput, then vs now.

Measures enumeration **edge throughput** (attempted phase transitions
per second) in three engine configurations:

``legacy``
    The seed-era slow path, reconstructed via the compatibility
    toggles: table-driven CRC-32, render-then-hash fingerprints, no
    analysis cache, and the double-clone ``apply_phase`` flow.
``hotpath``
    Today's defaults — zlib CRC, streaming fingerprints, cached
    dataflow analyses, single-clone phase attempts — plus a cold
    transition memo that fills as it runs.
``memo_warm``
    The same engine re-run against the now-warm memo: every transition
    is served from the table, the ceiling of the memoization.

The headline ``speedup`` is legacy → memo-warm: the engine exists to
serve re-reached transitions from the table (a cold ``hotpath`` run
still executes every phase for real, which dominates its wall-clock,
so ``cold_speedup`` is reported separately and is modest).

Each run appends one entry to ``benchmarks/results/hotpath.json`` —
a *trajectory*, not a snapshot, so regressions are visible in history
(see docs/PERFORMANCE.md for how to read it).  The committed first
entry of each sweep kind is the baseline; ``--check`` fails when the
measured speedup drops more than 25 % below it, and the pytest
wrapper enforces the >=3x floor on the full sweep.

CLI::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import crc as crc_mod
from repro.core import fingerprint as fp_mod
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.memo import TransitionMemo
from repro.analysis import set_cache_enabled
from repro.opt import implicit_cleanup, set_legacy_clone_mode
from repro.programs import compile_benchmark

try:  # pytest collection vs `python benchmarks/bench_hotpath.py`
    from .conftest import RESULTS_DIR
except ImportError:  # pragma: no cover - CLI entry
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"

#: the full sweep mirrors bench_parallel's: complete spaces, big
#: enough that per-edge work dominates
SWEEP = [
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("jpeg", "rgb_to_y"),
    ("fft", "fcos"),
]
#: one small function for the CI perf-smoke job
QUICK_SWEEP = [("jpeg", "descale")]

RESULTS_PATH = RESULTS_DIR / "hotpath.json"

#: ``--check`` tolerance: fail when the speedup falls more than this
#: fraction below the committed baseline entry
REGRESSION_TOLERANCE = 0.25
#: the tentpole acceptance floor on the full sweep
SPEEDUP_FLOOR = 3.0


def _functions(sweep):
    functions = []
    for bench_name, function_name in sweep:
        program = compile_benchmark(bench_name)
        func = program.functions[function_name]
        implicit_cleanup(func)
        functions.append((f"{bench_name}.{function_name}", func))
    return functions


def _legacy_toggles(enabled: bool):
    """Flip every compatibility toggle at once; returns the previous
    settings so the caller can restore them."""
    return (
        crc_mod.set_reference_mode(enabled),
        fp_mod.set_legacy_mode(enabled),
        set_cache_enabled(not enabled),
        set_legacy_clone_mode(enabled),
    )


def _restore_toggles(previous) -> None:
    crc_mod.set_reference_mode(previous[0])
    fp_mod.set_legacy_mode(previous[1])
    set_cache_enabled(previous[2])
    set_legacy_clone_mode(previous[3])


def _measure(functions, memo=None, sanitize=None, repeats: int = 2):
    """Best-of-N wall and total edges for one engine configuration."""
    best_wall = None
    edges = 0
    for _ in range(repeats):
        start = time.perf_counter()
        edges = 0
        for _label, func in functions:
            result = enumerate_space(
                func, EnumerationConfig(memo=memo, sanitize=sanitize)
            )
            assert result.completed
            edges += result.attempted_phases
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return best_wall, edges


def run_benchmark(quick: bool = False) -> dict:
    sweep = QUICK_SWEEP if quick else SWEEP
    functions = _functions(sweep)

    previous = _legacy_toggles(True)
    try:
        legacy_wall, edges = _measure(functions)
    finally:
        _restore_toggles(previous)

    # cold hot-path: the new engine with no memo at all, so repeats
    # measure the same cold work rather than warming themselves up
    hot_wall, hot_edges = _measure(functions)
    assert hot_edges == edges, "legacy and hot-path edge counts diverged"
    memo = TransitionMemo()
    for _label, func in functions:  # fill the memo (untimed)
        enumerate_space(func, EnumerationConfig(memo=memo))
    warm_wall, _ = _measure(functions, memo=memo)

    # the sanitizer's fast mode on the cold engine: every edge gets
    # the structural/machine/frame/liveness battery (docs/STATIC_ANALYSIS.md)
    san_wall, san_edges = _measure(functions, sanitize="fast")
    assert san_edges == edges, "sanitized edge count diverged"

    entry = {
        "sweep": "quick" if quick else "full",
        "functions": [label for label, _func in functions],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count(),
        "edges": edges,
        "legacy_wall_seconds": round(legacy_wall, 4),
        "hotpath_cold_wall_seconds": round(hot_wall, 4),
        "memo_warm_wall_seconds": round(warm_wall, 4),
        "legacy_edges_per_second": round(edges / legacy_wall, 1),
        "hotpath_cold_edges_per_second": round(edges / hot_wall, 1),
        "memo_warm_edges_per_second": round(edges / warm_wall, 1),
        #: infrastructure-only gain (streaming fingerprints, zlib CRC,
        #: analysis cache, single clone) with every transition still
        #: executed for real — phases dominate, so this is modest
        "cold_speedup": round(legacy_wall / hot_wall, 2),
        #: the headline: the memoized engine serving re-reached
        #: transitions from the table, vs the pre-PR slow path
        "speedup": round(legacy_wall / warm_wall, 2),
        "sanitize_fast_wall_seconds": round(san_wall, 4),
        "sanitize_fast_edges_per_second": round(edges / san_wall, 1),
        #: cost of ``--sanitize=fast`` relative to the cold hot path
        #: (1.0 = free); the full-mode cost is in docs/STATIC_ANALYSIS.md
        "sanitize_fast_overhead": round(san_wall / hot_wall, 2),
    }
    return entry


def load_trajectory() -> list:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())["trajectory"]
    return []


def append_entry(entry: dict) -> None:
    trajectory = load_trajectory()
    trajectory.append(entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )


def check_against_baseline(entry: dict) -> None:
    """Fail (SystemExit) on a >25 % speedup regression vs the first
    committed entry of the same sweep kind."""
    baseline = next(
        (e for e in load_trajectory() if e["sweep"] == entry["sweep"]), None
    )
    if baseline is None:
        print("no committed baseline for this sweep; recording only")
        return
    floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
    status = "ok" if entry["speedup"] >= floor else "REGRESSION"
    print(
        f"speedup {entry['speedup']}x vs baseline {baseline['speedup']}x "
        f"(floor {floor:.2f}x): {status}"
    )
    if entry["speedup"] < floor:
        raise SystemExit(
            f"hot-path regression: {entry['speedup']}x is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the baseline "
            f"{baseline['speedup']}x"
        )


def test_hotpath_speedup():
    """The tentpole acceptance gate: >=3x edge throughput on the sweep."""
    entry = run_benchmark(quick=False)
    append_entry(entry)
    print(f"\n{json.dumps(entry, indent=2)}\n[appended to {RESULTS_PATH}]")
    assert entry["speedup"] >= SPEEDUP_FLOOR
    # the infrastructure alone must never be a slowdown
    assert entry["cold_speedup"] >= 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small function (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on a >25%% speedup regression vs the committed baseline",
    )
    args = parser.parse_args(argv)
    entry = run_benchmark(quick=args.quick)
    print(json.dumps(entry, indent=2))
    if args.check:
        check_against_baseline(entry)
    append_entry(entry)
    print(f"[appended to {RESULTS_PATH}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
