"""Hot-path expansion engine benchmark: edge throughput, then vs now.

Measures enumeration **edge throughput** (attempted phase transitions
per second) in four engine configurations:

``legacy``
    The seed-era slow path, reconstructed via the compatibility
    toggles: table-driven CRC-32, render-then-hash fingerprints, no
    analysis cache, and the double-clone ``apply_phase`` flow.  Pinned
    to ``engine="object"`` — the toggles predate the flat engine and
    only reconstruct the object-IR path.
``object``
    Today's object-IR engine — zlib CRC, streaming fingerprints,
    cached dataflow analyses, single-clone phase attempts — with no
    memo, so every phase executes for real.
``flat``
    The default engine: phases attempted as kernels over the packed
    array-of-tables IR (``repro.ir.flat``), object IR materialized
    only for the few unported phases.  Also memo-free; this is the
    cold-engine tentpole configuration.
``memo_warm``
    The default engine re-run against a warm transition memo: every
    transition is served from the table, the ceiling of memoization.

Two headline ratios: ``speedup`` (legacy → memo-warm, the memoization
ceiling) and ``flat_speedup`` (legacy → cold flat engine: real phase
executions, just a faster IR under them).  ``cold_speedup`` (legacy →
cold object engine) isolates the infrastructure share.

Each run updates ``benchmarks/results/hotpath.json`` — a *trajectory*,
not a snapshot, so regressions are visible in history (see
docs/PERFORMANCE.md).  Entries are keyed by (sweep, git revision): a
re-run at the same revision replaces its predecessor, and each sweep
keeps its committed first entry (the baseline) plus the most recent
``TRAJECTORY_CAP - 1`` measurements.  ``--check`` fails when

* ``speedup`` or ``flat_speedup`` drops more than 25 % below the
  baseline entry of the same sweep,
* the cold flat engine falls below the absolute edges/s floor
  (full sweep only; the floor is far under typical hardware), or
* the flat and object engines disagree on any function's DAG
  fingerprint (bit-identity is the flat engine's contract).

CLI::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from repro.core import crc as crc_mod
from repro.core import fingerprint as fp_mod
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.memo import TransitionMemo
from repro.analysis import set_cache_enabled
from repro.opt import implicit_cleanup, set_legacy_clone_mode
from repro.programs import compile_benchmark
from repro.service.executor import _dag_fingerprint

try:  # pytest collection vs `python benchmarks/bench_hotpath.py`
    from .conftest import RESULTS_DIR
except ImportError:  # pragma: no cover - CLI entry
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"

#: the full sweep mirrors bench_parallel's: complete spaces, big
#: enough that per-edge work dominates
SWEEP = [
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("jpeg", "rgb_to_y"),
    ("fft", "fcos"),
]
#: one small function for the CI perf-smoke job
QUICK_SWEEP = [("jpeg", "descale")]

RESULTS_PATH = RESULTS_DIR / "hotpath.json"

#: ``--check`` tolerance: fail when a speedup falls more than this
#: fraction below the committed baseline entry
REGRESSION_TOLERANCE = 0.25
#: the original tentpole acceptance floor (legacy -> memo-warm, full sweep)
SPEEDUP_FLOOR = 3.0
#: the flat-engine tentpole floor (legacy -> cold flat, full sweep):
#: clean trials measure ~10x; the enforced floor leaves headroom for
#: noisy shared single-core CI runners (observed spread 6.5-10x)
FLAT_SPEEDUP_FLOOR = 5.0
#: absolute cold-throughput sanity floor for ``--check`` on the full
#: sweep — an order of magnitude under the ~100k edges/s the flat
#: engine measures, so it only trips on a real collapse, not slow CI
FLAT_COLD_EDGES_FLOOR = 15_000.0
#: per-sweep history bound: the baseline entry plus this many recent
TRAJECTORY_CAP = 12


def _functions(sweep):
    functions = []
    for bench_name, function_name in sweep:
        program = compile_benchmark(bench_name)
        func = program.functions[function_name]
        implicit_cleanup(func)
        functions.append((f"{bench_name}.{function_name}", func))
    return functions


def _legacy_toggles(enabled: bool):
    """Flip every compatibility toggle at once; returns the previous
    settings so the caller can restore them."""
    return (
        crc_mod.set_reference_mode(enabled),
        fp_mod.set_legacy_mode(enabled),
        set_cache_enabled(not enabled),
        set_legacy_clone_mode(enabled),
    )


def _restore_toggles(previous) -> None:
    crc_mod.set_reference_mode(previous[0])
    fp_mod.set_legacy_mode(previous[1])
    set_cache_enabled(previous[2])
    set_legacy_clone_mode(previous[3])


def _measure(functions, memo=None, sanitize=None, engine="flat", repeats=3):
    """Best-of-N wall and total edges for one engine configuration.

    Content-keyed process caches (the object engine's analysis cache,
    the flat engine's block-level kernel caches) warm across repeats;
    best-of-N measures the steady state either engine reaches after
    its first pass, which is also what repeated enumerations in one
    process actually pay.
    """
    best_wall = None
    edges = 0
    for _ in range(repeats):
        start = time.perf_counter()
        edges = 0
        for _label, func in functions:
            result = enumerate_space(
                func,
                EnumerationConfig(memo=memo, sanitize=sanitize, engine=engine),
            )
            assert result.completed
            edges += result.attempted_phases
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return best_wall, edges


def _engines_agree(functions) -> bool:
    """Bit-identity witness: both engines produce the same DAG."""
    for _label, func in functions:
        flat = enumerate_space(func, EnumerationConfig(engine="flat"))
        obj = enumerate_space(func, EnumerationConfig(engine="object"))
        if _dag_fingerprint(flat.dag) != _dag_fingerprint(obj.dag):
            return False
    return True


def _git_describe():
    """The working tree's revision label, or None outside a checkout."""
    try:
        probe = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    label = probe.stdout.strip()
    return label if probe.returncode == 0 and label else None


def run_benchmark(quick: bool = False) -> dict:
    sweep = QUICK_SWEEP if quick else SWEEP
    functions = _functions(sweep)

    previous = _legacy_toggles(True)
    try:
        legacy_wall, edges = _measure(functions, engine="object")
    finally:
        _restore_toggles(previous)

    # cold engines: no memo at all, so repeats measure the same cold
    # work rather than warming themselves up
    object_wall, object_edges = _measure(functions, engine="object")
    assert object_edges == edges, "legacy and object edge counts diverged"
    flat_wall, flat_edges = _measure(functions, engine="flat")
    assert flat_edges == edges, "flat and object edge counts diverged"
    agree = _engines_agree(functions)

    memo = TransitionMemo()
    for _label, func in functions:  # fill the memo (untimed)
        enumerate_space(func, EnumerationConfig(memo=memo))
    warm_wall, _ = _measure(functions, memo=memo)

    # the sanitizer's fast mode: every edge gets the structural/machine/
    # frame/liveness battery (docs/STATIC_ANALYSIS.md).  Guarded runs
    # always take the object path, whatever the configured engine.
    san_wall, san_edges = _measure(functions, sanitize="fast")
    assert san_edges == edges, "sanitized edge count diverged"

    entry = {
        "sweep": "quick" if quick else "full",
        "functions": [label for label, _func in functions],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git": _git_describe(),
        "cpu_count": os.cpu_count(),
        "edges": edges,
        "legacy_wall_seconds": round(legacy_wall, 4),
        "hotpath_cold_wall_seconds": round(object_wall, 4),
        "flat_cold_wall_seconds": round(flat_wall, 4),
        "memo_warm_wall_seconds": round(warm_wall, 4),
        "legacy_edges_per_second": round(edges / legacy_wall, 1),
        "hotpath_cold_edges_per_second": round(edges / object_wall, 1),
        "flat_cold_edges_per_second": round(edges / flat_wall, 1),
        "memo_warm_edges_per_second": round(edges / warm_wall, 1),
        #: infrastructure-only gain on the object engine (streaming
        #: fingerprints, zlib CRC, analysis cache, single clone) with
        #: every transition still executed for real — modest
        "cold_speedup": round(legacy_wall / object_wall, 2),
        #: the flat-engine tentpole: real phase executions over the
        #: packed IR, vs the pre-PR slow path
        "flat_speedup": round(legacy_wall / flat_wall, 2),
        #: the memoization ceiling: re-reached transitions served from
        #: the table, vs the pre-PR slow path
        "speedup": round(legacy_wall / warm_wall, 2),
        #: the flat engine's contract, measured: same DAG, both engines
        "engines_agree": agree,
        "sanitize_fast_wall_seconds": round(san_wall, 4),
        "sanitize_fast_edges_per_second": round(edges / san_wall, 1),
        #: cost of ``--sanitize=fast`` relative to the cold object
        #: engine (guards always run there); full-mode cost is in
        #: docs/STATIC_ANALYSIS.md
        "sanitize_fast_overhead": round(san_wall / object_wall, 2),
    }
    return entry


def load_trajectory() -> list:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())["trajectory"]
    return []


def _trimmed(trajectory: list) -> list:
    """One entry per (sweep, git) revision, capped per sweep.

    The first entry of each sweep is the committed baseline and always
    survives; among the rest, a later measurement at the same revision
    supersedes the earlier one, and only the most recent
    ``TRAJECTORY_CAP - 1`` are kept.
    """
    result = []
    for sweep in dict.fromkeys(e["sweep"] for e in trajectory):
        entries = [e for e in trajectory if e["sweep"] == sweep]
        baseline, rest = entries[0], entries[1:]
        deduped = []
        for entry in rest:
            git = entry.get("git")
            if git is not None:
                deduped = [e for e in deduped if e.get("git") != git]
            deduped.append(entry)
        result.append(baseline)
        result.extend(deduped[-(TRAJECTORY_CAP - 1):])
    return result


def append_entry(entry: dict) -> None:
    trajectory = _trimmed(load_trajectory() + [entry])
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )


def check_against_baseline(entry: dict) -> None:
    """The regression gate behind ``--check`` (SystemExit on failure).

    Ratio checks compare against the first committed entry of the same
    sweep (ratios are machine-invariant: numerator and denominator come
    from the same run).  The absolute cold-throughput floor and the
    engine-equivalence witness need no baseline.
    """
    failures = []
    if not entry["engines_agree"]:
        failures.append(
            "flat and object engines produced different DAG fingerprints"
        )
    if (
        entry["sweep"] == "full"
        and entry["flat_cold_edges_per_second"] < FLAT_COLD_EDGES_FLOOR
    ):
        failures.append(
            f"cold flat engine at {entry['flat_cold_edges_per_second']} "
            f"edges/s, below the {FLAT_COLD_EDGES_FLOOR:.0f} floor"
        )
    baseline = next(
        (e for e in load_trajectory() if e["sweep"] == entry["sweep"]), None
    )
    if baseline is None:
        print("no committed baseline for this sweep; recording only")
    else:
        for key in ("speedup", "flat_speedup"):
            reference = baseline.get(key)
            if reference is None:
                continue  # baseline predates the flat engine
            floor = reference * (1.0 - REGRESSION_TOLERANCE)
            status = "ok" if entry[key] >= floor else "REGRESSION"
            print(
                f"{key} {entry[key]}x vs baseline {reference}x "
                f"(floor {floor:.2f}x): {status}"
            )
            if entry[key] < floor:
                failures.append(
                    f"{key} {entry[key]}x is more than "
                    f"{REGRESSION_TOLERANCE:.0%} below the baseline "
                    f"{reference}x"
                )
    if failures:
        raise SystemExit("hot-path regression: " + "; ".join(failures))


def test_hotpath_speedup():
    """The tentpole acceptance gates: memo-warm >=3x and cold flat
    >=8x edge throughput on the full sweep, with both engines in
    bit-identical agreement."""
    entry = run_benchmark(quick=False)
    append_entry(entry)
    print(f"\n{json.dumps(entry, indent=2)}\n[recorded in {RESULTS_PATH}]")
    assert entry["engines_agree"]
    assert entry["speedup"] >= SPEEDUP_FLOOR
    assert entry["flat_speedup"] >= FLAT_SPEEDUP_FLOOR
    # the infrastructure alone must never be a slowdown
    assert entry["cold_speedup"] >= 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small function (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on a speedup regression vs the committed baseline, "
        "a cold-throughput collapse, or a flat/object DAG mismatch",
    )
    args = parser.parse_args(argv)
    entry = run_benchmark(quick=args.quick)
    print(json.dumps(entry, indent=2))
    if args.check:
        check_against_baseline(entry)
    append_entry(entry)
    print(f"[recorded in {RESULTS_PATH}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
