"""Shared fixtures for the experiment-reproduction benchmarks.

Every table and figure of the paper's evaluation has a bench module:

=====================  =============================================
bench module           paper artifact
=====================  =============================================
bench_table3.py        Table 3 — per-function search space statistics
bench_table4.py        Table 4 — enabling probabilities
bench_table5.py        Table 5 — disabling probabilities
bench_table6.py        Table 6 — independence probabilities
bench_table7.py        Table 7 — batch vs probabilistic compilation
bench_figures_1_2_4.py Figures 1/2/4 — naive tree vs pruned tree vs DAG
bench_figure6.py       Figure 6 — search enhancement speedup
bench_figure7.py       Figure 7 — weighted DAG statistics
=====================  =============================================

Each bench writes its rendered table to ``benchmarks/results/`` and
also times the underlying computation with pytest-benchmark.

Environment knobs (the defaults keep a full run around 10-20 minutes):

- ``REPRO_BENCH_FULL=1``       — study every benchmark function
  (otherwise a representative subset);
- ``REPRO_BENCH_MAX_NODES``    — per-function instance cap (default 4000);
- ``REPRO_BENCH_TIME_LIMIT``   — per-function seconds cap (default 45);
- ``REPRO_BENCH_JOBS``         — enumerate the study set with the
  parallel service (``repro.parallel``) at this worker count;
- ``REPRO_BENCH_STORE``        — persistent merged-space store
  directory; completed spaces are reused across runs.

Every bench run also records per-test wall-clock timings in
``benchmarks/results/timings.json``.

Functions whose space exceeds the caps are reported N/A, exactly as
the paper marks its two over-budget functions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.core.stats import FunctionSpaceStats, static_function_facts
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS, compile_benchmark

RESULTS_DIR = Path(__file__).parent / "results"

#: representative subset: a mix of tiny/medium/loopy/straight-line
#: functions across all six benchmarks; most enumerate completely
#: under the default caps, a few exceed them and report N/A (as the
#: paper's fft functions do)
QUICK_STUDY = [
    ("bitcount", "bit_count"),  # exceeds default caps -> N/A
    ("bitcount", "ntbl_bitcount"),
    ("bitcount", "tbl_bitcount"),
    ("bitcount", "main"),
    ("dijkstra", "next_rand"),
    ("dijkstra", "enqueue_min"),  # exceeds default caps -> N/A
    ("fft", "fcos"),
    ("jpeg", "descale"),
    ("jpeg", "range_limit"),
    ("jpeg", "rgb_to_y"),
    ("jpeg", "rgb_to_cb"),
    ("sha", "rol"),
    ("sha", "sha_init"),
    ("stringsearch", "set_pattern"),
    ("stringsearch", "strsearch"),
    ("stringsearch", "plant_pattern"),  # exceeds default caps -> N/A
    ("stringsearch", "bmh_init"),  # exceeds default caps -> N/A
]


def bench_config(**overrides) -> EnumerationConfig:
    defaults = dict(
        max_nodes=int(os.environ.get("REPRO_BENCH_MAX_NODES", "4000")),
        time_limit=float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "45")),
    )
    defaults.update(overrides)
    return EnumerationConfig(**defaults)


def parallel_knobs():
    """(jobs, store_dir) from the environment; (1, None) = serial."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    store_dir = os.environ.get("REPRO_BENCH_STORE") or None
    return jobs, store_dir


def study_functions():
    if os.environ.get("REPRO_BENCH_FULL"):
        return [
            (program.name, function_name)
            for program in PROGRAMS.values()
            for function_name in program.study_functions
        ]
    return list(QUICK_STUDY)


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def enumerated_suite():
    """(bench, function) -> FunctionSpaceStats for the study set.

    With ``REPRO_BENCH_JOBS>1`` or ``REPRO_BENCH_STORE`` set, the study
    set is enumerated through the sharded parallel service; the merged
    spaces are bit-identical to serial, so every downstream table is
    unchanged.
    """
    study = study_functions()
    functions, all_facts = {}, {}
    for bench_name, function_name in study:
        program = compile_benchmark(bench_name)
        func = program.functions[function_name]
        implicit_cleanup(func)
        functions[(bench_name, function_name)] = func
        all_facts[(bench_name, function_name)] = static_function_facts(func)

    jobs, store_dir = parallel_knobs()
    if jobs > 1 or store_dir:
        from repro.parallel import (
            EnumerationRequest,
            ParallelConfig,
            ParallelEnumerator,
            SpaceStore,
        )

        requests = [
            EnumerationRequest(f"{bench}.{name}", functions[(bench, name)])
            for bench, name in study
        ]
        parallel = ParallelConfig(
            jobs=jobs, store=SpaceStore(store_dir) if store_dir else None
        )
        results = dict(
            zip(study, ParallelEnumerator(bench_config(), parallel).enumerate(requests))
        )
    else:
        results = {
            key: enumerate_space(func, bench_config())
            for key, func in functions.items()
        }

    return {
        (bench_name, function_name): FunctionSpaceStats(
            f"{function_name}({bench_name[0]})",
            *all_facts[(bench_name, function_name)],
            results[(bench_name, function_name)],
        )
        for bench_name, function_name in study
    }


_TIMINGS: dict = {}


@pytest.fixture(autouse=True)
def _record_wall_clock(request):
    """Record each bench's wall-clock into results/timings.json."""
    start = time.perf_counter()
    yield
    _TIMINGS[request.node.name] = round(time.perf_counter() - start, 3)


def pytest_sessionfinish(session, exitstatus):
    if not _TIMINGS:
        return
    jobs, store_dir = parallel_knobs()
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "jobs": jobs,
        "store": store_dir,
        "cpu_count": os.cpu_count(),
        "wall_clock_seconds": dict(sorted(_TIMINGS.items())),
        "total_seconds": round(sum(_TIMINGS.values()), 3),
    }
    (RESULTS_DIR / "timings.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


@pytest.fixture(scope="session")
def interactions(enumerated_suite):
    """Tables 4-6 aggregated over the enumerated study set."""
    return analyze_interactions(
        stat.result for stat in enumerated_suite.values()
    )
