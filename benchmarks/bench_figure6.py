"""Figure 6 — enhancements for faster searches.

The paper's section 4.3 enhancements: keep the unoptimized function in
memory and share sequence prefixes by storing each frontier instance,
so evaluating a sequence applies one phase instead of replaying the
whole prefix.  The paper reports a 5-10x reduction in search time.

This bench enumerates the same function with the enhancements on and
off and reports the number of phase applications and wall-clock times.

Expected shape versus the paper: the phases-applied ratio grows with
the depth of the space (each replayed sequence costs its whole length)
and lands well above 2x for non-trivial functions; wall-clock follows.
"""

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.opt import implicit_cleanup
from repro.programs import compile_benchmark

from .conftest import write_result

STUDY = [
    ("dijkstra", "next_rand"),
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("bitcount", "tbl_bitcount"),
]


def enumerate_with(bench_name, function_name, share_prefixes):
    func = compile_benchmark(bench_name).functions[function_name]
    implicit_cleanup(func)
    return enumerate_space(
        func,
        EnumerationConfig(
            share_prefixes=share_prefixes, max_nodes=3000, time_limit=120
        ),
    )


def test_figure6(benchmark):
    header = (
        f"{'function':22s} {'naive applies':>14s} {'enhanced':>10s} "
        f"{'ratio':>7s} {'naive s':>8s} {'enh s':>7s}"
    )
    lines = [
        "Figure 6 — phase applications with and without the section 4.3",
        "enhancements (in-memory instances + prefix sharing)",
        "",
        header,
        "-" * len(header),
    ]
    ratios = []
    for bench_name, function_name in STUDY:
        fast = enumerate_with(bench_name, function_name, True)
        slow = enumerate_with(bench_name, function_name, False)
        assert len(fast.dag) == len(slow.dag)  # identical space
        ratio = slow.phases_applied / fast.phases_applied
        ratios.append(ratio)
        lines.append(
            f"{bench_name + '.' + function_name:22s} "
            f"{slow.phases_applied:>14,} {fast.phases_applied:>10,} "
            f"{ratio:>7.1f} {slow.elapsed:>8.2f} {fast.elapsed:>7.2f}"
        )
    lines += [
        "-" * len(header),
        f"average phases-applied ratio: {sum(ratios)/len(ratios):.1f}x "
        "(paper: search time reduced at least 5-10x)",
    ]
    write_result("figure6.txt", "\n".join(lines))
    assert sum(ratios) / len(ratios) > 2.0

    benchmark.pedantic(
        lambda: enumerate_with("sha", "rol", True), rounds=1, iterations=1
    )
