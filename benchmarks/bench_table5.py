"""Table 5 — disabling interaction between optimization phases.

Regenerates the paper's Table 5: for every ordered phase pair (y, x),
the probability that applying x leaves the previously active y dormant,
weighted by the Figure 7 node weights.

Expected shape versus the paper: the diagonal is 1.00 (every phase runs
to its own fixpoint, so it always disables itself); c and k disable o
with probability 1.00 (they require register assignment, after which o
is illegal); i disables u (block reordering removes the jumps useless
jump removal would have).
"""

from repro.core.interactions import analyze_interactions

from .conftest import write_result


def test_table5(benchmark, enumerated_suite, interactions):
    diag = [
        interactions.disabling.get(pid, {}).get(pid)
        for pid in interactions.phase_ids
        if interactions.disabling.get(pid, {}).get(pid) is not None
    ]
    lines = [
        "Table 5 — disabling probabilities (row disabled by column)",
        "",
        interactions.format_disabling(),
        "",
        "headline checks vs the paper:",
        f"  self-disabling diagonal all 1.00: "
        f"{bool(diag) and all(v == 1.0 for v in diag)} "
        f"({len(diag)} phases measured)",
        f"  P(o disabled by c) = "
        f"{interactions.disabling.get('o', {}).get('c', 0):.2f}   (paper: 1.00)",
        f"  P(o disabled by k) = "
        f"{interactions.disabling.get('o', {}).get('k', float('nan')):.2f}"
        "   (paper: 1.00)",
        f"  P(u disabled by i) = "
        f"{interactions.disabling.get('u', {}).get('i', 0):.2f}   (paper: 1.00)",
    ]
    write_result("table5.txt", "\n".join(lines))

    results = [stat.result for stat in enumerated_suite.values()]
    benchmark.pedantic(
        lambda: analyze_interactions(results), rounds=3, iterations=1
    )
