"""Table 4 — enabling interaction between optimization phases.

Regenerates the paper's Table 4: for every ordered phase pair (y, x),
the probability that applying x enables the previously dormant y,
weighted by the Figure 7 node weights; plus the St column (probability
of each phase being active at the start of compilation).

Expected shape versus the paper: s and c are always active at the
start; k is enabled by s (VPO legality) and s strongly re-enabled by k
(allocation's register moves are collapsed by selection); d's row is
empty (branch chaining cleans up after itself); most cells are blank —
phase enabling is sparse.
"""

from repro.core.interactions import analyze_interactions

from .conftest import write_result


def test_table4(benchmark, enumerated_suite, interactions):
    lines = [
        "Table 4 — enabling probabilities (row enabled by column)",
        "",
        interactions.format_enabling(),
        "",
        "headline checks vs the paper:",
        f"  St(s) = {interactions.start.get('s', 0):.2f}   (paper: 1.00)",
        f"  St(c) = {interactions.start.get('c', 0):.2f}   (paper: 1.00)",
        f"  P(k enabled by s) = "
        f"{interactions.enabling.get('k', {}).get('s', 0):.2f}   (paper: 0.93)",
        f"  P(s enabled by k) = "
        f"{interactions.enabling.get('s', {}).get('k', 0):.2f}   (paper: 0.97)",
        f"  d's enabling row empty: "
        f"{all(v < 0.05 for v in interactions.enabling.get('d', {}).values())}"
        "   (paper: d never enabled)",
    ]
    write_result("table4.txt", "\n".join(lines))

    results = [stat.result for stat in enumerated_suite.values()]
    benchmark.pedantic(
        lambda: analyze_interactions(results), rounds=3, iterations=1
    )
