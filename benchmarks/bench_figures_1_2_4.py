"""Figures 1, 2, and 4 — the effect of the two pruning techniques.

Figure 1 shows the naive attempted space (15^n per level); Figure 2 the
tree after dormant-phase detection; Figure 4 the DAG after identical-
instance merging.  For each enumerated study function this bench
reports the three sizes: the naive tree over the measured depth, the
dormant-pruned tree (root-to-node path counts in the DAG — what the
search would visit without merging), and the actual DAG node count.

Expected shape versus the paper: each pruning step buys orders of
magnitude — the naive space is astronomical, the dormant-pruned tree is
large but finite, and the DAG is small enough to enumerate exhaustively.
"""

from .conftest import write_result


def _fmt(value):
    return f"{value:.3e}" if value >= 1e7 else f"{value:,}"


def test_figures_1_2_4(benchmark, enumerated_suite):
    header = (
        f"{'function':22s} {'depth':>5s} {'naive tree (Fig 1)':>20s} "
        f"{'pruned tree (Fig 2)':>20s} {'DAG (Fig 4)':>12s} {'merge factor':>13s}"
    )
    lines = [
        "Figures 1/2/4 — naive space vs dormant-pruned tree vs merged DAG",
        "",
        header,
        "-" * len(header),
    ]
    complete = [
        stat for stat in enumerated_suite.values() if stat.completed
    ]
    for stat in sorted(complete, key=lambda s: -len(s.result.dag)):
        dag = stat.result.dag
        naive = dag.naive_space_size(15)
        tree = dag.tree_size()
        nodes = len(dag)
        lines.append(
            f"{stat.name:22s} {dag.depth():>5d} {_fmt(naive):>20s} "
            f"{_fmt(tree):>20s} {nodes:>12,} {tree / nodes:>13.1f}"
        )
        # the pruning hierarchy must hold
        assert naive >= tree >= nodes
    write_result("figures_1_2_4.txt", "\n".join(lines))

    dag = max(
        (stat.result.dag for stat in complete), key=len, default=None
    )
    assert dag is not None
    benchmark.pedantic(dag.path_counts, rounds=3, iterations=1)
