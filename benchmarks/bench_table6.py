"""Table 6 — independence relationship between optimization phases.

Regenerates the paper's Table 6: for every phase pair active at the
same instance, the probability that applying them in either order
produces identical code, weighted by the node weights.  Independence is
symmetric, and (per the paper) the table is much denser than the
enabling/disabling ones: most phases are usually independent, which is
what makes the space DAG converge to few leaves.
"""

import pytest

from repro.core.interactions import analyze_interactions

from .conftest import write_result


def test_table6(benchmark, enumerated_suite, interactions):
    table = interactions.independence
    pairs = [
        (x, y, value)
        for x, row in table.items()
        for y, value in row.items()
        if x < y
    ]
    dense = [value for (_x, _y, value) in pairs]
    lines = [
        "Table 6 — independence probabilities (symmetric)",
        "",
        interactions.format_independence(),
        "",
        "headline checks vs the paper:",
        f"  measured pairs               : {len(pairs)}",
        f"  mean independence            : "
        f"{sum(dense)/len(dense):.2f}" if dense else "  (no pairs measured)",
        f"  s/c frequently dependent     : "
        f"{table.get('s', {}).get('c', 1.0):.2f}   (paper: 0.22 — both "
        "act on the same code)",
    ]
    write_result("table6.txt", "\n".join(lines))

    # symmetry check
    for x, row in table.items():
        for y, value in row.items():
            assert table[y][x] == pytest.approx(value)

    results = [stat.result for stat in enumerated_suite.values()]
    benchmark.pedantic(
        lambda: analyze_interactions(results), rounds=3, iterations=1
    )
