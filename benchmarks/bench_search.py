"""Search lab benchmark: the strategy zoo vs the exhaustive oracle.

Runs ``repro search-bench`` programmatically: enumerates the full
phase-order space of the six seed functions (one per MiBench program),
prices every instance with the multi-objective cost model, then scores
every registered strategy against the known exhaustive optimum —
distance-to-optimal, probability-of-optimal, and attempted-phase
budget (the paper's Table 3 ``Attempt`` currency).

The leaderboard is written to ``benchmarks/results/search.json``
(overwritten, not appended: the file is the current standings, and the
run is deterministic under the committed seed).  ``--check`` enforces
the oracle invariants on the fresh run:

- no strategy ever reports a fitness below the exhaustive optimum
  (``beats_oracle`` stays ``False`` everywhere — a violation means the
  strategy escaped the enumerated space, which is a correctness bug);
- at least one seed function has a leaf Pareto frontier with >=2
  mutually non-dominated points (the size/count/energy/registers
  trade-off is real, not degenerate).

CLI::

    PYTHONPATH=src python benchmarks/bench_search.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.search.harness import (
    HarnessConfig,
    format_leaderboard,
    quick_config,
    run_search_bench,
    write_leaderboard,
)

try:  # pytest collection vs `python benchmarks/bench_search.py`
    from .conftest import RESULTS_DIR
except ImportError:  # pragma: no cover - CLI entry
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"

RESULTS_PATH = RESULTS_DIR / "search.json"


def check_invariants(leaderboard: dict) -> None:
    """Fail (SystemExit) when an oracle invariant is violated."""
    cheaters = [
        (label, name)
        for label, entry in leaderboard["functions"].items()
        for name, scores in entry["strategies"].items()
        if scores["beats_oracle"]
    ]
    if cheaters:
        raise SystemExit(
            f"strategies beat the exhaustive optimum: {cheaters}; "
            "a heuristic escaped the enumerated space"
        )
    frontier_sizes = {
        label: len(entry["pareto"]["points"])
        for label, entry in leaderboard["functions"].items()
    }
    if not leaderboard["quick"] and max(frontier_sizes.values()) < 2:
        raise SystemExit(
            f"every Pareto frontier is a single point ({frontier_sizes}); "
            "the multi-objective trade-off has degenerated"
        )
    print(
        "oracle invariants hold: no strategy beats the optimum; "
        f"frontier sizes {frontier_sizes}"
    )


def test_search_leaderboard():
    """Full-sweep gate: score the whole zoo, enforce the invariants."""
    leaderboard = run_search_bench(HarnessConfig())
    check_invariants(leaderboard)
    path = write_leaderboard(leaderboard, str(RESULTS_PATH))
    print(f"\n{format_leaderboard(leaderboard)}\n[written to {path}]")
    assert len(leaderboard["functions"]) == 6
    assert len(leaderboard["ranking"]) >= 5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="two functions, two trials (the CI search-smoke configuration)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when an oracle invariant is violated",
    )
    parser.add_argument(
        "--out",
        default=str(RESULTS_PATH),
        help="leaderboard destination (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    config = quick_config() if args.quick else HarnessConfig()
    leaderboard = run_search_bench(config)
    print(format_leaderboard(leaderboard))
    if args.check:
        check_invariants(leaderboard)
    path = write_leaderboard(leaderboard, args.out)
    print(f"[written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
