"""Ablations of the design choices DESIGN.md calls out.

1. **Register/label remapping** (section 4.2.1): merging instances
   without remapping only catches textually identical code.  Figure 5
   argues the remapping is what makes pruning aggressive; this ablation
   measures how much larger the enumerated space gets without it.

2. **Interaction-guided GA mutation** (section 7): mutating with the
   measured enabling probabilities versus uniformly random phases, both
   checked against the exhaustively enumerated optimum.

Expected shape: the no-remap space is strictly larger (more nodes for
the same budget, or more nodes at completion); the guided GA reaches
the optimum at least as often as the uniform GA on the same budget.
"""

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.opt import implicit_cleanup
from repro.programs import compile_benchmark
from repro.search import GeneticSearcher

from .conftest import write_result

# Functions with loops/branches, where different phase orders consume
# registers and create labels in different orders (the Figure 5
# situation the remapping exists for).
REMAP_STUDY = [
    ("dijkstra", "next_rand"),
    ("jpeg", "range_limit"),
    ("jpeg", "rgb_to_cb"),
    ("stringsearch", "set_pattern"),
    ("bitcount", "main"),
]

GA_STUDY = [
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("jpeg", "rgb_to_y"),
    ("bitcount", "tbl_bitcount"),
]


def fresh(bench, name):
    func = compile_benchmark(bench).functions[name]
    implicit_cleanup(func)
    return func


def test_remapping_ablation(benchmark):
    header = (
        f"{'function':22s} {'with remap':>11s} {'without':>9s} "
        f"{'growth':>7s} {'complete (with/without)':>24s}"
    )
    lines = [
        "Ablation — identical-instance detection without register/label",
        "remapping (section 4.2.1, Figure 5)",
        "",
        header,
        "-" * len(header),
    ]
    for bench_name, function_name in REMAP_STUDY:
        with_remap = enumerate_space(
            fresh(bench_name, function_name),
            EnumerationConfig(max_nodes=8000, time_limit=90, remap=True),
        )
        without = enumerate_space(
            fresh(bench_name, function_name),
            EnumerationConfig(max_nodes=8000, time_limit=90, remap=False),
        )
        growth = len(without.dag) / len(with_remap.dag)
        lines.append(
            f"{bench_name + '.' + function_name:22s} "
            f"{len(with_remap.dag):>11,} {len(without.dag):>9,} "
            f"{growth:>6.2f}x "
            f"{str(with_remap.completed) + '/' + str(without.completed):>24s}"
        )
        # the remapped space can never be larger
        assert len(with_remap.dag) <= len(without.dag)
    write_result("ablation_remapping.txt", "\n".join(lines))

    benchmark.pedantic(
        lambda: enumerate_space(
            fresh("sha", "rol"), EnumerationConfig(max_nodes=2000, remap=False)
        ),
        rounds=1,
        iterations=1,
    )


def test_guided_ga_ablation(benchmark, interactions, enumerated_suite):
    header = (
        f"{'function':22s} {'optimum':>8s} {'uniform GA':>11s} "
        f"{'guided GA':>10s}"
    )
    lines = [
        "Ablation — GA mutation guided by enabling probabilities",
        "(section 7) vs uniform mutation, same budget, vs true optimum",
        "",
        header,
        "-" * len(header),
    ]
    wins = 0
    for bench_name, function_name in GA_STUDY:
        stat = enumerated_suite.get((bench_name, function_name))
        optimum = (
            stat.codesize_min if stat is not None and stat.completed else None
        )
        uniform = GeneticSearcher(
            fresh(bench_name, function_name),
            generations=10,
            population_size=12,
            seed=20060325,
        ).run()
        guided = GeneticSearcher(
            fresh(bench_name, function_name),
            generations=10,
            population_size=12,
            seed=20060325,
            interactions=interactions,
        ).run()
        if guided.best_fitness <= uniform.best_fitness:
            wins += 1
        lines.append(
            f"{bench_name + '.' + function_name:22s} "
            f"{str(optimum) if optimum is not None else 'N/A':>8s} "
            f"{uniform.best_fitness:>11.0f} {guided.best_fitness:>10.0f}"
        )
        if optimum is not None:
            assert guided.best_fitness >= optimum  # cannot beat exhaustive
    lines += [
        "-" * len(header),
        f"guided matches or beats uniform on {wins}/{len(GA_STUDY)} functions",
    ]
    write_result("ablation_guided_ga.txt", "\n".join(lines))

    benchmark.pedantic(
        lambda: GeneticSearcher(
            fresh("jpeg", "descale"), generations=5, seed=1
        ).run(),
        rounds=1,
        iterations=1,
    )
