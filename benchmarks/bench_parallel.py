"""Parallel enumeration service — speedup and warm-store benchmarks.

Enumerates a sweep of study functions serially and through the sharded
multi-process service at 1/2/4 workers, then repeats the 4-worker run
against a persistent space store to measure the warm cache-hit path.
Honest wall-clock numbers (including the host CPU count) land in
``benchmarks/results/parallel.json``.

The >=2x 4-worker speedup assertion only fires on hosts with at least
four CPUs; single-core CI containers record the numbers without
enforcing a speedup that the hardware cannot provide.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.enumeration import enumerate_space
from repro.opt import implicit_cleanup
from repro.parallel import (
    EnumerationRequest,
    ParallelConfig,
    ParallelEnumerator,
    SpaceStore,
)
from repro.programs import compile_benchmark

from .conftest import RESULTS_DIR, bench_config

#: functions that enumerate completely within the default caps; large
#: enough that the per-shard work dominates the process plumbing
SWEEP = [
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("jpeg", "rgb_to_y"),
    ("fft", "fcos"),
]


def _sweep_functions():
    functions = {}
    for bench_name, function_name in SWEEP:
        program = compile_benchmark(bench_name)
        func = program.functions[function_name]
        implicit_cleanup(func)
        functions[(bench_name, function_name)] = func
    return functions


def test_parallel_speedup(tmp_path):
    functions = _sweep_functions()
    config = bench_config()
    requests = [
        EnumerationRequest(f"{bench}.{name}", functions[(bench, name)])
        for bench, name in SWEEP
    ]

    start = time.perf_counter()
    serial = [enumerate_space(func, config) for func in functions.values()]
    serial_wall = time.perf_counter() - start
    assert all(result.completed for result in serial)

    walls = {}
    for jobs in (1, 2, 4):
        start = time.perf_counter()
        results = ParallelEnumerator(
            config, ParallelConfig(jobs=jobs)
        ).enumerate(requests)
        walls[jobs] = time.perf_counter() - start
        assert all(result.completed for result in results)

    store = SpaceStore(str(tmp_path / "spaces"))
    start = time.perf_counter()
    ParallelEnumerator(config, ParallelConfig(jobs=4, store=store)).enumerate(
        requests
    )
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    warm = ParallelEnumerator(
        config, ParallelConfig(jobs=4, store=store)
    ).enumerate(requests)
    warm_wall = time.perf_counter() - start
    assert all(result.resumed_from for result in warm)
    assert store.hits == len(SWEEP)

    cpu_count = os.cpu_count() or 1
    payload = {
        "sweep": [f"{bench}.{name}" for bench, name in SWEEP],
        "cpu_count": cpu_count,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": {
            str(jobs): round(wall, 3) for jobs, wall in walls.items()
        },
        "speedup_4_workers": round(serial_wall / walls[4], 2),
        "store_cold_wall_seconds": round(cold_wall, 3),
        "store_warm_wall_seconds": round(warm_wall, 3),
        "warm_store_speedup": round(cold_wall / warm_wall, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "parallel.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {path}]")

    # warm runs skip enumeration entirely: always faster than cold
    assert warm_wall < cold_wall
    if cpu_count >= 4:
        assert payload["speedup_4_workers"] >= 2.0
