"""Service overhead benchmark: what does the resilience layer cost?

Starts a real ``repro serve`` subprocess and measures, for one small
complete space (``sha/rol``):

``direct``
    In-process ``enumerate_space`` — the floor.
``cold``
    First service request: HTTP + admission + executor subprocess +
    enumeration + store write. The delta over ``direct`` is the
    per-request service overhead (dominated by executor startup).
``warm``
    The same request again: HTTP + admission + executor + store *hit*.
``status``
    ``GET /status`` round-trips per second — the pure transport +
    event-loop cost, no executor.

Each run appends one entry to ``benchmarks/results/service.json``
(a trajectory, like the other benches). The point is honesty about
the overhead, not a target: the service exists for resilience and
sharing, and the store makes repeat requests cheap regardless.

CLI::

    PYTHONPATH=src python benchmarks/bench_service.py [--repeat N]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS
from repro.service.client import ServiceClient

try:  # pytest collection vs `python benchmarks/bench_service.py`
    from .conftest import RESULTS_DIR
except ImportError:  # pragma: no cover - CLI entry
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"

RESULTS_PATH = RESULTS_DIR / "service.json"

BENCH, FUNCTION = "sha", "rol"
CONFIG = {"max_nodes": 10_000}


def _direct_seconds() -> float:
    func = compile_source(PROGRAMS[BENCH].source).functions[FUNCTION].clone()
    implicit_cleanup(func)
    start = time.perf_counter()
    enumerate_space(func, EnumerationConfig(**CONFIG))
    return time.perf_counter() - start


def _start_server(run_dir: str):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--run-dir", run_dir, "--port", "0", "--workers", "2",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.DEVNULL,
    )
    announce = os.path.join(run_dir, "service.json")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("server died at startup")
        try:
            with open(announce, encoding="utf-8") as handle:
                facts = json.load(handle)
            if facts.get("pid") == proc.pid:
                return proc, facts["port"]
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise RuntimeError("server did not announce")


def run(repeat: int) -> dict:
    direct = min(_direct_seconds() for _ in range(repeat))

    run_dir = tempfile.mkdtemp(prefix="bench-service-")
    proc, port = _start_server(run_dir)
    client = ServiceClient("127.0.0.1", port)
    try:
        start = time.perf_counter()
        cold_body = client.enumerate(
            benchmark=BENCH, function=FUNCTION, config=CONFIG
        )
        cold = time.perf_counter() - start
        assert not cold_body["store_hit"]

        warm = []
        for _ in range(repeat):
            start = time.perf_counter()
            body = client.enumerate(
                benchmark=BENCH, function=FUNCTION, config=CONFIG
            )
            warm.append(time.perf_counter() - start)
            assert body["store_hit"]

        start = time.perf_counter()
        pings = 50
        for _ in range(pings):
            client.status()
        status_rps = pings / (time.perf_counter() - start)
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        shutil.rmtree(run_dir, ignore_errors=True)

    return {
        "workload": f"{BENCH}/{FUNCTION} max_nodes={CONFIG['max_nodes']}",
        "direct_s": round(direct, 4),
        "cold_s": round(cold, 4),
        "warm_s": round(min(warm), 4),
        "cold_overhead_s": round(cold - direct, 4),
        "status_rps": round(status_rps, 1),
        "python": sys.version.split()[0],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()

    entry = run(args.repeat)
    print(json.dumps(entry, indent=2))

    RESULTS_DIR.mkdir(exist_ok=True)
    history = {"trajectory": []}
    if RESULTS_PATH.exists():
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            history = json.load(handle)
    history["trajectory"].append(entry)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


if __name__ == "__main__":
    main()
