"""Figure 7 — the weighted DAG representation.

Figure 7 illustrates the weighted DAG used by the interaction analysis:
leaves weigh 1 and each interior node's weight is the sum of its
children's, so the root weight counts the distinct active phase
sequences the function admits.  This bench reports those weights for
the enumerated study functions and validates the weight arithmetic.

Expected shape versus the paper: root weights (distinct active
sequences) vastly exceed both the node and leaf counts — many orderings
converge to the same instances, which is the merging that makes
exhaustive enumeration possible.
"""

from .conftest import write_result


def test_figure7(benchmark, enumerated_suite):
    header = (
        f"{'function':22s} {'instances':>10s} {'leaves':>7s} "
        f"{'root weight (active sequences)':>31s}"
    )
    lines = [
        "Figure 7 — weighted DAG statistics",
        "",
        header,
        "-" * len(header),
    ]
    complete = [stat for stat in enumerated_suite.values() if stat.completed]
    for stat in sorted(complete, key=lambda s: -len(s.result.dag)):
        dag = stat.result.dag
        weights = dag.weights()
        root_weight = weights[dag.root_id]
        leaves = dag.leaves()
        lines.append(
            f"{stat.name:22s} {len(dag):>10,} {len(leaves):>7,} "
            f"{root_weight:>31,}"
        )
        # Figure 7's arithmetic: every leaf weighs one; interior nodes
        # sum their children.
        for leaf in leaves:
            assert weights[leaf.node_id] == 1
        for node in dag.nodes.values():
            if node.active:
                assert weights[node.node_id] == sum(
                    weights[child] for child in node.active.values()
                )
        assert root_weight >= len(leaves)
    write_result("figure7.txt", "\n".join(lines))

    dag = max((stat.result.dag for stat in complete), key=len)
    benchmark.pedantic(dag.weights, rounds=3, iterations=1)
