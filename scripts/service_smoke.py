#!/usr/bin/env python
"""End-to-end service smoke drill, run by the CI ``service-smoke`` job.

One script, the whole resilience story, against the real CLI entry
point (``python -m repro serve``):

1. start a server, drive **concurrent** enumerate requests through the
   bundled client (three identical ones must coalesce into a single
   execution) plus independent fast requests;
2. **kill an executor** mid-run — the request must still complete,
   and every returned DAG must be bit-identical to an in-process
   serial enumeration;
3. **SIGTERM the server** mid-enumeration — the in-flight request gets
   a structured ``503 draining`` with ``checkpointed: true`` and the
   server exits 0;
4. **restart** on the same run dir — the repeated request resumes the
   checkpoint and finishes bit-identically to the serial reference;
5. ``repro report`` on the run dir must render the service section.

Exit status 0 means every claim held. The run dir (journal, manifest,
per-request specs/results/executor logs) is the artifact CI uploads on
failure.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [RUN_DIR]
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS
from repro.robustness.retry import RetryError, RetryPolicy
from repro.service.client import ServiceClient, TransientServiceError
from repro.service.executor import _dag_fingerprint

RUN_DIR = sys.argv[1] if len(sys.argv) > 1 else ".run-service"

#: a steady ~5s workload (budget-capped, hence deterministic) with a
#: tight checkpoint cadence — wide open to kills and drains mid-flight
SLOW = {
    "benchmark": "sha",
    "function": "byte_reverse",
    "config": {"max_nodes": 1200, "checkpoint_interval": 0.2},
}
#: the drain victim: same function, different budget = different work key
DRAIN = {
    "benchmark": "sha",
    "function": "byte_reverse",
    "config": {"max_nodes": 1100, "checkpoint_interval": 0.2},
}
FAST = [("sha", "rol"), ("jpeg", "descale")]


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def serial_fingerprint(bench, name, **config):
    func = compile_source(PROGRAMS[bench].source).functions[name].clone()
    implicit_cleanup(func)
    return _dag_fingerprint(
        enumerate_space(func, EnumerationConfig(**config)).dag
    )


def start_server():
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--run-dir", RUN_DIR, "--port", "0",
            "--workers", "4", "--executor-retries", "2",
            "--tenant-concurrency", "8",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    announce = os.path.join(RUN_DIR, "service.json")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            print("FAIL: server died at startup", file=sys.stderr)
            sys.exit(1)
        try:
            with open(announce, encoding="utf-8") as handle:
                facts = json.load(handle)
            if facts.get("pid") == proc.pid:  # not a stale announce
                return proc, facts["port"]
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    print("FAIL: server did not announce", file=sys.stderr)
    sys.exit(1)


def fire(client, outcomes, index, **kwargs):
    def run():
        try:
            outcomes[index] = ("ok", client.enumerate(**kwargs))
        except Exception as error:
            outcomes[index] = ("error", error)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def main():
    print("== serial references")
    slow_ref = serial_fingerprint("sha", "byte_reverse", max_nodes=1200)
    drain_ref = serial_fingerprint("sha", "byte_reverse", max_nodes=1100)
    fast_refs = {
        (bench, name): serial_fingerprint(bench, name, max_nodes=2000)
        for bench, name in FAST
    }

    print("== phase 1: concurrent load + executor kill")
    proc, port = start_server()
    client = ServiceClient(
        "127.0.0.1", port, policy=RetryPolicy(max_attempts=4, base_delay=0.2)
    )
    outcomes = [None] * 5
    threads = [fire(client, outcomes, i, **SLOW) for i in range(3)]
    threads += [
        fire(
            client, outcomes, 3 + i,
            benchmark=bench, function=name, config={"max_nodes": 2000},
        )
        for i, (bench, name) in enumerate(FAST)
    ]

    # kill the first executor that shows up in /status, mid-run
    victim = None
    deadline = time.monotonic() + 20.0
    while victim is None and time.monotonic() < deadline:
        for pid in client.status()["executors"]:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                continue  # finished between status and kill; next one
            victim = pid
            break
        time.sleep(0.05)
    check(victim is not None, f"killed executor {victim} mid-request")

    for thread in threads:
        thread.join(timeout=120)
    check(
        all(o is not None and o[0] == "ok" for o in outcomes),
        f"all 5 concurrent requests answered 200 despite the kill "
        f"({[o and o[0] for o in outcomes]})",
    )
    slow_bodies = [outcomes[i][1] for i in range(3)]
    check(
        all(b["dag_fingerprint"] == slow_ref for b in slow_bodies),
        "killed-and-retried DAG bit-identical to the serial reference",
    )
    check(
        sum(1 for b in slow_bodies if b.get("coalesced")) == 2,
        "3 identical concurrent requests coalesced into 1 execution",
    )
    for i, (bench, name) in enumerate(FAST):
        check(
            outcomes[3 + i][1]["dag_fingerprint"] == fast_refs[(bench, name)],
            f"{bench}/{name} bit-identical to its serial reference",
        )

    print("== phase 2: SIGTERM drain mid-enumeration")
    outcomes = [None]
    once = ServiceClient("127.0.0.1", port, policy=RetryPolicy(max_attempts=1))
    thread = fire(once, outcomes, 0, **DRAIN)
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline and not client.status()["executors"]:
        time.sleep(0.05)
    time.sleep(0.6)  # let checkpoints land
    proc.send_signal(signal.SIGTERM)
    thread.join(timeout=60)
    kind, error = outcomes[0]
    shed = getattr(error, "last_error", error)
    check(
        kind == "error"
        and isinstance(shed, TransientServiceError)
        and shed.error == "draining"
        and shed.body.get("checkpointed") is True,
        f"in-flight request got structured 503 draining+checkpointed "
        f"({error})",
    )
    check(proc.wait(timeout=30) == 0, "drained server exited 0")

    print("== phase 3: restart and resume bit-identically")
    proc, port = start_server()
    try:
        body = ServiceClient("127.0.0.1", port).enumerate(**DRAIN)
        check(bool(body["resumed_from"]), "restarted server resumed the checkpoint")
        check(
            body["dag_fingerprint"] == drain_ref,
            "resumed DAG bit-identical to the serial reference",
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        check(proc.wait(timeout=30) == 0, "second server drained cleanly")

    report = subprocess.run(
        [sys.executable, "-m", "repro", "report", RUN_DIR],
        env={**os.environ, "PYTHONPATH": "src"},
        capture_output=True,
        text=True,
    )
    check(
        report.returncode == 0 and "service:" in report.stdout,
        "repro report renders the service section for the run dir",
    )
    print(report.stdout)
    print("SERVICE SMOKE PASSED")


if __name__ == "__main__":
    main()
