"""Frontend diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A lexical, syntactic, or semantic error in mini-C source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
