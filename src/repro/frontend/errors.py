"""Frontend diagnostics.

Besides :class:`CompileError`, this module hosts the ``at()``-style
source-span renderer used by ``repro lint --source`` and test output:
given the original source text and a 1-based line/column, it prints the
offending line with a caret marker underneath.  Tabs are preserved in
the echoed line and mirrored in the marker line so the caret stays
visually aligned regardless of the terminal's tab stops.
"""

from __future__ import annotations

from typing import Optional


class CompileError(Exception):
    """A lexical, syntactic, or semantic error in mini-C source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line or column else ""
        super().__init__(f"{message}{location}")


def render_span(
    source: str,
    line: int,
    column: int,
    width: int = 1,
    prefix: str = "  ",
) -> str:
    """Render the caret marker block for a 1-based *line*/*column* span.

    Returns two lines: the offending source line, and a marker line with
    ``^`` under the span start and ``~`` continuing for ``width - 1``
    more columns.  Every character before the caret is mirrored as a tab
    (if the source had a tab there) or a space, so the marker aligns
    under the token no matter how wide the terminal renders tabs.

    Returns ``""`` when the location does not name a real source line.
    """
    if line <= 0:
        return ""
    lines = source.splitlines()
    if line > len(lines):
        return ""
    text = lines[line - 1]
    column = max(1, column)
    pad = "".join("\t" if ch == "\t" else " " for ch in text[: column - 1])
    marker = "^" + "~" * max(0, width - 1)
    return f"{prefix}{text}\n{prefix}{pad}{marker}"


def format_error(
    error: CompileError, source: Optional[str] = None, filename: str = "<source>"
) -> str:
    """Format *error* as ``file:line:col: message`` plus a caret block."""
    location = f"{filename}:{error.line}:{error.column}" if error.line else filename
    out = f"{location}: {error.message}"
    if source is not None:
        span = render_span(source, error.line, error.column)
        if span:
            out += "\n" + span
    return out
