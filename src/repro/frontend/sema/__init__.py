"""Source-level semantic analysis for the mini-C frontend.

Pass order (see docs/FRONTEND.md):

1. **Type checking** (:mod:`.typecheck`) — resolves struct/global/
   function declarations, annotates every expression with ``ctype``,
   and reports the ``TYP0xx`` catalogue.
2. **Flow analysis** (:mod:`.flow`) — definite assignment and definite
   return over the AST CFG (``SEM0xx``).  Skipped when type checking
   found errors (a broken AST has no meaningful flow).
3. **Alias analysis** (:mod:`.alias`) — Steensgaard points-to; feeds
   codegen (address-exposed locals pin to memory slots) and the IR
   alias oracle (``frame_private`` facts for translation validation).

``compile_source`` runs :func:`analyze` as a mandatory gate and raises
:class:`~repro.frontend.errors.CompileError` on the first error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.frontend import ast
from repro.frontend.sema.alias import AliasInfo, analyze_alias
from repro.frontend.sema.diagnostics import CATALOG, ERROR, WARNING, Diagnostic
from repro.frontend.sema.flow import analyze_flow
from repro.frontend.sema.typecheck import Signature, TypeChecker

__all__ = [
    "analyze",
    "SemaResult",
    "Diagnostic",
    "CATALOG",
    "AliasInfo",
    "Signature",
]


@dataclass
class SemaResult:
    diagnostics: List[Diagnostic] = field(default_factory=list)
    structs: Dict = field(default_factory=dict)
    globals: Dict = field(default_factory=dict)
    functions: Dict[str, Signature] = field(default_factory=dict)
    scopes: Dict[str, Dict] = field(default_factory=dict)
    alias: AliasInfo = field(default_factory=AliasInfo)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors


def analyze(unit: ast.TranslationUnit) -> SemaResult:
    """Run every semantic pass over *unit*; never raises on bad input."""
    checker = TypeChecker(unit)
    checker.run()
    result = SemaResult(
        diagnostics=list(checker.diags),
        structs=checker.structs,
        globals=checker.globals,
        functions=checker.functions,
        scopes=checker.scopes,
    )
    if result.ok:
        result.diagnostics.extend(analyze_flow(unit))
    if result.ok:
        result.alias = analyze_alias(unit)
    return result
