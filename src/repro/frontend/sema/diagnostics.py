"""Stable diagnostic catalogue for source-level semantic analysis.

Codes never change meaning once shipped; new checks get new codes.
``TYP0xx`` come from the type checker, ``SEM0xx`` from flow analysis
(definite assignment, definite return).  The IR-level ``MEM0xx`` codes
live with the sanitizer in :mod:`repro.staticanalysis.memcheck`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.errors import render_span

ERROR = "error"
WARNING = "warning"

#: code -> one-line summary (the human catalogue; messages are specific).
CATALOG = {
    "TYP001": "operand or assignment type mismatch",
    "TYP002": "wrong number of call arguments",
    "TYP003": "call argument type mismatch",
    "TYP004": "invalid lvalue",
    "TYP005": "array or pointer misuse",
    "TYP006": "unknown struct, bad member access, or incomplete struct",
    "TYP007": "undeclared identifier or function",
    "TYP008": "redeclaration or redefinition",
    "TYP009": "invalid use of void",
    "TYP010": "return type mismatch",
    "TYP011": "invalid selector or condition type",
    "TYP012": "unsupported construct",
    "SEM001": "variable is used before ever being assigned",
    "SEM002": "variable may be used before assignment",
    "SEM003": "control can reach the end of a non-void function",
}


@dataclass
class Diagnostic:
    code: str
    message: str
    line: int = 0
    column: int = 0
    width: int = 1
    severity: str = ERROR

    def format(self, filename: str = "<source>", source: Optional[str] = None) -> str:
        """``file:line:col: CODE message`` plus a caret block when possible."""
        if self.line:
            location = f"{filename}:{self.line}:{self.column}"
        else:
            location = filename
        out = f"{location}: {self.code} {self.message}"
        if source is not None:
            span = render_span(source, self.line, self.column, self.width)
            if span:
                out += "\n" + span
        return out

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
        }
