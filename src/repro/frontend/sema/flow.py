"""Definite-assignment and definite-return analysis over the AST CFG.

Builds an explicit control-flow graph of event nodes from the AST
(short-circuit operators fork, loops cycle, switch models C
fallthrough), then runs a forward must/may-assigned dataflow:

- ``SEM001`` — a reachable read of a scalar local that cannot have been
  assigned on *any* path (``may`` set miss);
- ``SEM002`` — a reachable read not assigned on *all* paths (``must``
  set miss);
- ``SEM003`` — control can fall off the end of a non-void function.

Address-taken variables are treated as assigned at the ``&`` site:
once a pointer to ``x`` escapes, stores through it may initialize
``x``, so flow analysis conservatively stops tracking it.  Arrays and
structs are memory objects whose elements read as zero when unwritten,
matching the VM; they are considered initialized at declaration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.frontend import ast
from repro.frontend.sema.diagnostics import Diagnostic


class _Node:
    __slots__ = ("events", "succs")

    def __init__(self):
        self.events: List[Tuple] = []  # ("use", name, line, col) | ("assign", name)
        self.succs: List["_Node"] = []


def _const_cond(expr: Optional[ast.Expr]) -> Optional[bool]:
    """Fold a constant branch condition; None when not constant."""
    if expr is None:
        return True  # for (;;)
    if isinstance(expr, ast.IntLit):
        return expr.value != 0
    return None


class _Builder:
    def __init__(self):
        self.nodes: List[_Node] = []
        self.break_targets: List[_Node] = []
        self.continue_targets: List[_Node] = []
        self.tracked: Set[str] = set()

    def node(self) -> _Node:
        node = _Node()
        self.nodes.append(node)
        return node

    @staticmethod
    def edge(src: _Node, dst: _Node) -> None:
        src.succs.append(dst)

    # ------------------------------------------------------------------
    # Expressions: emit events, fork on short-circuit operators
    # ------------------------------------------------------------------

    def expr(self, e: Optional[ast.Expr], cur: _Node) -> _Node:
        if e is None:
            return cur
        if isinstance(e, (ast.IntLit, ast.FloatLit)):
            return cur
        if isinstance(e, ast.Var):
            cur.events.append(("use", e.name, e.line, e.column))
            return cur
        if isinstance(e, ast.Index):
            cur.events.append(("use", e.base, e.line, e.column))
            return self.expr(e.index, cur)
        if isinstance(e, ast.Unary):
            return self.expr(e.operand, cur)
        if isinstance(e, ast.Deref):
            return self.expr(e.operand, cur)
        if isinstance(e, ast.AddrOf):
            return self._addrof(e, cur)
        if isinstance(e, ast.Member):
            return self.expr(e.base, cur)
        if isinstance(e, ast.Binary):
            if e.op in ("&&", "||"):
                cur = self.expr(e.left, cur)
                right = self.node()
                join = self.node()
                self.edge(cur, right)
                self.edge(cur, join)  # short-circuit: right side skipped
                right_end = self.expr(e.right, right)
                self.edge(right_end, join)
                return join
            cur = self.expr(e.left, cur)
            return self.expr(e.right, cur)
        if isinstance(e, ast.CallExpr):
            for arg in e.args:
                cur = self.expr(arg, cur)
            return cur
        if isinstance(e, ast.AssignExpr):
            cur = self.expr(e.value, cur)
            return self._store(e.target, cur, compound=e.op != "=")
        if isinstance(e, ast.IncDec):
            return self._store(e.target, cur, compound=True)
        return cur

    def _addrof(self, e: ast.AddrOf, cur: _Node) -> _Node:
        operand = e.operand
        if isinstance(operand, ast.Var):
            # Taking the address counts as an assignment: stores through
            # the pointer may initialize the variable.
            cur.events.append(("assign", operand.name))
            return cur
        return self.expr(operand, cur)

    def _store(self, target: Optional[ast.Expr], cur: _Node, compound: bool) -> _Node:
        if isinstance(target, ast.Var):
            if compound:
                cur.events.append(("use", target.name, target.line, target.column))
            cur.events.append(("assign", target.name))
            return cur
        if isinstance(target, ast.Index):
            cur = self.expr(target.index, cur)
            cur.events.append(("use", target.base, target.line, target.column))
            return cur
        if isinstance(target, ast.Deref):
            return self.expr(target.operand, cur)
        if isinstance(target, ast.Member):
            return self.expr(target.base, cur)
        return self.expr(target, cur)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def stmt(self, s: ast.Stmt, cur: Optional[_Node]) -> Optional[_Node]:
        """Extend the CFG with *s*; returns the fallthrough node or None
        when control cannot continue past it."""
        if cur is None:
            # Unreachable statement: build it on a disconnected node so
            # event construction stays total, but nothing links to it.
            cur = self.node()
        if isinstance(s, ast.Block):
            for child in s.stmts:
                cur = self.stmt(child, cur)
            return cur
        if isinstance(s, ast.DeclStmt):
            scalar = s.array_size is None and not (s.typ == "struct" and s.ptr == 0)
            if scalar:
                self.tracked.add(s.name)
            if s.init is not None:
                cur = self.expr(s.init, cur)
                cur.events.append(("assign", s.name))
            elif not scalar:
                # Arrays and struct objects read as zero when unwritten.
                cur.events.append(("assign", s.name))
            return cur
        if isinstance(s, ast.ExprStmt):
            return self.expr(s.expr, cur)
        if isinstance(s, ast.IfStmt):
            return self._if(s, cur)
        if isinstance(s, ast.WhileStmt):
            return self._while(s, cur)
        if isinstance(s, ast.DoWhileStmt):
            return self._do_while(s, cur)
        if isinstance(s, ast.ForStmt):
            return self._for(s, cur)
        if isinstance(s, ast.SwitchStmt):
            return self._switch(s, cur)
        if isinstance(s, ast.ReturnStmt):
            self.expr(s.value, cur)
            return None
        if isinstance(s, ast.BreakStmt):
            if self.break_targets:
                self.edge(cur, self.break_targets[-1])
            return None
        if isinstance(s, ast.ContinueStmt):
            if self.continue_targets:
                self.edge(cur, self.continue_targets[-1])
            return None
        return cur

    def _if(self, s: ast.IfStmt, cur: _Node) -> Optional[_Node]:
        cur = self.expr(s.cond, cur)
        const = _const_cond(s.cond)
        join = self.node()
        reaches_join = False

        then_entry = self.node()
        if const is not False:
            self.edge(cur, then_entry)
        then_end = self.stmt(s.then_body, then_entry)
        if then_end is not None:
            self.edge(then_end, join)
            reaches_join = True

        if s.else_body is not None:
            else_entry = self.node()
            if const is not True:
                self.edge(cur, else_entry)
            else_end = self.stmt(s.else_body, else_entry)
            if else_end is not None:
                self.edge(else_end, join)
                reaches_join = True
        elif const is not True:
            self.edge(cur, join)
            reaches_join = True

        return join if reaches_join else None

    def _while(self, s: ast.WhileStmt, cur: _Node) -> Optional[_Node]:
        cond = self.node()
        self.edge(cur, cond)
        cond_end = self.expr(s.cond, cond)
        const = _const_cond(s.cond)
        body_entry = self.node()
        exit_node = self.node()
        if const is not False:
            self.edge(cond_end, body_entry)
        if const is not True:
            self.edge(cond_end, exit_node)
        self.break_targets.append(exit_node)
        self.continue_targets.append(cond)
        body_end = self.stmt(s.body, body_entry)
        self.break_targets.pop()
        self.continue_targets.pop()
        if body_end is not None:
            self.edge(body_end, cond)
        return exit_node

    def _do_while(self, s: ast.DoWhileStmt, cur: _Node) -> Optional[_Node]:
        body_entry = self.node()
        self.edge(cur, body_entry)
        cond = self.node()
        exit_node = self.node()
        self.break_targets.append(exit_node)
        self.continue_targets.append(cond)
        body_end = self.stmt(s.body, body_entry)
        self.break_targets.pop()
        self.continue_targets.pop()
        if body_end is not None:
            self.edge(body_end, cond)
        cond_end = self.expr(s.cond, cond)
        const = _const_cond(s.cond)
        if const is not False:
            self.edge(cond_end, body_entry)
        if const is not True:
            self.edge(cond_end, exit_node)
        return exit_node

    def _for(self, s: ast.ForStmt, cur: _Node) -> Optional[_Node]:
        cur = self.expr(s.init, cur)
        cond = self.node()
        self.edge(cur, cond)
        cond_end = self.expr(s.cond, cond)
        const = _const_cond(s.cond)
        body_entry = self.node()
        step = self.node()
        exit_node = self.node()
        if const is not False:
            self.edge(cond_end, body_entry)
        if const is not True:
            self.edge(cond_end, exit_node)
        self.break_targets.append(exit_node)
        self.continue_targets.append(step)
        body_end = self.stmt(s.body, body_entry)
        self.break_targets.pop()
        self.continue_targets.pop()
        if body_end is not None:
            self.edge(body_end, step)
        step_end = self.expr(s.step, step)
        self.edge(step_end, cond)
        return exit_node

    def _switch(self, s: ast.SwitchStmt, cur: _Node) -> Optional[_Node]:
        cur = self.expr(s.selector, cur)
        exit_node = self.node()
        entries = [self.node() for _ in s.cases]
        has_default = any(case.value is None for case in s.cases)
        for entry in entries:
            self.edge(cur, entry)
        if not has_default:
            self.edge(cur, exit_node)
        self.break_targets.append(exit_node)
        fall: Optional[_Node] = None
        for case, entry in zip(s.cases, entries):
            if fall is not None:
                self.edge(fall, entry)
            node: Optional[_Node] = entry
            for child in case.body:
                node = self.stmt(child, node)
            fall = node
        self.break_targets.pop()
        if fall is not None:
            self.edge(fall, exit_node)
        return exit_node


def _reachable(entry: _Node) -> Set[int]:
    seen = {id(entry)}
    by_id = {id(entry): entry}
    stack = [entry]
    while stack:
        node = stack.pop()
        for succ in node.succs:
            if id(succ) not in seen:
                seen.add(id(succ))
                by_id[id(succ)] = succ
                stack.append(succ)
    return seen


def analyze_function_flow(func: ast.FuncDef) -> List[Diagnostic]:
    """Run definite-assignment/-return analysis on one function."""
    builder = _Builder()
    entry = builder.node()
    for param in func.params:
        entry.events.append(("assign", param.name))
    final = builder.stmt(func.body, entry)
    nodes = builder.nodes
    tracked = builder.tracked
    reachable = _reachable(entry)

    diags: List[Diagnostic] = []
    if (
        final is not None
        and id(final) in reachable
        and func.ret_type != "void"
    ):
        diags.append(
            Diagnostic(
                "SEM003",
                f"control can reach the end of non-void function {func.name!r} "
                "without returning a value",
                func.line,
                func.column,
            )
        )

    if not tracked:
        return diags

    # Forward must/may-assigned dataflow to fixpoint.  TOP (None) means
    # "not yet computed"; unreachable nodes keep TOP and are skipped.
    preds: Dict[int, List[_Node]] = {id(n): [] for n in nodes}
    for node in nodes:
        for succ in node.succs:
            preds[id(succ)].append(node)
    gen: Dict[int, Set[str]] = {
        id(n): {e[1] for e in n.events if e[0] == "assign"} for n in nodes
    }
    must_in: Dict[int, Optional[Set[str]]] = {id(n): None for n in nodes}
    may_in: Dict[int, Set[str]] = {id(n): set() for n in nodes}
    must_in[id(entry)] = set()
    order = [n for n in nodes if id(n) in reachable]
    changed = True
    while changed:
        changed = False
        for node in order:
            key = id(node)
            if node is not entry:
                new_must: Optional[Set[str]] = None
                new_may: Set[str] = set()
                for pred in preds[key]:
                    if id(pred) not in reachable:
                        continue
                    pred_must = must_in[id(pred)]
                    if pred_must is not None:
                        out = pred_must | gen[id(pred)]
                        new_must = out if new_must is None else (new_must & out)
                    new_may |= may_in[id(pred)] | gen[id(pred)]
                if new_must != must_in[key]:
                    must_in[key] = new_must
                    changed = True
                if new_may != may_in[key]:
                    may_in[key] = new_may
                    changed = True

    seen_sites = set()
    for node in order:
        key = id(node)
        must = set(must_in[key] or set())
        may = set(may_in[key])
        for event in node.events:
            if event[0] == "assign":
                must.add(event[1])
                may.add(event[1])
                continue
            _, name, line, column = event
            if name not in tracked:
                continue
            site = (name, line, column)
            if name not in may:
                if ("SEM001",) + site not in seen_sites:
                    seen_sites.add(("SEM001",) + site)
                    diags.append(
                        Diagnostic(
                            "SEM001",
                            f"{name!r} is used before ever being assigned",
                            line,
                            column,
                            width=len(name),
                        )
                    )
            elif name not in must:
                if ("SEM002",) + site not in seen_sites:
                    seen_sites.add(("SEM002",) + site)
                    diags.append(
                        Diagnostic(
                            "SEM002",
                            f"{name!r} may be used before assignment",
                            line,
                            column,
                            width=len(name),
                        )
                    )
    return diags


def analyze_flow(unit: ast.TranslationUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for func in unit.functions:
        diags.extend(analyze_function_flow(func))
    return diags
