"""Type checking: resolves declarations, annotates expressions.

Every checked expression node gets a ``ctype`` attribute holding its
resolved :mod:`~repro.frontend.sema.types` type.  Errors are collected
(not raised) so one pass reports everything; after any error the
offending expression types as ``ERROR``, which is assignable to
anything to avoid cascades.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.frontend import ast
from repro.frontend.sema.diagnostics import Diagnostic
from repro.frontend.sema.types import (
    ERROR,
    FLOAT,
    INT,
    VOID,
    Array,
    Pointer,
    Struct,
    Type,
    decay,
    is_arith,
    is_scalar,
)

_INT_ONLY = frozenset({"%", "&", "|", "^", "<<", ">>"})
_RELOPS = frozenset({"<", "<=", ">", ">=", "==", "!="})

#: Expression forms that denote storage (can be assigned / addressed).
_LVALUES = (ast.Var, ast.Index, ast.Deref, ast.Member)


class Signature(NamedTuple):
    ret: Type
    params: List[Tuple[str, Type]]


class TypeChecker:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.diags: List[Diagnostic] = []
        self.structs: Dict[str, Struct] = {}
        self.globals: Dict[str, Type] = {}
        self.functions: Dict[str, Signature] = {}
        self.scopes: Dict[str, Dict[str, Type]] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _diag(self, code: str, message: str, node, width: int = 1) -> None:
        line = getattr(node, "line", 0)
        column = getattr(node, "column", 0)
        self.diags.append(Diagnostic(code, message, line, column, width))

    def _resolve(
        self, base: str, struct: Optional[str], ptr: int, node, what: str
    ) -> Type:
        if base == "struct":
            definition = self.structs.get(struct or "")
            if definition is None:
                self._diag("TYP006", f"unknown struct {struct!r}", node)
                t: Type = ERROR
            else:
                t = definition
        elif base == "int":
            t = INT
        elif base == "float":
            t = FLOAT
        elif base == "void":
            if ptr:
                self._diag("TYP009", "void pointers are not supported", node)
                return ERROR
            self._diag("TYP009", f"void {what}", node)
            return ERROR
        else:
            self._diag("TYP012", f"unsupported type {base!r}", node)
            return ERROR
        for _ in range(ptr):
            t = Pointer(t)
        if isinstance(t, Struct) and ptr == 0 and what in ("parameter",):
            self._diag("TYP012", "struct parameters must be pointers", node)
            return ERROR
        return t

    # ------------------------------------------------------------------
    # Top-level collection
    # ------------------------------------------------------------------

    def run(self) -> None:
        self._collect_structs()
        self._collect_globals()
        self._collect_signatures()
        for func in self.unit.functions:
            self._check_function(func)

    def _collect_structs(self) -> None:
        # Register shells first so fields may point at any struct,
        # including the one being defined (linked-list idiom).
        for sd in self.unit.structs:
            if sd.name in self.structs:
                self._diag("TYP008", f"redefinition of struct {sd.name!r}", sd)
                continue
            self.structs[sd.name] = Struct(sd.name)
        for sd in self.unit.structs:
            definition = self.structs[sd.name]
            if definition.fields:
                continue  # duplicate definition already reported
            seen = set()
            for field in sd.fields:
                if field.name in seen:
                    self._diag(
                        "TYP008",
                        f"duplicate field {field.name!r} in struct {sd.name!r}",
                        field,
                    )
                    continue
                seen.add(field.name)
                if field.typ == "struct" and field.ptr == 0:
                    self._diag(
                        "TYP012",
                        "struct fields must be scalars or pointers",
                        field,
                    )
                    continue
                t = self._resolve(field.typ, field.struct, field.ptr, field, "field")
                definition.fields.append((field.name, t))

    def _collect_globals(self) -> None:
        for decl in self.unit.globals:
            if decl.name in self.globals:
                self._diag("TYP008", f"redeclaration of {decl.name!r}", decl)
                continue
            t = self._resolve(decl.typ, decl.struct, decl.ptr, decl, "global")
            if decl.array_size is not None:
                t = Array(t, decl.array_size)
            if decl.init is not None:
                limit = decl.array_size if decl.array_size is not None else 1
                if len(decl.init) > limit:
                    self._diag(
                        "TYP001", f"too many initializers for {decl.name!r}", decl
                    )
            self.globals[decl.name] = t

    def _collect_signatures(self) -> None:
        for func in self.unit.functions:
            if func.name in self.functions:
                self._diag("TYP008", f"redefinition of {func.name!r}", func)
                continue
            if len(func.params) > 4:
                self._diag(
                    "TYP012",
                    f"{func.name}: at most 4 parameters are supported",
                    func,
                )
            ret = (
                VOID
                if func.ret_type == "void" and not func.ret_ptr
                else self._resolve(func.ret_type, None, func.ret_ptr, func, "return type")
            )
            params: List[Tuple[str, Type]] = []
            seen = set()
            for param in func.params:
                if param.name in seen:
                    self._diag("TYP008", f"redeclaration of {param.name!r}", param)
                seen.add(param.name)
                t = self._resolve(param.typ, param.struct, param.ptr, param, "parameter")
                if param.is_array:
                    t = Array(t, None)
                params.append((param.name, t))
            self.functions[func.name] = Signature(ret, params)

    # ------------------------------------------------------------------
    # Function bodies
    # ------------------------------------------------------------------

    def _check_function(self, func: ast.FuncDef) -> None:
        signature = self.functions.get(func.name)
        if signature is None:
            return
        scope: Dict[str, Type] = {}
        for name, t in signature.params:
            scope[name] = t
        self.scopes[func.name] = scope
        self._stmt(func.body, scope, signature.ret)

    def _stmt(self, stmt: ast.Stmt, scope: Dict[str, Type], ret: Type) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._stmt(child, scope, ret)
        elif isinstance(stmt, ast.DeclStmt):
            self._decl(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._cond(stmt.cond, scope)
            self._stmt(stmt.then_body, scope, ret)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body, scope, ret)
        elif isinstance(stmt, ast.WhileStmt):
            self._cond(stmt.cond, scope)
            self._stmt(stmt.body, scope, ret)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._stmt(stmt.body, scope, ret)
            self._cond(stmt.cond, scope)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._expr(stmt.init, scope)
            if stmt.cond is not None:
                self._cond(stmt.cond, scope)
            if stmt.step is not None:
                self._expr(stmt.step, scope)
            self._stmt(stmt.body, scope, ret)
        elif isinstance(stmt, ast.SwitchStmt):
            selector = decay(self._value(stmt.selector, scope))
            if selector != INT and selector != ERROR:
                self._diag(
                    "TYP011", "switch selector must be int", stmt.selector or stmt
                )
            for case in stmt.cases:
                for child in case.body:
                    self._stmt(child, scope, ret)
        elif isinstance(stmt, ast.ReturnStmt):
            self._return(stmt, scope, ret)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass  # placement is validated by codegen's loop stacks
        else:
            self._diag("TYP012", f"unsupported statement {type(stmt).__name__}", stmt)

    def _decl(self, stmt: ast.DeclStmt, scope: Dict[str, Type]) -> None:
        if stmt.name in scope:
            self._diag("TYP008", f"redeclaration of {stmt.name!r}", stmt)
            return
        t = self._resolve(stmt.typ, stmt.struct, stmt.ptr, stmt, "declaration")
        if stmt.array_size is not None:
            t = Array(t, stmt.array_size)
        scope[stmt.name] = t
        if stmt.init is not None:
            value = decay(self._value(stmt.init, scope))
            if not self._assignable(t, value, stmt.init):
                self._diag(
                    "TYP001",
                    f"cannot initialize {t} variable {stmt.name!r} with {value}",
                    stmt.init,
                )

    def _return(self, stmt: ast.ReturnStmt, scope: Dict[str, Type], ret: Type) -> None:
        if stmt.value is None:
            if ret != VOID and ret != ERROR:
                self._diag("TYP010", "return without a value", stmt)
            return
        if ret == VOID:
            self._diag("TYP010", "return with a value in void function", stmt)
            self._expr(stmt.value, scope)
            return
        value = decay(self._value(stmt.value, scope))
        if not self._assignable(ret, value, stmt.value):
            self._diag(
                "TYP010", f"cannot return {value} from a function returning {ret}", stmt
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _cond(self, expr: Optional[ast.Expr], scope: Dict[str, Type]) -> None:
        if expr is None:
            return
        t = decay(self._value(expr, scope))
        if not is_scalar(t):
            self._diag("TYP011", f"condition has non-scalar type {t}", expr)

    def _value(self, expr: ast.Expr, scope: Dict[str, Type]) -> Type:
        """Type *expr* in a context that consumes its value."""
        t = self._expr(expr, scope)
        if t == VOID:
            self._diag("TYP009", "void value used", expr)
            return ERROR
        return t

    def _expr(self, expr: ast.Expr, scope: Dict[str, Type]) -> Type:
        t = self._expr_inner(expr, scope)
        expr.ctype = t
        return t

    def _expr_inner(self, expr: ast.Expr, scope: Dict[str, Type]) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.Var):
            t = scope.get(expr.name, self.globals.get(expr.name))
            if t is None:
                if expr.name in self.functions:
                    self._diag(
                        "TYP012", f"function {expr.name!r} used as a value", expr
                    )
                else:
                    self._diag(
                        "TYP007",
                        f"undeclared identifier {expr.name!r}",
                        expr,
                        width=len(expr.name),
                    )
                return ERROR
            return t
        if isinstance(expr, ast.Index):
            return self._index(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Deref):
            return self._deref(expr, scope)
        if isinstance(expr, ast.AddrOf):
            return self._addrof(expr, scope)
        if isinstance(expr, ast.Member):
            return self._member(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.CallExpr):
            return self._call(expr, scope)
        if isinstance(expr, ast.AssignExpr):
            return self._assign(expr, scope)
        if isinstance(expr, ast.IncDec):
            return self._incdec(expr, scope)
        self._diag("TYP012", f"unsupported expression {type(expr).__name__}", expr)
        return ERROR

    def _index(self, expr: ast.Index, scope: Dict[str, Type]) -> Type:
        base = scope.get(expr.base, self.globals.get(expr.base))
        if base is None:
            self._diag(
                "TYP007",
                f"undeclared identifier {expr.base!r}",
                expr,
                width=len(expr.base),
            )
            base = ERROR
        index = decay(self._value(expr.index, scope))
        if index != INT and index != ERROR:
            self._diag("TYP005", "array index must be int", expr.index)
        if base == ERROR:
            return ERROR
        base = decay(base)
        if not isinstance(base, Pointer):
            self._diag(
                "TYP005",
                f"{expr.base!r} is not an array or pointer",
                expr,
                width=len(expr.base),
            )
            return ERROR
        if isinstance(base.pointee, Struct):
            self._diag(
                "TYP005", "cannot index a pointer to struct; use ->", expr
            )
            return ERROR
        return base.pointee

    def _unary(self, expr: ast.Unary, scope: Dict[str, Type]) -> Type:
        t = decay(self._value(expr.operand, scope))
        if expr.op == "-":
            if not is_arith(t):
                self._diag("TYP001", f"unary - requires an arithmetic operand, got {t}", expr)
                return ERROR
            return t
        if expr.op == "~":
            if t != INT and t != ERROR:
                self._diag("TYP001", "~ requires an int operand", expr)
                return ERROR
            return INT
        if expr.op == "!":
            if not is_scalar(t):
                self._diag("TYP001", f"! requires a scalar operand, got {t}", expr)
            return INT
        self._diag("TYP012", f"unsupported unary operator {expr.op!r}", expr)
        return ERROR

    def _deref(self, expr: ast.Deref, scope: Dict[str, Type]) -> Type:
        t = decay(self._value(expr.operand, scope))
        if t == ERROR:
            return ERROR
        if not isinstance(t, Pointer):
            self._diag("TYP005", f"cannot dereference non-pointer type {t}", expr)
            return ERROR
        return t.pointee

    def _addrof(self, expr: ast.AddrOf, scope: Dict[str, Type]) -> Type:
        operand = expr.operand
        if not isinstance(operand, _LVALUES):
            self._diag("TYP004", "cannot take the address of a non-lvalue", expr)
            self._expr(operand, scope)
            return ERROR
        t = self._expr(operand, scope)
        if t == ERROR:
            return ERROR
        if isinstance(t, Array):
            self._diag(
                "TYP005",
                "cannot take the address of an array (take &a[0] instead)",
                expr,
            )
            return ERROR
        return Pointer(t)

    def _member(self, expr: ast.Member, scope: Dict[str, Type]) -> Type:
        base = self._expr(expr.base, scope)
        if base == ERROR:
            return ERROR
        if expr.arrow:
            base = decay(base)
            if not (isinstance(base, Pointer) and isinstance(base.pointee, Struct)):
                self._diag(
                    "TYP006", f"-> requires a pointer to struct, got {base}", expr
                )
                return ERROR
            struct = base.pointee
        else:
            if not isinstance(base, Struct):
                self._diag("TYP006", f". requires a struct value, got {base}", expr)
                return ERROR
            struct = base
        field = struct.field_type(expr.field)
        if field is None:
            self._diag(
                "TYP006",
                f"struct {struct.name!r} has no field {expr.field!r}",
                expr,
                width=len(expr.field),
            )
            return ERROR
        return field

    def _binary(self, expr: ast.Binary, scope: Dict[str, Type]) -> Type:
        left = decay(self._value(expr.left, scope))
        right = decay(self._value(expr.right, scope))
        op = expr.op
        if left == ERROR or right == ERROR:
            return ERROR
        if op in ("&&", "||"):
            for side, t in ((expr.left, left), (expr.right, right)):
                if not is_scalar(t):
                    self._diag("TYP001", f"{op} requires scalar operands, got {t}", side)
            return INT
        if op in _RELOPS:
            if is_arith(left) and is_arith(right):
                return INT
            if isinstance(left, Pointer) and isinstance(right, Pointer):
                if left != right:
                    self._diag(
                        "TYP001", f"cannot compare {left} with {right}", expr
                    )
                return INT
            if isinstance(left, Pointer) and self._is_null(expr.right):
                return INT
            if isinstance(right, Pointer) and self._is_null(expr.left):
                return INT
            self._diag("TYP001", f"cannot compare {left} with {right}", expr)
            return ERROR
        if op in _INT_ONLY:
            if left != INT or right != INT:
                self._diag("TYP001", f"{op} requires int operands", expr)
                return ERROR
            return INT
        # + - * / with pointer arithmetic on + and -.
        if op in ("+", "-"):
            if isinstance(left, Pointer) and right == INT:
                return left
            if op == "+" and left == INT and isinstance(right, Pointer):
                return right
            if op == "-" and isinstance(left, Pointer) and isinstance(right, Pointer):
                if left != right:
                    self._diag(
                        "TYP001", f"cannot subtract {right} from {left}", expr
                    )
                return INT
        if is_arith(left) and is_arith(right):
            return FLOAT if FLOAT in (left, right) else INT
        self._diag(
            "TYP001", f"invalid operands to {op} ({left} and {right})", expr
        )
        return ERROR

    @staticmethod
    def _is_null(expr: Optional[ast.Expr]) -> bool:
        return isinstance(expr, ast.IntLit) and expr.value == 0

    def _assignable(self, dst: Type, src: Type, value_node: Optional[ast.Expr]) -> bool:
        """May a value of *src* initialize/assign/convert into *dst*?

        Arithmetic types interconvert implicitly; pointers require exact
        type equality, except the literal ``0`` which acts as null.
        Callers decay arrays on both sides first.
        """
        if dst == ERROR or src == ERROR:
            return True
        if dst == src:
            return True
        if is_arith(dst) and is_arith(src):
            return True
        if isinstance(dst, Pointer) and self._is_null(value_node):
            return True
        return False

    def _call(self, expr: ast.CallExpr, scope: Dict[str, Type]) -> Type:
        signature = self.functions.get(expr.name)
        if signature is None:
            self._diag(
                "TYP007",
                f"call to undeclared function {expr.name!r}",
                expr,
                width=len(expr.name),
            )
            for arg in expr.args:
                self._expr(arg, scope)
            return ERROR
        if len(expr.args) != len(signature.params):
            self._diag(
                "TYP002",
                f"{expr.name} expects {len(signature.params)} arguments, "
                f"got {len(expr.args)}",
                expr,
            )
            for arg in expr.args:
                self._expr(arg, scope)
            return signature.ret
        for i, (arg, (param_name, param_type)) in enumerate(
            zip(expr.args, signature.params)
        ):
            value = decay(self._value(arg, scope))
            wanted = decay(param_type)
            if not self._assignable(wanted, value, arg):
                self._diag(
                    "TYP003",
                    f"argument {i + 1} to {expr.name!r} ({param_name}) "
                    f"expects {wanted}, got {value}",
                    arg,
                )
        return signature.ret

    def _assign(self, expr: ast.AssignExpr, scope: Dict[str, Type]) -> Type:
        target = self._lvalue(expr.target, scope)
        value = decay(self._value(expr.value, scope))
        if target == ERROR:
            return ERROR
        if expr.op == "=":
            if not self._assignable(target, value, expr.value):
                self._diag("TYP001", f"cannot assign {value} to {target}", expr)
            return target
        op_text = expr.op[:-1]
        if op_text in _INT_ONLY:
            if target != INT or value != INT:
                self._diag("TYP001", f"{expr.op} requires int operands", expr)
            return target
        if isinstance(target, Pointer):
            if op_text not in ("+", "-") or value != INT:
                self._diag(
                    "TYP001", f"invalid pointer compound assignment {expr.op}", expr
                )
            return target
        if not (is_arith(target) and is_arith(value)):
            self._diag(
                "TYP001", f"invalid operands to {expr.op} ({target} and {value})", expr
            )
        return target

    def _incdec(self, expr: ast.IncDec, scope: Dict[str, Type]) -> Type:
        target = self._lvalue(expr.target, scope)
        if target == ERROR:
            return ERROR
        if not (is_arith(target) or isinstance(target, Pointer)):
            self._diag("TYP005", f"{expr.op} requires a scalar lvalue, got {target}", expr)
            return ERROR
        return target

    def _lvalue(self, target: Optional[ast.Expr], scope: Dict[str, Type]) -> Type:
        """Type a store destination; rejects arrays and struct values."""
        if not isinstance(target, _LVALUES):
            self._diag("TYP004", "assignment to non-lvalue", target)
            if target is not None:
                self._expr(target, scope)
            return ERROR
        t = self._expr(target, scope)
        if isinstance(t, Array):
            self._diag("TYP005", "cannot assign to an array", target)
            return ERROR
        if isinstance(t, Struct):
            self._diag("TYP012", "struct assignment is not supported", target)
            return ERROR
        return t
