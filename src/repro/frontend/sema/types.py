"""Semantic types for the mini-C frontend.

The AST carries declarators as strings plus pointer depth; sema
resolves them into structured types.  Primitives compare by name,
pointers and arrays structurally, structs nominally (by tag) — two
``struct Node`` mentions always mean the same definition because struct
definitions live in one global namespace.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Type:
    """Base class for resolved mini-C types."""

    __slots__ = ()


class Prim(Type):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Prim) and other.name == self.name

    def __hash__(self):
        return hash(("prim", self.name))

    def __str__(self):
        return self.name

    __repr__ = __str__


INT = Prim("int")
FLOAT = Prim("float")
VOID = Prim("void")
#: Poison type produced after a reported error; assignable to anything
#: so one mistake does not cascade into a wall of diagnostics.
ERROR = Prim("<error>")


class Pointer(Type):
    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def __eq__(self, other):
        return isinstance(other, Pointer) and other.pointee == self.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __str__(self):
        return f"{self.pointee}*"

    __repr__ = __str__


class Array(Type):
    """An array object; ``size`` is None for decayed array parameters."""

    __slots__ = ("elem", "size")

    def __init__(self, elem: Type, size: Optional[int]):
        self.elem = elem
        self.size = size

    def __eq__(self, other):
        return isinstance(other, Array) and other.elem == self.elem

    def __hash__(self):
        return hash(("array", self.elem))

    def __str__(self):
        return f"{self.elem}[{self.size if self.size is not None else ''}]"

    __repr__ = __str__


class Struct(Type):
    """A struct definition: ordered scalar/pointer fields, one word each."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Optional[List[Tuple[str, Type]]] = None):
        self.name = name
        self.fields = fields if fields is not None else []

    def field_type(self, name: str) -> Optional[Type]:
        for field_name, typ in self.fields:
            if field_name == name:
                return typ
        return None

    def field_index(self, name: str) -> int:
        for i, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return i
        raise KeyError(name)

    @property
    def words(self) -> int:
        return len(self.fields)

    def __eq__(self, other):
        return isinstance(other, Struct) and other.name == self.name

    def __hash__(self):
        return hash(("struct", self.name))

    def __str__(self):
        return f"struct {self.name}"

    __repr__ = __str__


def is_arith(t: Type) -> bool:
    return t == INT or t == FLOAT or t == ERROR


def is_scalar(t: Type) -> bool:
    """A one-word value: int, float, or pointer (usable in conditions)."""
    return is_arith(t) or isinstance(t, Pointer)


def decay(t: Type) -> Type:
    """Array-to-pointer decay in value contexts."""
    if isinstance(t, Array):
        return Pointer(t.elem)
    return t


def words(t: Type) -> int:
    if isinstance(t, Array):
        return (t.size or 1) * words(t.elem)
    if isinstance(t, Struct):
        return t.words
    return 1


def stride_bytes(pointee: Type) -> int:
    """Bytes between consecutive elements a pointer to *pointee* steps over."""
    return 4 * words(pointee)
