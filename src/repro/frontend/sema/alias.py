"""Flow-insensitive Steensgaard-style points-to analysis.

Classic unification: every abstract node has at most one points-to
cell; assignments unify the cells of both sides, so the analysis runs
in near-linear time.  Struct objects are field-collapsed (all pointer
fields of an object share one cell) and arrays are element-collapsed —
both standard Steensgaard simplifications.

Outputs:

- ``exposed[func]`` — locals whose address is taken (``&x``).  Codegen
  pins these into memory-resident slots, which keeps the register
  allocator's frame-reference analysis sound, and everything *not* in
  the set becomes a ``frame_private`` fact the IR-level alias oracle
  (:mod:`repro.staticanalysis.alias`) can rely on.
- ``points_to[func][var]`` — the abstract locations a pointer variable
  may target, under a closed-world assumption (all callers are in this
  translation unit).  Locations are named ``func::var`` for locals and
  ``var`` for globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.frontend import ast


@dataclass
class AliasInfo:
    exposed: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    points_to: Dict[str, Dict[str, Tuple[str, ...]]] = field(default_factory=dict)

    def exposed_in(self, func: str) -> FrozenSet[str]:
        return self.exposed.get(func, frozenset())


class _Steensgaard:
    """Union-find over abstract nodes with unifying points-to cells."""

    def __init__(self):
        self.parent: Dict = {}
        self.cell_of: Dict = {}  # root -> node it points to
        self.locs: Dict = {}  # root -> concrete location names
        self._fresh = 0

    def node(self, key) -> object:
        if key not in self.parent:
            self.parent[key] = key
        return self.find(key)

    def fresh(self) -> object:
        self._fresh += 1
        key = ("tmp", self._fresh)
        self.parent[key] = key
        return key

    def find(self, key):
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def add_loc(self, key, name: str) -> None:
        root = self.node(key)
        self.locs.setdefault(root, set()).add(name)

    def cell(self, key):
        """The points-to cell of *key*, created on demand."""
        root = self.find(self.node(key))
        target = self.cell_of.get(root)
        if target is None:
            target = self.fresh()
            self.cell_of[root] = target
        return self.find(target)

    def unify(self, a, b) -> None:
        work = [(a, b)]
        while work:
            x, y = work.pop()
            rx, ry = self.find(self.node(x)), self.find(self.node(y))
            if rx == ry:
                continue
            tx = self.cell_of.pop(rx, None)
            ty = self.cell_of.pop(ry, None)
            self.parent[ry] = rx
            merged = self.locs.pop(ry, None)
            if merged:
                self.locs.setdefault(rx, set()).update(merged)
            if tx is not None and ty is not None:
                self.cell_of[rx] = tx
                work.append((tx, ty))
            elif tx is not None or ty is not None:
                self.cell_of[rx] = tx if tx is not None else ty

    def locs_of(self, key) -> FrozenSet[str]:
        root = self.find(self.node(key))
        return frozenset(self.locs.get(root, ()))


class _Collector:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.uf = _Steensgaard()
        self.exposed: Dict[str, Set[str]] = {}
        self.local_names: Dict[str, Set[str]] = {}
        for glob in unit.globals:
            self.uf.add_loc(("v", "", glob.name), glob.name)

    # Node naming -------------------------------------------------------

    def var(self, func: str, name: str):
        if name in self.local_names.get(func, ()):
            key = ("v", func, name)
            self.uf.add_loc(key, f"{func}::{name}")
            return key
        key = ("v", "", name)
        self.uf.add_loc(key, name)
        return key

    # Constraint generation --------------------------------------------

    def run(self) -> AliasInfo:
        for func in self.unit.functions:
            names = {p.name for p in func.params}
            self._collect_decls(func.body, names)
            self.local_names[func.name] = names
            self.exposed.setdefault(func.name, set())
        for func in self.unit.functions:
            self._stmt(func.body, func)
        info = AliasInfo()
        for func in self.unit.functions:
            info.exposed[func.name] = frozenset(self.exposed[func.name])
            pts: Dict[str, Tuple[str, ...]] = {}
            for name in sorted(self.local_names[func.name]):
                key = ("v", func.name, name)
                if self.uf.find(self.uf.node(key)) in self.uf.cell_of:
                    targets = self.uf.locs_of(self.uf.cell(key))
                    if targets:
                        pts[name] = tuple(sorted(targets))
            info.points_to[func.name] = pts
        return info

    def _collect_decls(self, stmt: ast.Stmt, names: Set[str]) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._collect_decls(child, names)
        elif isinstance(stmt, ast.DeclStmt):
            names.add(stmt.name)
        elif isinstance(stmt, ast.IfStmt):
            self._collect_decls(stmt.then_body, names)
            if stmt.else_body is not None:
                self._collect_decls(stmt.else_body, names)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt, ast.ForStmt)):
            self._collect_decls(stmt.body, names)
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                for child in case.body:
                    self._collect_decls(child, names)

    def _stmt(self, stmt: ast.Stmt, func: ast.FuncDef) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._stmt(child, func)
        elif isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                value = self._value(stmt.init, func)
                if value is not None:
                    self.uf.unify(
                        self.uf.cell(self.var(func.name, stmt.name)),
                        self.uf.cell(value),
                    )
        elif isinstance(stmt, ast.ExprStmt):
            self._value(stmt.expr, func)
        elif isinstance(stmt, ast.IfStmt):
            self._value(stmt.cond, func)
            self._stmt(stmt.then_body, func)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body, func)
        elif isinstance(stmt, ast.WhileStmt):
            self._value(stmt.cond, func)
            self._stmt(stmt.body, func)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._stmt(stmt.body, func)
            self._value(stmt.cond, func)
        elif isinstance(stmt, ast.ForStmt):
            for expr in (stmt.init, stmt.cond, stmt.step):
                if expr is not None:
                    self._value(expr, func)
            self._stmt(stmt.body, func)
        elif isinstance(stmt, ast.SwitchStmt):
            self._value(stmt.selector, func)
            for case in stmt.cases:
                for child in case.body:
                    self._stmt(child, func)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                value = self._value(stmt.value, func)
                if value is not None:
                    ret = self.uf.node(("ret", func.name))
                    self.uf.unify(self.uf.cell(ret), self.uf.cell(value))

    def _object_of(self, base: Optional[ast.Expr], func: ast.FuncDef, arrow: bool):
        """The abstract node of the struct object a member access hits."""
        if not arrow and isinstance(base, ast.Var):
            return self.var(func.name, base.name)
        if not arrow and isinstance(base, ast.Deref):
            pointer = self._value(base.operand, func)
            return self.uf.cell(pointer) if pointer is not None else None
        if arrow and base is not None:
            pointer = self._value(base, func)
            return self.uf.cell(pointer) if pointer is not None else None
        return None

    def _value(self, expr: Optional[ast.Expr], func: ast.FuncDef):
        """Process side constraints and return the value's abstract node
        (None when the value cannot carry a pointer)."""
        if expr is None:
            return None
        name = func.name
        if isinstance(expr, ast.Var):
            return self.var(name, expr.name)
        if isinstance(expr, ast.AddrOf):
            operand = expr.operand
            temp = self.uf.fresh()
            if isinstance(operand, ast.Var):
                if operand.name in self.local_names.get(name, ()):
                    self.exposed[name].add(operand.name)
                self.uf.unify(self.uf.cell(temp), self.var(name, operand.name))
            elif isinstance(operand, ast.Index):
                self._value(operand.index, func)
                self.uf.unify(self.uf.cell(temp), self.var(name, operand.base))
            elif isinstance(operand, ast.Member):
                obj = self._object_of(operand.base, func, operand.arrow)
                if obj is not None:
                    self.uf.unify(self.uf.cell(temp), obj)
            elif isinstance(operand, ast.Deref):
                return self._value(operand.operand, func)
            return temp
        if isinstance(expr, ast.Deref):
            pointer = self._value(expr.operand, func)
            if pointer is None:
                return None
            return self.uf.cell(pointer)
        if isinstance(expr, ast.Member):
            obj = self._object_of(expr.base, func, expr.arrow)
            if obj is None:
                return None
            temp = self.uf.fresh()
            self.uf.unify(self.uf.cell(temp), self.uf.cell(obj))
            return temp
        if isinstance(expr, ast.Index):
            self._value(expr.index, func)
            # Elements are scalars (no pointer arrays), so no value node.
            self.var(name, expr.base)
            return None
        if isinstance(expr, ast.Unary):
            self._value(expr.operand, func)
            return None
        if isinstance(expr, ast.Binary):
            left = self._value(expr.left, func)
            right = self._value(expr.right, func)
            if expr.op in ("+", "-"):
                return left if left is not None else right
            return None
        if isinstance(expr, ast.CallExpr):
            self._call(expr, func)
            return self.uf.node(("ret", expr.name))
        if isinstance(expr, ast.AssignExpr):
            return self._assign(expr, func)
        if isinstance(expr, ast.IncDec):
            return self._value(expr.target, func)
        return None

    def _call(self, expr: ast.CallExpr, func: ast.FuncDef) -> None:
        callee = next(
            (f for f in self.unit.functions if f.name == expr.name), None
        )
        for i, arg in enumerate(expr.args):
            value = self._value(arg, func)
            if value is None or callee is None or i >= len(callee.params):
                continue
            param = self.uf.node(("v", callee.name, callee.params[i].name))
            self.uf.unify(self.uf.cell(param), self.uf.cell(value))

    def _assign(self, expr: ast.AssignExpr, func: ast.FuncDef):
        value = self._value(expr.value, func)
        target = expr.target
        if isinstance(target, ast.Var):
            if value is not None:
                self.uf.unify(
                    self.uf.cell(self.var(func.name, target.name)),
                    self.uf.cell(value),
                )
            return self.var(func.name, target.name)
        if isinstance(target, ast.Deref):
            pointer = self._value(target.operand, func)
            if pointer is not None and value is not None:
                obj = self.uf.cell(pointer)
                self.uf.unify(self.uf.cell(obj), self.uf.cell(value))
            return value
        if isinstance(target, ast.Member):
            obj = self._object_of(target.base, func, target.arrow)
            if obj is not None and value is not None:
                self.uf.unify(self.uf.cell(obj), self.uf.cell(value))
            return value
        if isinstance(target, ast.Index):
            self._value(target.index, func)
            return value
        return value


def analyze_alias(unit: ast.TranslationUnit) -> AliasInfo:
    """Run Steensgaard points-to analysis over *unit*."""
    return _Collector(unit).run()
