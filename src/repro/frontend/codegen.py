"""Naive RTL code generation from the mini-C AST.

The generator is deliberately unsophisticated, mirroring what VPO's C
frontend hands to the backend:

- every local scalar, array, and parameter lives in a stack slot;
- every expression step lands in a fresh pseudo register;
- address arithmetic is explicit (``t1 = fp + 8; t2 = M[t1]``, and
  ``t1 = HI[g]; t2 = t1 + LO[g]`` for globals);
- conditions end blocks with an explicit conditional branch *plus* an
  explicit jump (later phases remove the redundant ones).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse
from repro.ir.cfg import validate_function
from repro.ir.function import BasicBlock, Function, GlobalVar, Program
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym, UnOp
from repro.machine.target import ARG_REGS, FP, RV, ALU_IMM_LIMIT

_INT_BINOPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "lsl",
    ">>": "asr",
}

_FLOAT_BINOPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

_RELOPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}

_INT_ONLY = frozenset({"%", "&", "|", "^", "<<", ">>"})


class _Symbol:
    """A resolved name: local slot, global, or array parameter."""

    __slots__ = ("kind", "typ", "slot", "glob", "is_array")

    def __init__(self, kind, typ, slot=None, glob=None, is_array=False):
        self.kind = kind  # 'local' | 'global'
        self.typ = typ
        self.slot = slot
        self.glob = glob
        self.is_array = is_array


class _FunctionCodegen:
    """Generate naive RTL for one function."""

    def __init__(self, generator: "CodeGenerator", node: ast.FuncDef):
        self.generator = generator
        self.node = node
        self.func = Function(node.name, returns_value=node.ret_type != "void")
        self.symbols: Dict[str, _Symbol] = {}
        self.current: BasicBlock = self.func.add_block()
        self.exit_label = "Lexit"
        self.break_stack: List[str] = []
        self.continue_stack: List[str] = []

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def emit(self, inst) -> None:
        self.current.insts.append(inst)

    def start_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        self.func.blocks.append(block)
        self.current = block
        return block

    def new_label(self) -> str:
        return self.func.new_label()

    def fresh(self) -> Reg:
        return self.func.new_reg()

    def emit_int_const(self, value: int) -> Reg:
        """Load an integer constant, splitting values too big for one RTL."""
        reg = self.fresh()
        if abs(value) <= ALU_IMM_LIMIT:
            self.emit(Assign(reg, Const(value)))
            return reg
        unsigned = value & 0xFFFFFFFF
        high = (unsigned >> 16) & 0xFFFF
        low = unsigned & 0xFFFF
        self.emit(Assign(reg, Const(high)))
        shifted = self.fresh()
        self.emit(Assign(shifted, BinOp("lsl", reg, Const(16))))
        result = self.fresh()
        self.emit(Assign(result, BinOp("or", shifted, Const(low))))
        return result

    def local_addr(self, offset: int) -> Reg:
        reg = self.fresh()
        if offset == 0:
            self.emit(Assign(reg, FP))
        else:
            self.emit(Assign(reg, BinOp("add", FP, Const(offset))))
        return reg

    def global_addr(self, name: str) -> Reg:
        high = self.fresh()
        self.emit(Assign(high, Sym(name, "hi")))
        addr = self.fresh()
        self.emit(Assign(addr, BinOp("add", high, Sym(name, "lo"))))
        return addr

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------

    def declare_local(
        self, name: str, typ: str, words: int, is_array: bool, line: int, is_param=False
    ) -> _Symbol:
        if name in self.symbols:
            raise CompileError(f"redeclaration of {name!r}", line)
        slot = self.func.add_local(name, words, typ, is_array, is_param)
        symbol = _Symbol("local", typ, slot=slot, is_array=is_array)
        self.symbols[name] = symbol
        return symbol

    def lookup(self, name: str, line: int) -> _Symbol:
        symbol = self.symbols.get(name)
        if symbol is not None:
            return symbol
        glob = self.generator.program.globals.get(name)
        if glob is not None:
            return _Symbol("global", glob.typ, glob=glob, is_array=glob.is_array)
        raise CompileError(f"undeclared identifier {name!r}", line)

    # ------------------------------------------------------------------
    # Top-level driver
    # ------------------------------------------------------------------

    def run(self) -> Function:
        node = self.node
        if len(node.params) > 4:
            raise CompileError(
                f"{node.name}: at most 4 parameters are supported", node.line
            )
        for i, param in enumerate(node.params):
            # An array parameter's slot holds the array base address.
            symbol = self.declare_local(
                param.name, param.typ, 1, False, node.line, is_param=True
            )
            symbol.is_array = param.is_array
            addr = self.local_addr(symbol.slot.offset)
            self.emit(Assign(Mem(addr), ARG_REGS[i]))
        self.gen_stmt(node.body)
        if self.current.terminator() is None:
            if self._current_is_unreachable():
                # The trailing block opened after a return/break is
                # empty and unreferenced; drop it rather than emit an
                # unreachable jump (VPO's frontend does not emit dead
                # code, which is why phase d is so rarely active).
                self.func.blocks.remove(self.current)
            else:
                self.emit(Jump(self.exit_label))
        exit_block = self.start_block(self.exit_label)
        exit_block.insts.append(Return())
        validate_function(self.func)
        return self.func

    def _current_is_unreachable(self) -> bool:
        """The current block is empty, unreferenced, and not fallen into."""
        if self.current.insts or self.current is self.func.blocks[0]:
            return False
        for block in self.func.blocks:
            if block is self.current:
                continue
            term = block.terminator()
            if isinstance(term, (Jump, CondBranch)) and term.target == self.current.label:
                return False
        index = self.func.blocks.index(self.current)
        previous = self.func.blocks[index - 1]
        return previous.terminator() is not None and not isinstance(
            previous.terminator(), CondBranch
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.gen_stmt(child)
        elif isinstance(stmt, ast.DeclStmt):
            self.gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.eval_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.SwitchStmt):
            self.gen_switch(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self.gen_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.break_stack:
                raise CompileError("break outside a loop", stmt.line)
            self.emit(Jump(self.break_stack[-1]))
            self.start_block(self.new_label())
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.continue_stack:
                raise CompileError("continue outside a loop", stmt.line)
            self.emit(Jump(self.continue_stack[-1]))
            self.start_block(self.new_label())
        else:
            raise CompileError(f"cannot generate {type(stmt).__name__}", stmt.line)

    def gen_decl(self, stmt: ast.DeclStmt) -> None:
        if stmt.array_size is not None:
            self.declare_local(stmt.name, stmt.typ, stmt.array_size, True, stmt.line)
            return
        symbol = self.declare_local(stmt.name, stmt.typ, 1, False, stmt.line)
        if stmt.init is not None:
            value, typ = self.eval_expr(stmt.init)
            value = self.convert(value, typ, stmt.typ)
            addr = self.local_addr(symbol.slot.offset)
            self.emit(Assign(Mem(addr), value))

    def gen_if(self, stmt: ast.IfStmt) -> None:
        then_label = self.new_label()
        end_label = self.new_label()
        else_label = self.new_label() if stmt.else_body is not None else end_label
        self.gen_cond(stmt.cond, then_label, else_label)
        self.start_block(then_label)
        self.gen_stmt(stmt.then_body)
        if stmt.else_body is not None:
            if self.current.terminator() is None:
                self.emit(Jump(end_label))
            self.start_block(else_label)
            self.gen_stmt(stmt.else_body)
        self.start_block(end_label)

    def gen_while(self, stmt: ast.WhileStmt) -> None:
        cond_label = self.new_label()
        body_label = self.new_label()
        exit_label = self.new_label()
        self.start_block(cond_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self.start_block(body_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(cond_label)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        if self.current.terminator() is None:
            self.emit(Jump(cond_label))
        self.start_block(exit_label)

    def gen_do_while(self, stmt: ast.DoWhileStmt) -> None:
        body_label = self.new_label()
        cond_label = self.new_label()
        exit_label = self.new_label()
        self.start_block(body_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(cond_label)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.start_block(cond_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self.start_block(exit_label)

    def gen_for(self, stmt: ast.ForStmt) -> None:
        cond_label = self.new_label()
        body_label = self.new_label()
        step_label = self.new_label()
        exit_label = self.new_label()
        if stmt.init is not None:
            self.eval_expr(stmt.init)
        self.start_block(cond_label)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, exit_label)
        else:
            self.emit(Jump(body_label))
        self.start_block(body_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(step_label)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.start_block(step_label)
        if stmt.step is not None:
            self.eval_expr(stmt.step)
        self.emit(Jump(cond_label))
        self.start_block(exit_label)

    def gen_switch(self, stmt: ast.SwitchStmt) -> None:
        """Lower switch to a compare chain plus fallthrough bodies.

        The dispatch sequence compares the selector against each case
        constant in source order; bodies are laid out in order so C
        fallthrough semantics come from plain block fallthrough.
        ``break`` targets the switch exit.
        """
        selector, typ = self.eval_expr(stmt.selector)
        if typ != "int":
            raise CompileError("switch selector must be int", stmt.line)
        exit_label = self.new_label()
        case_labels = [self.new_label() for _ in stmt.cases]
        default_label = exit_label
        for label, case in zip(case_labels, stmt.cases):
            if case.value is None:
                default_label = label
        for label, case in zip(case_labels, stmt.cases):
            if case.value is None:
                continue
            constant = self.emit_int_const(case.value)
            self.emit(Compare(selector, constant))
            self.emit(CondBranch("eq", label))
            self.start_block(self.new_label())
        self.emit(Jump(default_label))
        self.break_stack.append(exit_label)
        for label, case in zip(case_labels, stmt.cases):
            self.start_block(label)
            for child in case.body:
                self.gen_stmt(child)
        self.break_stack.pop()
        if self.current.terminator() is None:
            pass  # fall through into the exit block
        self.start_block(exit_label)

    def gen_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is not None:
            if not self.func.returns_value:
                raise CompileError("return with a value in void function", stmt.line)
            value, typ = self.eval_expr(stmt.value)
            value = self.convert(value, typ, self.node.ret_type)
            self.emit(Assign(RV, value))
        elif self.func.returns_value:
            raise CompileError("return without a value", stmt.line)
        self.emit(Jump(self.exit_label))
        self.start_block(self.new_label())

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------

    def gen_cond(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """End the current block branching on *expr*.

        The naive shape is ``IC=...; PC=IC relop 0,true; PC=false;`` —
        the redundant half is later removed by phases u/i/r.
        """
        if isinstance(expr, ast.IntLit):
            self.emit(Jump(true_label if expr.value != 0 else false_label))
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.new_label()
            self.gen_cond(expr.left, mid, false_label)
            self.start_block(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.new_label()
            self.gen_cond(expr.left, true_label, mid)
            self.start_block(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op in _RELOPS:
            left, left_typ = self.eval_expr(expr.left)
            right, right_typ = self.eval_expr(expr.right)
            common = "float" if "float" in (left_typ, right_typ) else "int"
            left = self.convert(left, left_typ, common)
            right = self.convert(right, right_typ, common)
            self.emit(Compare(left, right))
            self.emit(CondBranch(_RELOPS[expr.op], true_label))
            self.start_block(self.new_label())
            self.emit(Jump(false_label))
            self.start_block(self.new_label())
            return
        value, typ = self.eval_expr(expr)
        zero = self.fresh()
        self.emit(Assign(zero, Const(0.0 if typ == "float" else 0)))
        self.emit(Compare(value, zero))
        self.emit(CondBranch("ne", true_label))
        self.start_block(self.new_label())
        self.emit(Jump(false_label))
        self.start_block(self.new_label())

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def convert(self, reg: Reg, from_typ: str, to_typ: str) -> Reg:
        if from_typ == to_typ:
            return reg
        result = self.fresh()
        if from_typ == "int" and to_typ == "float":
            self.emit(Assign(result, UnOp("itof", reg)))
        elif from_typ == "float" and to_typ == "int":
            self.emit(Assign(result, UnOp("ftoi", reg)))
        else:
            raise CompileError(f"cannot convert {from_typ} to {to_typ}")
        return result

    def eval_expr(self, expr: ast.Expr) -> Tuple[Reg, str]:
        if isinstance(expr, ast.IntLit):
            return self.emit_int_const(expr.value), "int"
        if isinstance(expr, ast.FloatLit):
            reg = self.fresh()
            self.emit(Assign(reg, Const(float(expr.value))))
            return reg, "float"
        if isinstance(expr, ast.Var):
            return self.load_var(expr)
        if isinstance(expr, ast.Index):
            addr, typ = self.element_addr(expr)
            value = self.fresh()
            self.emit(Assign(value, Mem(addr)))
            return value, typ
        if isinstance(expr, ast.Unary):
            return self.eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.eval_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self.eval_call(expr)
        if isinstance(expr, ast.AssignExpr):
            return self.eval_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.eval_incdec(expr)
        raise CompileError(f"cannot evaluate {type(expr).__name__}", expr.line)

    def load_var(self, expr: ast.Var) -> Tuple[Reg, str]:
        symbol = self.lookup(expr.name, expr.line)
        if symbol.is_array:
            # An array name evaluates to its base address.
            return self.array_base(symbol), "int"
        if symbol.kind == "local":
            addr = self.local_addr(symbol.slot.offset)
        else:
            addr = self.global_addr(symbol.glob.name)
        value = self.fresh()
        self.emit(Assign(value, Mem(addr)))
        return value, symbol.typ

    def array_base(self, symbol: _Symbol) -> Reg:
        if symbol.kind == "global":
            return self.global_addr(symbol.glob.name)
        if symbol.slot.is_array:
            return self.local_addr(symbol.slot.offset)
        # Array parameter: the slot holds the base address.
        addr = self.local_addr(symbol.slot.offset)
        base = self.fresh()
        self.emit(Assign(base, Mem(addr)))
        return base

    def element_addr(self, expr: ast.Index) -> Tuple[Reg, str]:
        symbol = self.lookup(expr.base, expr.line)
        if not symbol.is_array:
            raise CompileError(f"{expr.base!r} is not an array", expr.line)
        base = self.array_base(symbol)
        index, index_typ = self.eval_expr(expr.index)
        if index_typ != "int":
            raise CompileError("array index must be int", expr.line)
        four = self.fresh()
        self.emit(Assign(four, Const(4)))
        scaled = self.fresh()
        self.emit(Assign(scaled, BinOp("mul", index, four)))
        addr = self.fresh()
        self.emit(Assign(addr, BinOp("add", base, scaled)))
        return addr, symbol.typ

    def eval_unary(self, expr: ast.Unary) -> Tuple[Reg, str]:
        if expr.op == "!":
            return self.eval_as_flag(expr)
        operand, typ = self.eval_expr(expr.operand)
        result = self.fresh()
        if expr.op == "-":
            self.emit(Assign(result, UnOp("fneg" if typ == "float" else "neg", operand)))
            return result, typ
        if expr.op == "~":
            if typ != "int":
                raise CompileError("~ requires an int operand", expr.line)
            self.emit(Assign(result, UnOp("not", operand)))
            return result, "int"
        raise CompileError(f"bad unary operator {expr.op!r}", expr.line)

    def eval_binary(self, expr: ast.Binary) -> Tuple[Reg, str]:
        if expr.op in _RELOPS or expr.op in ("&&", "||"):
            return self.eval_as_flag(expr)
        left, left_typ = self.eval_expr(expr.left)
        right, right_typ = self.eval_expr(expr.right)
        if expr.op in _INT_ONLY:
            if left_typ != "int" or right_typ != "int":
                raise CompileError(f"{expr.op} requires int operands", expr.line)
            common = "int"
        else:
            common = "float" if "float" in (left_typ, right_typ) else "int"
        left = self.convert(left, left_typ, common)
        right = self.convert(right, right_typ, common)
        op = _FLOAT_BINOPS[expr.op] if common == "float" else _INT_BINOPS[expr.op]
        result = self.fresh()
        self.emit(Assign(result, BinOp(op, left, right)))
        return result, common

    def eval_as_flag(self, expr: ast.Expr) -> Tuple[Reg, str]:
        """Materialize a boolean expression as 0/1 in a register."""
        result = self.fresh()
        true_label = self.new_label()
        false_label = self.new_label()
        end_label = self.new_label()
        self.gen_cond(expr, true_label, false_label)
        self.start_block(true_label)
        self.emit(Assign(result, Const(1)))
        self.emit(Jump(end_label))
        self.start_block(false_label)
        self.emit(Assign(result, Const(0)))
        self.start_block(end_label)
        return result, "int"

    def eval_call(self, expr: ast.CallExpr) -> Tuple[Reg, str]:
        signature = self.generator.signatures.get(expr.name)
        if signature is None:
            raise CompileError(f"call to undeclared function {expr.name!r}", expr.line)
        ret_type, params = signature
        if len(expr.args) != len(params):
            raise CompileError(
                f"{expr.name} expects {len(params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        values: List[Reg] = []
        for arg, param in zip(expr.args, params):
            if param.is_array:
                if isinstance(arg, ast.Var):
                    symbol = self.lookup(arg.name, arg.line)
                    if symbol.is_array:
                        values.append(self.array_base(symbol))
                        continue
                raise CompileError(
                    f"argument to array parameter {param.name!r} must be an array",
                    expr.line,
                )
            value, typ = self.eval_expr(arg)
            values.append(self.convert(value, typ, param.typ))
        for i, value in enumerate(values):
            self.emit(Assign(ARG_REGS[i], value))
        self.emit(Call(expr.name, len(values)))
        if ret_type == "void":
            return RV, "int"  # value must not be used; typechecked below
        result = self.fresh()
        self.emit(Assign(result, RV))
        return result, ret_type

    def eval_assign(self, expr: ast.AssignExpr) -> Tuple[Reg, str]:
        target = expr.target
        if isinstance(target, ast.Var):
            symbol = self.lookup(target.name, target.line)
            if symbol.is_array:
                raise CompileError("cannot assign to an array", expr.line)
            target_typ = symbol.typ

            def make_addr():
                if symbol.kind == "local":
                    return self.local_addr(symbol.slot.offset)
                return self.global_addr(symbol.glob.name)

        else:
            assert isinstance(target, ast.Index)
            __, target_typ = self.lookup(target.base, target.line).typ, None
            symbol = self.lookup(target.base, target.line)
            target_typ = symbol.typ

            def make_addr():
                addr, __ = self.element_addr(target)
                return addr

        if expr.op == "=":
            value, value_typ = self.eval_expr(expr.value)
            value = self.convert(value, value_typ, target_typ)
            addr = make_addr()
            self.emit(Assign(Mem(addr), value))
            return value, target_typ

        # Compound assignment: read-modify-write, naively recomputing
        # the address (CSE later removes the duplicate computation).
        op_text = expr.op[:-1]
        load_addr = make_addr()
        old = self.fresh()
        self.emit(Assign(old, Mem(load_addr)))
        rhs, rhs_typ = self.eval_expr(expr.value)
        if op_text in _INT_ONLY:
            if target_typ != "int" or rhs_typ != "int":
                raise CompileError(f"{expr.op} requires int operands", expr.line)
            common = "int"
        else:
            common = "float" if "float" in (target_typ, rhs_typ) else "int"
        left = self.convert(old, target_typ, common)
        right = self.convert(rhs, rhs_typ, common)
        op = _FLOAT_BINOPS[op_text] if common == "float" else _INT_BINOPS[op_text]
        computed = self.fresh()
        self.emit(Assign(computed, BinOp(op, left, right)))
        value = self.convert(computed, common, target_typ)
        store_addr = make_addr()
        self.emit(Assign(Mem(store_addr), value))
        return value, target_typ

    def eval_incdec(self, expr: ast.IncDec) -> Tuple[Reg, str]:
        binary_op = "+" if expr.op == "++" else "-"
        one = ast.IntLit(line=expr.line, value=1)
        assign = ast.AssignExpr(
            line=expr.line, target=expr.target, op=binary_op + "=", value=one
        )
        if expr.prefix:
            return self.eval_assign(assign)
        # Postfix: remember the old value first.
        old, typ = self.eval_expr(expr.target)
        self.eval_assign(assign)
        return old, typ


class CodeGenerator:
    """Translate a parsed translation unit into a :class:`Program`."""

    def __init__(self):
        self.program = Program()
        self.signatures: Dict[str, Tuple[str, List[ast.Param]]] = {}

    def generate(self, unit: ast.TranslationUnit) -> Program:
        for decl in unit.globals:
            words = decl.array_size if decl.array_size is not None else 1
            init: List[Union[int, float]] = list(decl.init or [])
            if len(init) > words:
                raise CompileError(f"too many initializers for {decl.name!r}", decl.line)
            zero: Union[int, float] = 0.0 if decl.typ == "float" else 0
            init.extend([zero] * (words - len(init)))
            self.program.add_global(
                GlobalVar(decl.name, words, decl.typ, init, decl.array_size is not None)
            )
        for node in unit.functions:
            if node.name in self.signatures:
                raise CompileError(f"redefinition of {node.name!r}", node.line)
            self.signatures[node.name] = (node.ret_type, node.params)
        for node in unit.functions:
            func = _FunctionCodegen(self, node).run()
            self.program.add_function(func)
        return self.program


def compile_source(source: str) -> Program:
    """Compile mini-C *source* into a Program of naive RTL functions."""
    return CodeGenerator().generate(parse(source))
