"""Naive RTL code generation from the mini-C AST.

The generator is deliberately unsophisticated, mirroring what VPO's C
frontend hands to the backend:

- every local scalar, array, and parameter lives in a stack slot;
- every expression step lands in a fresh pseudo register;
- address arithmetic is explicit (``t1 = fp + 8; t2 = M[t1]``, and
  ``t1 = HI[g]; t2 = t1 + LO[g]`` for globals);
- conditions end blocks with an explicit conditional branch *plus* an
  explicit jump (later phases remove the redundant ones).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse
from repro.ir.cfg import validate_function
from repro.ir.function import BasicBlock, Function, GlobalVar, Program
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym, UnOp
from repro.machine.target import ARG_REGS, FP, RV, ALU_IMM_LIMIT

_INT_BINOPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "lsl",
    ">>": "asr",
}

_FLOAT_BINOPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

_RELOPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}

_INT_ONLY = frozenset({"%", "&", "|", "^", "<<", ">>"})


def _type_name(base: str, struct: Optional[str], ptr: int) -> str:
    """The canonical type string: ``int``, ``int*``, ``struct Pt``, ..."""
    name = f"struct {struct}" if base == "struct" else base
    return name + "*" * ptr


def _is_pointer(typ: str) -> bool:
    return typ.endswith("*")


def _pointee(typ: str) -> str:
    return typ[:-1]


def _is_struct_value(typ: str) -> bool:
    return typ.startswith("struct ") and not typ.endswith("*")


def _exposed_locals(node: ast.FuncDef) -> frozenset:
    """Names whose address is taken (``&x``) anywhere in *node*.

    Address-exposed scalars must stay memory-resident: the frame
    reference analysis assumes loaded values are never frame addresses,
    so a scalar whose address escapes into a pointer would otherwise be
    promoted to a register while stores through the pointer still hit
    its stack slot.  Pinning the slot (``is_array=True``) takes it out
    of ``scalar_slots()`` and keeps register allocation sound.
    """
    names = set()

    def walk(obj) -> None:
        if isinstance(obj, ast.AddrOf) and isinstance(obj.operand, ast.Var):
            names.add(obj.operand.name)
        if isinstance(obj, (ast.Expr, ast.Stmt, ast.SwitchCase)):
            for field in obj.__dataclass_fields__:
                walk(getattr(obj, field))
        elif isinstance(obj, (list, tuple)):
            for item in obj:
                walk(item)

    walk(node.body)
    return frozenset(names)


class _Symbol:
    """A resolved name: local slot, global, or array parameter."""

    __slots__ = ("kind", "typ", "slot", "glob", "is_array")

    def __init__(self, kind, typ, slot=None, glob=None, is_array=False):
        self.kind = kind  # 'local' | 'global'
        self.typ = typ
        self.slot = slot
        self.glob = glob
        self.is_array = is_array


class _FunctionCodegen:
    """Generate naive RTL for one function."""

    def __init__(self, generator: "CodeGenerator", node: ast.FuncDef):
        self.generator = generator
        self.node = node
        self.ret_typ = node.ret_type + "*" * getattr(node, "ret_ptr", 0)
        self.exposed = _exposed_locals(node)
        self.func = Function(node.name, returns_value=node.ret_type != "void")
        self.symbols: Dict[str, _Symbol] = {}
        self.current: BasicBlock = self.func.add_block()
        self.exit_label = "Lexit"
        self.break_stack: List[str] = []
        self.continue_stack: List[str] = []

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def emit(self, inst) -> None:
        self.current.insts.append(inst)

    def start_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        self.func.blocks.append(block)
        self.current = block
        return block

    def new_label(self) -> str:
        return self.func.new_label()

    def fresh(self) -> Reg:
        return self.func.new_reg()

    def emit_int_const(self, value: int) -> Reg:
        """Load an integer constant, splitting values too big for one RTL."""
        reg = self.fresh()
        if abs(value) <= ALU_IMM_LIMIT:
            self.emit(Assign(reg, Const(value)))
            return reg
        unsigned = value & 0xFFFFFFFF
        high = (unsigned >> 16) & 0xFFFF
        low = unsigned & 0xFFFF
        self.emit(Assign(reg, Const(high)))
        shifted = self.fresh()
        self.emit(Assign(shifted, BinOp("lsl", reg, Const(16))))
        result = self.fresh()
        self.emit(Assign(result, BinOp("or", shifted, Const(low))))
        return result

    def local_addr(self, offset: int) -> Reg:
        reg = self.fresh()
        if offset == 0:
            self.emit(Assign(reg, FP))
        else:
            self.emit(Assign(reg, BinOp("add", FP, Const(offset))))
        return reg

    def global_addr(self, name: str) -> Reg:
        high = self.fresh()
        self.emit(Assign(high, Sym(name, "hi")))
        addr = self.fresh()
        self.emit(Assign(addr, BinOp("add", high, Sym(name, "lo"))))
        return addr

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------

    def declare_local(
        self,
        name: str,
        typ: str,
        words: int,
        is_array: bool,
        line: int,
        is_param=False,
        pinned=False,
    ) -> _Symbol:
        # A pinned slot is memory-resident (its address escapes via `&`
        # or it holds a struct value) but the *symbol* stays scalar:
        # marking the slot is_array excludes it from scalar_slots(), so
        # the frame-reference analysis and register allocator never
        # promote it, while name lookup still loads/stores the value.
        if name in self.symbols:
            raise CompileError(f"redeclaration of {name!r}", line)
        slot = self.func.add_local(name, words, typ, is_array or pinned, is_param)
        symbol = _Symbol("local", typ, slot=slot, is_array=is_array)
        self.symbols[name] = symbol
        return symbol

    def lookup(self, name: str, line: int) -> _Symbol:
        symbol = self.symbols.get(name)
        if symbol is not None:
            return symbol
        glob = self.generator.program.globals.get(name)
        if glob is not None:
            return _Symbol("global", glob.typ, glob=glob, is_array=glob.is_array)
        raise CompileError(f"undeclared identifier {name!r}", line)

    # ------------------------------------------------------------------
    # Top-level driver
    # ------------------------------------------------------------------

    def run(self) -> Function:
        node = self.node
        if len(node.params) > 4:
            raise CompileError(
                f"{node.name}: at most 4 parameters are supported", node.line
            )
        for i, param in enumerate(node.params):
            # An array parameter's slot holds the array base address.
            ptyp = _type_name(param.typ, getattr(param, "struct", None), getattr(param, "ptr", 0))
            if _is_struct_value(ptyp) and not param.is_array:
                raise CompileError(
                    f"struct parameter {param.name!r} must be a pointer", node.line
                )
            symbol = self.declare_local(
                param.name,
                ptyp,
                1,
                False,
                node.line,
                is_param=True,
                pinned=param.name in self.exposed,
            )
            symbol.is_array = param.is_array
            addr = self.local_addr(symbol.slot.offset)
            self.emit(Assign(Mem(addr), ARG_REGS[i]))
        self.gen_stmt(node.body)
        if self.current.terminator() is None:
            if self._current_is_unreachable():
                # The trailing block opened after a return/break is
                # empty and unreferenced; drop it rather than emit an
                # unreachable jump (VPO's frontend does not emit dead
                # code, which is why phase d is so rarely active).
                self.func.blocks.remove(self.current)
            else:
                self.emit(Jump(self.exit_label))
        exit_block = self.start_block(self.exit_label)
        exit_block.insts.append(Return())
        validate_function(self.func)
        return self.func

    def _current_is_unreachable(self) -> bool:
        """The current block is empty, unreferenced, and not fallen into."""
        if self.current.insts or self.current is self.func.blocks[0]:
            return False
        for block in self.func.blocks:
            if block is self.current:
                continue
            term = block.terminator()
            if isinstance(term, (Jump, CondBranch)) and term.target == self.current.label:
                return False
        index = self.func.blocks.index(self.current)
        previous = self.func.blocks[index - 1]
        return previous.terminator() is not None and not isinstance(
            previous.terminator(), CondBranch
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.gen_stmt(child)
        elif isinstance(stmt, ast.DeclStmt):
            self.gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.eval_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.SwitchStmt):
            self.gen_switch(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self.gen_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.break_stack:
                raise CompileError("break outside a loop", stmt.line)
            self.emit(Jump(self.break_stack[-1]))
            self.start_block(self.new_label())
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.continue_stack:
                raise CompileError("continue outside a loop", stmt.line)
            self.emit(Jump(self.continue_stack[-1]))
            self.start_block(self.new_label())
        else:
            raise CompileError(f"cannot generate {type(stmt).__name__}", stmt.line)

    def gen_decl(self, stmt: ast.DeclStmt) -> None:
        typ = _type_name(stmt.typ, getattr(stmt, "struct", None), getattr(stmt, "ptr", 0))
        if stmt.array_size is not None:
            self.declare_local(stmt.name, typ, stmt.array_size, True, stmt.line)
            return
        if _is_struct_value(typ):
            fields = self.generator.struct_fields(typ, stmt.line)
            self.declare_local(stmt.name, typ, len(fields), False, stmt.line, pinned=True)
            return  # struct locals have no initializers (parser-enforced)
        symbol = self.declare_local(
            stmt.name, typ, 1, False, stmt.line, pinned=stmt.name in self.exposed
        )
        if stmt.init is not None:
            value, value_typ = self.eval_expr(stmt.init)
            value = self.convert(value, value_typ, typ)
            addr = self.local_addr(symbol.slot.offset)
            self.emit(Assign(Mem(addr), value))

    def gen_if(self, stmt: ast.IfStmt) -> None:
        then_label = self.new_label()
        end_label = self.new_label()
        else_label = self.new_label() if stmt.else_body is not None else end_label
        self.gen_cond(stmt.cond, then_label, else_label)
        self.start_block(then_label)
        self.gen_stmt(stmt.then_body)
        if stmt.else_body is not None:
            if self.current.terminator() is None:
                self.emit(Jump(end_label))
            self.start_block(else_label)
            self.gen_stmt(stmt.else_body)
        self.start_block(end_label)

    def gen_while(self, stmt: ast.WhileStmt) -> None:
        cond_label = self.new_label()
        body_label = self.new_label()
        exit_label = self.new_label()
        self.start_block(cond_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self.start_block(body_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(cond_label)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        if self.current.terminator() is None:
            self.emit(Jump(cond_label))
        self.start_block(exit_label)

    def gen_do_while(self, stmt: ast.DoWhileStmt) -> None:
        body_label = self.new_label()
        cond_label = self.new_label()
        exit_label = self.new_label()
        self.start_block(body_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(cond_label)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.start_block(cond_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self.start_block(exit_label)

    def gen_for(self, stmt: ast.ForStmt) -> None:
        cond_label = self.new_label()
        body_label = self.new_label()
        step_label = self.new_label()
        exit_label = self.new_label()
        if stmt.init is not None:
            self.eval_expr(stmt.init)
        self.start_block(cond_label)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, exit_label)
        else:
            self.emit(Jump(body_label))
        self.start_block(body_label)
        self.break_stack.append(exit_label)
        self.continue_stack.append(step_label)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.start_block(step_label)
        if stmt.step is not None:
            self.eval_expr(stmt.step)
        self.emit(Jump(cond_label))
        self.start_block(exit_label)

    def gen_switch(self, stmt: ast.SwitchStmt) -> None:
        """Lower switch to a compare chain plus fallthrough bodies.

        The dispatch sequence compares the selector against each case
        constant in source order; bodies are laid out in order so C
        fallthrough semantics come from plain block fallthrough.
        ``break`` targets the switch exit.
        """
        selector, typ = self.eval_expr(stmt.selector)
        if typ != "int":
            raise CompileError("switch selector must be int", stmt.line)
        exit_label = self.new_label()
        case_labels = [self.new_label() for _ in stmt.cases]
        default_label = exit_label
        for label, case in zip(case_labels, stmt.cases):
            if case.value is None:
                default_label = label
        for label, case in zip(case_labels, stmt.cases):
            if case.value is None:
                continue
            constant = self.emit_int_const(case.value)
            self.emit(Compare(selector, constant))
            self.emit(CondBranch("eq", label))
            self.start_block(self.new_label())
        self.emit(Jump(default_label))
        self.break_stack.append(exit_label)
        for label, case in zip(case_labels, stmt.cases):
            self.start_block(label)
            for child in case.body:
                self.gen_stmt(child)
        self.break_stack.pop()
        if self.current.terminator() is None:
            pass  # fall through into the exit block
        self.start_block(exit_label)

    def gen_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is not None:
            if not self.func.returns_value:
                raise CompileError("return with a value in void function", stmt.line)
            value, typ = self.eval_expr(stmt.value)
            value = self.convert(value, typ, self.ret_typ)
            self.emit(Assign(RV, value))
        elif self.func.returns_value:
            raise CompileError("return without a value", stmt.line)
        self.emit(Jump(self.exit_label))
        self.start_block(self.new_label())

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------

    def gen_cond(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """End the current block branching on *expr*.

        The naive shape is ``IC=...; PC=IC relop 0,true; PC=false;`` —
        the redundant half is later removed by phases u/i/r.
        """
        if isinstance(expr, ast.IntLit):
            self.emit(Jump(true_label if expr.value != 0 else false_label))
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.new_label()
            self.gen_cond(expr.left, mid, false_label)
            self.start_block(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.new_label()
            self.gen_cond(expr.left, true_label, mid)
            self.start_block(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op in _RELOPS:
            left, left_typ = self.eval_expr(expr.left)
            right, right_typ = self.eval_expr(expr.right)
            if left_typ == right_typ:
                common = left_typ
            else:
                common = "float" if "float" in (left_typ, right_typ) else "int"
            left = self.convert(left, left_typ, common)
            right = self.convert(right, right_typ, common)
            self.emit(Compare(left, right))
            self.emit(CondBranch(_RELOPS[expr.op], true_label))
            self.start_block(self.new_label())
            self.emit(Jump(false_label))
            self.start_block(self.new_label())
            return
        value, typ = self.eval_expr(expr)
        zero = self.fresh()
        self.emit(Assign(zero, Const(0.0 if typ == "float" else 0)))
        self.emit(Compare(value, zero))
        self.emit(CondBranch("ne", true_label))
        self.start_block(self.new_label())
        self.emit(Jump(false_label))
        self.start_block(self.new_label())

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def convert(self, reg: Reg, from_typ: str, to_typ: str) -> Reg:
        if from_typ == to_typ:
            return reg
        if _is_pointer(from_typ) or _is_pointer(to_typ):
            # Pointers are word-sized addresses: int<->pointer and
            # pointer<->pointer conversions reinterpret, never convert.
            if "float" in (from_typ, to_typ):
                raise CompileError(f"cannot convert {from_typ} to {to_typ}")
            return reg
        result = self.fresh()
        if from_typ == "int" and to_typ == "float":
            self.emit(Assign(result, UnOp("itof", reg)))
        elif from_typ == "float" and to_typ == "int":
            self.emit(Assign(result, UnOp("ftoi", reg)))
        else:
            raise CompileError(f"cannot convert {from_typ} to {to_typ}")
        return result

    def eval_expr(self, expr: ast.Expr) -> Tuple[Reg, str]:
        if isinstance(expr, ast.IntLit):
            return self.emit_int_const(expr.value), "int"
        if isinstance(expr, ast.FloatLit):
            reg = self.fresh()
            self.emit(Assign(reg, Const(float(expr.value))))
            return reg, "float"
        if isinstance(expr, ast.Var):
            return self.load_var(expr)
        if isinstance(expr, ast.Index):
            addr, typ = self.element_addr(expr)
            value = self.fresh()
            self.emit(Assign(value, Mem(addr)))
            return value, typ
        if isinstance(expr, ast.AddrOf):
            return self.eval_addrof(expr)
        if isinstance(expr, ast.Deref):
            pointer, typ = self.eval_expr(expr.operand)
            if not _is_pointer(typ):
                raise CompileError("cannot dereference a non-pointer", expr.line)
            pointee = _pointee(typ)
            if _is_struct_value(pointee):
                raise CompileError(
                    "cannot load a whole struct; select a member", expr.line
                )
            value = self.fresh()
            self.emit(Assign(value, Mem(pointer)))
            return value, pointee
        if isinstance(expr, ast.Member):
            addr, typ = self.member_addr(expr)
            value = self.fresh()
            self.emit(Assign(value, Mem(addr)))
            return value, typ
        if isinstance(expr, ast.Unary):
            return self.eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.eval_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self.eval_call(expr)
        if isinstance(expr, ast.AssignExpr):
            return self.eval_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.eval_incdec(expr)
        raise CompileError(f"cannot evaluate {type(expr).__name__}", expr.line)

    def load_var(self, expr: ast.Var) -> Tuple[Reg, str]:
        symbol = self.lookup(expr.name, expr.line)
        if symbol.is_array:
            # An array name evaluates to its base address.
            return self.array_base(symbol), "int"
        if _is_struct_value(symbol.typ):
            raise CompileError(
                f"struct value {expr.name!r} cannot be used as a value", expr.line
            )
        if symbol.kind == "local":
            addr = self.local_addr(symbol.slot.offset)
        else:
            addr = self.global_addr(symbol.glob.name)
        value = self.fresh()
        self.emit(Assign(value, Mem(addr)))
        return value, symbol.typ

    def array_base(self, symbol: _Symbol) -> Reg:
        if symbol.kind == "global":
            return self.global_addr(symbol.glob.name)
        if symbol.slot.is_array:
            return self.local_addr(symbol.slot.offset)
        # Array parameter: the slot holds the base address.
        addr = self.local_addr(symbol.slot.offset)
        base = self.fresh()
        self.emit(Assign(base, Mem(addr)))
        return base

    def element_addr(self, expr: ast.Index) -> Tuple[Reg, str]:
        symbol = self.lookup(expr.base, expr.line)
        if symbol.is_array:
            base = self.array_base(symbol)
            elem_typ = symbol.typ
            stride = 4
        elif _is_pointer(symbol.typ):
            # p[i] on a pointer variable: load the pointer value, then
            # index with the pointee's stride.
            elem_typ = _pointee(symbol.typ)
            if _is_struct_value(elem_typ):
                raise CompileError(
                    f"cannot index a struct pointer; use {expr.base}->field",
                    expr.line,
                )
            if symbol.kind == "local":
                addr = self.local_addr(symbol.slot.offset)
            else:
                addr = self.global_addr(symbol.glob.name)
            base = self.fresh()
            self.emit(Assign(base, Mem(addr)))
            stride = self.generator.stride_of(elem_typ)
        else:
            raise CompileError(f"{expr.base!r} is not an array", expr.line)
        index, index_typ = self.eval_expr(expr.index)
        if index_typ != "int":
            raise CompileError("array index must be int", expr.line)
        four = self.fresh()
        self.emit(Assign(four, Const(stride)))
        scaled = self.fresh()
        self.emit(Assign(scaled, BinOp("mul", index, four)))
        addr = self.fresh()
        self.emit(Assign(addr, BinOp("add", base, scaled)))
        return addr, elem_typ

    def eval_unary(self, expr: ast.Unary) -> Tuple[Reg, str]:
        if expr.op == "!":
            return self.eval_as_flag(expr)
        operand, typ = self.eval_expr(expr.operand)
        result = self.fresh()
        if expr.op == "-":
            self.emit(Assign(result, UnOp("fneg" if typ == "float" else "neg", operand)))
            return result, typ
        if expr.op == "~":
            if typ != "int":
                raise CompileError("~ requires an int operand", expr.line)
            self.emit(Assign(result, UnOp("not", operand)))
            return result, "int"
        raise CompileError(f"bad unary operator {expr.op!r}", expr.line)

    def eval_addrof(self, expr: ast.AddrOf) -> Tuple[Reg, str]:
        operand = expr.operand
        if isinstance(operand, ast.Var):
            symbol = self.lookup(operand.name, operand.line)
            if symbol.is_array:
                raise CompileError(
                    "cannot take the address of an array; use &a[0]", expr.line
                )
            if symbol.kind == "local":
                addr = self.local_addr(symbol.slot.offset)
            else:
                addr = self.global_addr(symbol.glob.name)
            return addr, symbol.typ + "*"
        if isinstance(operand, ast.Index):
            addr, typ = self.element_addr(operand)
            return addr, typ + "*"
        if isinstance(operand, ast.Member):
            addr, typ = self.member_addr(operand)
            return addr, typ + "*"
        if isinstance(operand, ast.Deref):
            # &*p is just p (no load).
            return self.eval_expr(operand.operand)
        raise CompileError("cannot take the address of this expression", expr.line)

    def member_addr(self, expr: ast.Member) -> Tuple[Reg, str]:
        """The address and type of ``base.field`` / ``base->field``."""
        base = expr.base
        if expr.arrow or isinstance(base, ast.Deref):
            operand = base if expr.arrow else base.operand
            pointer, typ = self.eval_expr(operand)
            if not (_is_pointer(typ) and _is_struct_value(_pointee(typ))):
                raise CompileError(
                    "member access requires a struct or struct pointer", expr.line
                )
            addr, tag = pointer, _pointee(typ)
        elif isinstance(base, ast.Var):
            symbol = self.lookup(base.name, base.line)
            if symbol.is_array or not _is_struct_value(symbol.typ):
                raise CompileError(
                    "member access requires a struct or struct pointer", expr.line
                )
            if symbol.kind == "local":
                addr = self.local_addr(symbol.slot.offset)
            else:
                addr = self.global_addr(symbol.glob.name)
            tag = symbol.typ
        else:
            raise CompileError("cannot select a member of this expression", expr.line)
        fields = self.generator.struct_fields(tag, expr.line)
        for i, (fname, ftyp) in enumerate(fields):
            if fname == expr.field:
                break
        else:
            raise CompileError(
                f"{tag!r} has no field {expr.field!r}", expr.line
            )
        if i == 0:
            return addr, ftyp
        # Fields are one word each (scalars and pointers only).
        out = self.fresh()
        self.emit(Assign(out, BinOp("add", addr, Const(4 * i))))
        return out, ftyp

    def pointer_offset(self, op: str, pointer: Reg, typ: str, index: Reg) -> Reg:
        """``pointer op index`` scaled by the pointee stride."""
        stride = self.fresh()
        self.emit(Assign(stride, Const(self.generator.stride_of(_pointee(typ)))))
        scaled = self.fresh()
        self.emit(Assign(scaled, BinOp("mul", index, stride)))
        out = self.fresh()
        self.emit(Assign(out, BinOp(op, pointer, scaled)))
        return out

    def pointer_binary(
        self, expr: ast.Binary, left: Reg, left_typ: str, right: Reg, right_typ: str
    ) -> Tuple[Reg, str]:
        if expr.op == "+":
            if _is_pointer(left_typ) and right_typ == "int":
                return self.pointer_offset("add", left, left_typ, right), left_typ
            if left_typ == "int" and _is_pointer(right_typ):
                return self.pointer_offset("add", right, right_typ, left), right_typ
        elif expr.op == "-":
            if _is_pointer(left_typ) and right_typ == "int":
                return self.pointer_offset("sub", left, left_typ, right), left_typ
            if _is_pointer(left_typ) and left_typ == right_typ:
                # Pointer difference: subtract, then divide by stride.
                raw = self.fresh()
                self.emit(Assign(raw, BinOp("sub", left, right)))
                stride = self.fresh()
                self.emit(
                    Assign(stride, Const(self.generator.stride_of(_pointee(left_typ))))
                )
                out = self.fresh()
                self.emit(Assign(out, BinOp("div", raw, stride)))
                return out, "int"
        raise CompileError(
            f"invalid pointer arithmetic: {left_typ} {expr.op} {right_typ}", expr.line
        )

    def eval_binary(self, expr: ast.Binary) -> Tuple[Reg, str]:
        if expr.op in _RELOPS or expr.op in ("&&", "||"):
            return self.eval_as_flag(expr)
        left, left_typ = self.eval_expr(expr.left)
        right, right_typ = self.eval_expr(expr.right)
        if _is_pointer(left_typ) or _is_pointer(right_typ):
            return self.pointer_binary(expr, left, left_typ, right, right_typ)
        if expr.op in _INT_ONLY:
            if left_typ != "int" or right_typ != "int":
                raise CompileError(f"{expr.op} requires int operands", expr.line)
            common = "int"
        else:
            common = "float" if "float" in (left_typ, right_typ) else "int"
        left = self.convert(left, left_typ, common)
        right = self.convert(right, right_typ, common)
        op = _FLOAT_BINOPS[expr.op] if common == "float" else _INT_BINOPS[expr.op]
        result = self.fresh()
        self.emit(Assign(result, BinOp(op, left, right)))
        return result, common

    def eval_as_flag(self, expr: ast.Expr) -> Tuple[Reg, str]:
        """Materialize a boolean expression as 0/1 in a register."""
        result = self.fresh()
        true_label = self.new_label()
        false_label = self.new_label()
        end_label = self.new_label()
        self.gen_cond(expr, true_label, false_label)
        self.start_block(true_label)
        self.emit(Assign(result, Const(1)))
        self.emit(Jump(end_label))
        self.start_block(false_label)
        self.emit(Assign(result, Const(0)))
        self.start_block(end_label)
        return result, "int"

    def eval_call(self, expr: ast.CallExpr) -> Tuple[Reg, str]:
        signature = self.generator.signatures.get(expr.name)
        if signature is None:
            raise CompileError(f"call to undeclared function {expr.name!r}", expr.line)
        ret_type, params = signature
        if len(expr.args) != len(params):
            raise CompileError(
                f"{expr.name} expects {len(params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        values: List[Reg] = []
        for arg, param in zip(expr.args, params):
            if param.is_array:
                if isinstance(arg, ast.Var):
                    symbol = self.lookup(arg.name, arg.line)
                    if symbol.is_array:
                        values.append(self.array_base(symbol))
                        continue
                value, typ = self.eval_expr(arg)
                if not _is_pointer(typ):
                    raise CompileError(
                        f"argument to array parameter {param.name!r} must be "
                        "an array or pointer",
                        expr.line,
                    )
                values.append(value)
                continue
            ptyp = _type_name(param.typ, getattr(param, "struct", None), getattr(param, "ptr", 0))
            value, typ = self.eval_expr(arg)
            values.append(self.convert(value, typ, ptyp))
        for i, value in enumerate(values):
            self.emit(Assign(ARG_REGS[i], value))
        self.emit(Call(expr.name, len(values)))
        if ret_type == "void":
            return RV, "int"  # value must not be used; typechecked below
        result = self.fresh()
        self.emit(Assign(result, RV))
        return result, ret_type

    def eval_assign(self, expr: ast.AssignExpr) -> Tuple[Reg, str]:
        target = expr.target
        if isinstance(target, (ast.Deref, ast.Member)):
            return self.eval_assign_indirect(expr)
        if isinstance(target, ast.Var):
            symbol = self.lookup(target.name, target.line)
            if symbol.is_array:
                raise CompileError("cannot assign to an array", expr.line)
            if _is_struct_value(symbol.typ):
                raise CompileError("cannot assign a whole struct", expr.line)
            target_typ = symbol.typ

            def make_addr():
                if symbol.kind == "local":
                    return self.local_addr(symbol.slot.offset)
                return self.global_addr(symbol.glob.name)

        else:
            assert isinstance(target, ast.Index)
            symbol = self.lookup(target.base, target.line)
            if symbol.is_array:
                target_typ = symbol.typ
            elif _is_pointer(symbol.typ):
                target_typ = _pointee(symbol.typ)
            else:
                target_typ = symbol.typ

            def make_addr():
                addr, __ = self.element_addr(target)
                return addr

        if expr.op == "=":
            value, value_typ = self.eval_expr(expr.value)
            value = self.convert(value, value_typ, target_typ)
            addr = make_addr()
            self.emit(Assign(Mem(addr), value))
            return value, target_typ

        # Compound assignment: read-modify-write, naively recomputing
        # the address (CSE later removes the duplicate computation).
        load_addr = make_addr()
        old = self.fresh()
        self.emit(Assign(old, Mem(load_addr)))
        rhs, rhs_typ = self.eval_expr(expr.value)
        value = self.apply_compound(expr, old, target_typ, rhs, rhs_typ)
        store_addr = make_addr()
        self.emit(Assign(Mem(store_addr), value))
        return value, target_typ

    def eval_assign_indirect(self, expr: ast.AssignExpr) -> Tuple[Reg, str]:
        """Assignment through ``*p`` or ``s.f`` / ``p->f`` targets.

        Unlike direct targets, the address computation determines the
        target type, so the address is evaluated before the value.
        """
        target = expr.target

        def make_addr() -> Tuple[Reg, str]:
            if isinstance(target, ast.Member):
                return self.member_addr(target)
            pointer, typ = self.eval_expr(target.operand)
            if not _is_pointer(typ):
                raise CompileError("cannot assign through a non-pointer", expr.line)
            pointee = _pointee(typ)
            if _is_struct_value(pointee):
                raise CompileError("cannot assign a whole struct", expr.line)
            return pointer, pointee

        if expr.op == "=":
            addr, target_typ = make_addr()
            value, value_typ = self.eval_expr(expr.value)
            value = self.convert(value, value_typ, target_typ)
            self.emit(Assign(Mem(addr), value))
            return value, target_typ
        load_addr, target_typ = make_addr()
        old = self.fresh()
        self.emit(Assign(old, Mem(load_addr)))
        rhs, rhs_typ = self.eval_expr(expr.value)
        value = self.apply_compound(expr, old, target_typ, rhs, rhs_typ)
        store_addr, __ = make_addr()
        self.emit(Assign(Mem(store_addr), value))
        return value, target_typ

    def apply_compound(
        self, expr: ast.AssignExpr, old: Reg, target_typ: str, rhs: Reg, rhs_typ: str
    ) -> Reg:
        """Emit the combine step of ``target op= rhs`` and return the
        value to store back."""
        op_text = expr.op[:-1]
        if _is_pointer(target_typ):
            if op_text not in ("+", "-") or rhs_typ != "int":
                raise CompileError(
                    f"{expr.op} on a pointer requires an int operand", expr.line
                )
            return self.pointer_offset(
                _INT_BINOPS[op_text], old, target_typ, rhs
            )
        if op_text in _INT_ONLY:
            if target_typ != "int" or rhs_typ != "int":
                raise CompileError(f"{expr.op} requires int operands", expr.line)
            common = "int"
        else:
            common = "float" if "float" in (target_typ, rhs_typ) else "int"
        left = self.convert(old, target_typ, common)
        right = self.convert(rhs, rhs_typ, common)
        op = _FLOAT_BINOPS[op_text] if common == "float" else _INT_BINOPS[op_text]
        computed = self.fresh()
        self.emit(Assign(computed, BinOp(op, left, right)))
        return self.convert(computed, common, target_typ)

    def eval_incdec(self, expr: ast.IncDec) -> Tuple[Reg, str]:
        binary_op = "+" if expr.op == "++" else "-"
        one = ast.IntLit(line=expr.line, value=1)
        assign = ast.AssignExpr(
            line=expr.line, target=expr.target, op=binary_op + "=", value=one
        )
        if expr.prefix:
            return self.eval_assign(assign)
        # Postfix: remember the old value first.
        old, typ = self.eval_expr(expr.target)
        self.eval_assign(assign)
        return old, typ


class CodeGenerator:
    """Translate a parsed translation unit into a :class:`Program`."""

    def __init__(self):
        self.program = Program()
        self.signatures: Dict[str, Tuple[str, List[ast.Param]]] = {}
        self.structs: Dict[str, List[Tuple[str, str]]] = {}
        self.sema = None

    def struct_fields(self, tag: str, line: int) -> List[Tuple[str, str]]:
        """The ``(name, type)`` field list of ``struct Tag``."""
        name = tag[len("struct "):] if tag.startswith("struct ") else tag
        fields = self.structs.get(name)
        if fields is None:
            raise CompileError(f"unknown struct {name!r}", line)
        return fields

    def stride_of(self, typ: str) -> int:
        """Bytes between consecutive objects of *typ* (pointer stride)."""
        if _is_struct_value(typ):
            return 4 * len(self.struct_fields(typ, 0))
        return 4

    def generate(self, unit: ast.TranslationUnit, sema=None) -> Program:
        self.sema = sema
        for struct in getattr(unit, "structs", ()):
            if struct.name in self.structs:
                raise CompileError(f"redefinition of struct {struct.name!r}", struct.line)
            self.structs[struct.name] = [
                (f.name, _type_name(f.typ, f.struct, f.ptr)) for f in struct.fields
            ]
        for decl in unit.globals:
            typ = _type_name(
                decl.typ, getattr(decl, "struct", None), getattr(decl, "ptr", 0)
            )
            if decl.array_size is not None:
                words = decl.array_size
            elif _is_struct_value(typ):
                words = len(self.struct_fields(typ, decl.line))
            else:
                words = 1
            init: List[Union[int, float]] = list(decl.init or [])
            if len(init) > words:
                raise CompileError(f"too many initializers for {decl.name!r}", decl.line)
            zero: Union[int, float] = 0.0 if decl.typ == "float" else 0
            init.extend([zero] * (words - len(init)))
            self.program.add_global(
                GlobalVar(decl.name, words, typ, init, decl.array_size is not None)
            )
        for node in unit.functions:
            if node.name in self.signatures:
                raise CompileError(f"redefinition of {node.name!r}", node.line)
            ret = node.ret_type + "*" * getattr(node, "ret_ptr", 0)
            self.signatures[node.name] = (ret, node.params)
        for node in unit.functions:
            func = _FunctionCodegen(self, node).run()
            func.mem_facts = {
                # Offsets of memory slots whose address never escapes:
                # scalars are only addressable through `&`, and every
                # address-taken scalar was pinned out of scalar_slots().
                "frame_private": sorted(
                    slot.offset for slot in func.scalar_slots()
                ),
            }
            self.program.add_function(func)
        return self.program


def compile_source(source: str, check: bool = True) -> Program:
    """Compile mini-C *source* into a Program of naive RTL functions.

    Semantic analysis (type checking, definite assignment, alias
    analysis) gates code generation: any error-severity diagnostic
    raises :class:`CompileError` with the full diagnostic list attached
    as ``error.diagnostics``.  Pass ``check=False`` to skip the gate
    (codegen keeps its own minimal checks for internal callers).
    """
    unit = parse(source)
    sema = None
    if check:
        from repro.frontend.sema import analyze

        sema = analyze(unit)
        errors = sema.errors
        if errors:
            first = errors[0]
            error = CompileError(
                f"{first.code}: {first.message}", first.line, first.column
            )
            error.diagnostics = sema.diagnostics
            raise error
    return CodeGenerator().generate(unit, sema=sema)
