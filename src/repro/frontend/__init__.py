"""Mini-C frontend: lexer, parser, and naive RTL code generator.

The frontend plays the role of VPO's C frontend: it translates a small
C subset into deliberately naive RTL — locals live in stack slots,
every expression step lands in a fresh pseudo register, and address
arithmetic is explicit — so the backend phases have the same work to do
that VPO's phases did.
"""

from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import Parser, parse
from repro.frontend.codegen import CodeGenerator, compile_source

__all__ = [
    "CompileError",
    "Token",
    "tokenize",
    "Parser",
    "parse",
    "CodeGenerator",
    "compile_source",
]
