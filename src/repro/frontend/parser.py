"""Recursive-descent parser for the mini-C subset."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

# Binary precedence levels, loosest first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parse a token stream into a :class:`~repro.frontend.ast.TranslationUnit`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        if self.check(kind, value):
            return self.advance()
        token = self.current
        wanted = value if value is not None else kind
        raise CompileError(
            f"expected {wanted!r}, found {token.value!r}", token.line, token.column
        )

    def error(self, message: str) -> CompileError:
        token = self.current
        return CompileError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.check("eof"):
            typ = self._parse_type()
            name_token = self.expect("ident")
            name = str(name_token.value)
            if self.check("op", "("):
                unit.functions.append(self._parse_function(typ, name, name_token))
            else:
                unit.globals.append(self._parse_global(typ, name, name_token))
        return unit

    def _parse_type(self) -> str:
        token = self.current
        if token.kind == "keyword" and token.value in ("int", "float", "void"):
            self.advance()
            return str(token.value)
        raise self.error(f"expected a type, found {token.value!r}")

    def _parse_global(self, typ: str, name: str, name_token: Token) -> ast.GlobalDecl:
        if typ == "void":
            raise CompileError("void global", name_token.line, name_token.column)
        array_size: Optional[int] = None
        if self.accept("op", "["):
            size_token = self.expect("int")
            array_size = int(size_token.value)
            if array_size <= 0:
                raise CompileError("bad array size", size_token.line, size_token.column)
            self.expect("op", "]")
        init: Optional[List[Union[int, float]]] = None
        if self.accept("op", "="):
            init = self._parse_global_init(typ, array_size is not None)
        self.expect("op", ";")
        return ast.GlobalDecl(typ, name, array_size, init, name_token.line)

    def _parse_global_init(self, typ: str, is_array: bool):
        def literal():
            negative = bool(self.accept("op", "-"))
            token = self.current
            if token.kind == "int":
                self.advance()
                value: Union[int, float] = int(token.value)
            elif token.kind == "float":
                self.advance()
                value = float(token.value)
            else:
                raise self.error("global initializers must be literals")
            if typ == "float":
                value = float(value)
            return -value if negative else value

        if is_array:
            self.expect("op", "{")
            values = [literal()]
            while self.accept("op", ","):
                values.append(literal())
            self.expect("op", "}")
            return values
        return [literal()]

    def _parse_function(self, ret_type: str, name: str, name_token: Token) -> ast.FuncDef:
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") and self.peek().value == ")":
                self.advance()
            else:
                params.append(self._parse_param())
                while self.accept("op", ","):
                    params.append(self._parse_param())
        self.expect("op", ")")
        body = self._parse_block()
        return ast.FuncDef(ret_type, name, params, body, name_token.line)

    def _parse_param(self) -> ast.Param:
        typ = self._parse_type()
        if typ == "void":
            raise self.error("void parameter")
        name = str(self.expect("ident").value)
        is_array = False
        if self.accept("op", "["):
            self.expect("op", "]")
            is_array = True
        return ast.Param(typ, name, is_array)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_token = self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise CompileError("unterminated block", open_token.line, open_token.column)
            stmts.append(self._parse_statement())
        self.expect("op", "}")
        return ast.Block(line=open_token.line, stmts=stmts)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "keyword":
            keyword = token.value
            if keyword in ("int", "float"):
                return self._parse_decl()
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "switch":
                return self._parse_switch()
            if keyword == "return":
                self.advance()
                value = None if self.check("op", ";") else self.parse_expression()
                self.expect("op", ";")
                return ast.ReturnStmt(line=token.line, value=value)
            if keyword == "break":
                self.advance()
                self.expect("op", ";")
                return ast.BreakStmt(line=token.line)
            if keyword == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.ContinueStmt(line=token.line)
            if keyword == "void":
                raise self.error("void is only valid as a return type")
        if self.check("op", "{"):
            return self._parse_block()
        if self.accept("op", ";"):
            return ast.Block(line=token.line, stmts=[])
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_decl(self) -> ast.DeclStmt:
        token = self.current
        typ = self._parse_type()
        name = str(self.expect("ident").value)
        array_size: Optional[int] = None
        init: Optional[ast.Expr] = None
        if self.accept("op", "["):
            size_token = self.expect("int")
            array_size = int(size_token.value)
            if array_size <= 0:
                raise CompileError("bad array size", size_token.line, size_token.column)
            self.expect("op", "]")
        elif self.accept("op", "="):
            init = self.parse_expression()
        self.expect("op", ";")
        return ast.DeclStmt(
            line=token.line, typ=typ, name=name, array_size=array_size, init=init
        )

    def _parse_if(self) -> ast.IfStmt:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_body = self._parse_statement()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self._parse_statement()
        return ast.IfStmt(
            line=token.line, cond=cond, then_body=then_body, else_body=else_body
        )

    def _parse_while(self) -> ast.WhileStmt:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self._parse_statement()
        return ast.WhileStmt(line=token.line, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        token = self.expect("keyword", "do")
        body = self._parse_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhileStmt(line=token.line, body=body, cond=cond)

    def _parse_switch(self) -> ast.SwitchStmt:
        token = self.expect("keyword", "switch")
        self.expect("op", "(")
        selector = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[ast.SwitchCase] = []
        seen_values = set()
        seen_default = False
        while not self.check("op", "}"):
            if self.accept("keyword", "case"):
                value = self._parse_case_value()
                if value in seen_values:
                    raise self.error(f"duplicate case {value}")
                seen_values.add(value)
                self.expect("op", ":")
                cases.append(ast.SwitchCase(value, self._parse_case_body()))
            elif self.accept("keyword", "default"):
                if seen_default:
                    raise self.error("duplicate default")
                seen_default = True
                self.expect("op", ":")
                cases.append(ast.SwitchCase(None, self._parse_case_body()))
            else:
                raise self.error("expected 'case' or 'default' in switch")
        self.expect("op", "}")
        return ast.SwitchStmt(line=token.line, selector=selector, cases=cases)

    def _parse_case_value(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("int")
        value = int(token.value)
        return -value if negative else value

    def _parse_case_body(self) -> List[ast.Stmt]:
        body: List[ast.Stmt] = []
        while not (
            self.check("op", "}")
            or self.check("keyword", "case")
            or self.check("keyword", "default")
        ):
            body.append(self._parse_statement())
        return body

    def _parse_for(self) -> ast.ForStmt:
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        init = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        cond = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.parse_expression()
        self.expect("op", ")")
        body = self._parse_statement()
        return ast.ForStmt(line=token.line, init=init, cond=cond, step=step, body=body)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        expr = self._parse_binary(0)
        token = self.current
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise CompileError("assignment to non-lvalue", token.line, token.column)
            self.advance()
            value = self._parse_assignment()
            return ast.AssignExpr(
                line=token.line, target=expr, op=str(token.value), value=value
            )
        return expr

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        expr = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.value in ops:
            token = self.advance()
            right = self._parse_binary(level + 1)
            expr = ast.Binary(
                line=token.line, op=str(token.value), left=expr, right=right
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.value in ("-", "!", "~", "+"):
            self.advance()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            return ast.Unary(line=token.line, op=str(token.value), operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Var, ast.Index)):
                raise CompileError(
                    f"{token.value} on non-lvalue", token.line, token.column
                )
            return ast.IncDec(
                line=token.line, target=target, op=str(token.value), prefix=True
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if token.kind == "op" and token.value in ("++", "--"):
                if not isinstance(expr, (ast.Var, ast.Index)):
                    raise CompileError(
                        f"{token.value} on non-lvalue", token.line, token.column
                    )
                self.advance()
                expr = ast.IncDec(
                    line=token.line, target=expr, op=str(token.value), prefix=False
                )
                continue
            break
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(line=token.line, value=int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(line=token.line, value=float(token.value))
        if token.kind == "ident":
            name = str(token.value)
            self.advance()
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.CallExpr(line=token.line, name=name, args=args)
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return ast.Index(line=token.line, base=name, index=index)
            return ast.Var(line=token.line, name=name)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {token.value!r} in expression")


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C *source* text into an AST."""
    return Parser(tokenize(source)).parse_unit()
