"""Recursive-descent parser for the mini-C subset.

The concrete :class:`Parser` is assembled from the composable grammar
mixins in :mod:`repro.frontend.parsing` — token plumbing in
``ParserBase``, then one mixin per grammar area layered on top.  MRO
order puts the most specific grammar first, so a mixin can override a
production from a later layer without touching the others.
"""

from __future__ import annotations

from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.parsing import (
    _ASSIGN_OPS,
    _BINARY_LEVELS,
    DeclarationsMixin,
    ExpressionsMixin,
    ParserBase,
    StatementsMixin,
)

__all__ = ["Parser", "parse", "_ASSIGN_OPS", "_BINARY_LEVELS"]


class Parser(DeclarationsMixin, StatementsMixin, ExpressionsMixin, ParserBase):
    """Parse a token stream into a :class:`~repro.frontend.ast.TranslationUnit`."""


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C *source* text into an AST."""
    return Parser(tokenize(source)).parse_unit()
