"""Abstract syntax tree for the mini-C subset.

Base types are plain strings: ``"int"``, ``"float"``, ``"void"``, and
``"struct"`` (with the tag in the declaration's ``struct`` field).
Declarators carry a pointer depth (``ptr``); arrays carry their element
type and (for definitions) a compile-time size; array parameters decay
to base addresses.  Semantic types are resolved by
:mod:`repro.frontend.sema` which annotates expressions with ``ctype``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    base: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class AssignExpr(Expr):
    """``target op= value``; plain assignment has op == "="."""

    target: Optional[Union[Var, Index]] = None
    op: str = "="
    value: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    """``x++`` / ``--x`` etc. on a scalar or array element."""

    target: Optional[Union[Var, Index]] = None
    op: str = "++"
    prefix: bool = False


@dataclass
class AddrOf(Expr):
    """``&lvalue`` — the address of a variable, element, or member."""

    operand: Optional[Expr] = None


@dataclass
class Deref(Expr):
    """``*pointer`` — load (or, as an lvalue, store) through a pointer."""

    operand: Optional[Expr] = None


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Optional[Expr] = None
    field: str = ""
    arrow: bool = False


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class DeclStmt(Stmt):
    typ: str = "int"
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    ptr: int = 0  # pointer depth: ``int **p`` has ptr == 2
    struct: Optional[str] = None  # struct tag when typ == "struct"


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional[Stmt] = None
    else_body: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhileStmt(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class SwitchCase:
    """One ``case N:`` (or ``default:``) group with its statements.

    C fallthrough semantics apply: control runs into the next group
    unless the body ends the flow (break/return/continue).
    """

    value: Optional[int]  # None for default
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class SwitchStmt(Stmt):
    selector: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


@dataclass
class Param:
    typ: str  # element type for arrays
    name: str
    is_array: bool = False
    ptr: int = 0
    struct: Optional[str] = None
    line: int = 0
    column: int = 0


@dataclass
class FieldDecl:
    """One field of a struct definition (scalar or pointer)."""

    typ: str
    name: str
    ptr: int = 0
    struct: Optional[str] = None
    line: int = 0
    column: int = 0


@dataclass
class StructDef:
    name: str = ""
    fields: List[FieldDecl] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass
class FuncDef:
    ret_type: str
    name: str
    params: List[Param]
    body: Block
    line: int = 0
    ret_ptr: int = 0
    column: int = 0


@dataclass
class GlobalDecl:
    typ: str
    name: str
    array_size: Optional[int] = None
    init: Optional[List[Union[int, float]]] = None
    line: int = 0
    ptr: int = 0
    struct: Optional[str] = None
    column: int = 0


@dataclass
class TranslationUnit:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    structs: List[StructDef] = field(default_factory=list)
