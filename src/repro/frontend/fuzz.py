"""Seeded property-based generator of well-typed mini-C programs.

The generator's contract mirrors the frontend's semantic gate: every
program it emits must

- **type-check** (the full ``TYP0xx`` battery stays silent),
- **pass flow analysis** — every local is definitely assigned before
  use and every path returns (``SEM0xx`` silent),
- **be free of undefined behaviour** — all array and pointer accesses
  stay in bounds, divisors are nonzero constants — so downstream
  differential tests, sanitizer runs and translation validation are
  meaningful, not vacuous.

Generation is **deterministic**: :func:`generate_source` draws from a
caller-supplied :class:`random.Random` and touches no other entropy
source, so ``repro fuzz --seed S --count N`` reproduces byte-identical
programs on every run — the CI smoke job depends on this.

The generator maintains the invariants structurally rather than by
filtering: an *initialized* set gates which variables expressions may
read (assignments inside branches deliberately do not propagate out,
matching the flow analysis' must-semantics), every array is filled by
a leading loop before any element is read, pointers are bound to
``&array[0]`` at initialization and only indexed within the array
extent, and every function body ends with an unconditional ``return``.

:func:`minimize_lines` is the companion shrinker — a line-granular
ddmin that preserves any caller-supplied failure predicate.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

#: every generated array has this many elements; loop bounds and
#: constant indices stay below it, which is what keeps accesses in
#: bounds by construction
ARRAY_WORDS = 8

_RELOPS = ("<", "<=", ">", ">=", "==", "!=")
_BINOPS = ("+", "-", "*")


class _FunctionState:
    """Names in scope while generating one function body."""

    def __init__(self, rng: random.Random, index: int, arity: int):
        self.rng = rng
        self.name = f"f{index}"
        self.params = [f"p{i}" for i in range(arity)]
        self.ints: List[str] = list(self.params)
        self.initialized = set(self.params)
        self.arrays: List[str] = []
        self.pointers: List[str] = []  # pointer -> backing array
        self.struct_var: Optional[str] = None
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        name = f"{prefix}{self.counter}"
        self.counter += 1
        return name


class _Generator:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self.globals: List[str] = []
        self.global_arrays: List[str] = []
        self.use_struct = rng.random() < 0.5
        self.functions: List[str] = []  # names, in definition order
        self.arities: dict = {}

    # -- expressions ---------------------------------------------------

    def _atom(self, state: _FunctionState) -> str:
        rng = self.rng
        choices = ["const"]
        if state.initialized:
            choices += ["var"] * 3
        if state.arrays:
            choices.append("index")
        if state.pointers:
            choices.append("deref")
        if self.globals:
            choices.append("global")
        kind = rng.choice(choices)
        if kind == "var":
            return rng.choice(sorted(state.initialized))
        if kind == "index":
            return f"{rng.choice(state.arrays)}[{rng.randrange(ARRAY_WORDS)}]"
        if kind == "deref":
            pointer = rng.choice(state.pointers)
            if rng.random() < 0.5:
                return f"{pointer}[{rng.randrange(ARRAY_WORDS)}]"
            return f"*({pointer} + {rng.randrange(ARRAY_WORDS)})"
        if kind == "global":
            return rng.choice(self.globals)
        return str(rng.randrange(-9, 10))

    def _expr(self, state: _FunctionState, depth: int = 2) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return self._atom(state)
        if rng.random() < 0.15:
            # Division and modulo only ever by a nonzero constant.
            op = rng.choice(("/", "%"))
            return f"({self._expr(state, depth - 1)} {op} {rng.randrange(2, 8)})"
        op = rng.choice(_BINOPS)
        left = self._expr(state, depth - 1)
        right = self._expr(state, depth - 1)
        return f"({left} {op} {right})"

    def _cond(self, state: _FunctionState) -> str:
        relop = self.rng.choice(_RELOPS)
        return f"{self._expr(state, 1)} {relop} {self._expr(state, 1)}"

    # -- statements ----------------------------------------------------

    def _statement(self, state: _FunctionState, out: List[str], indent: str) -> None:
        rng = self.rng
        kinds = ["assign", "assign", "if"]
        if state.initialized - set(state.params):
            kinds.append("compound")
        if state.arrays or state.pointers:
            kinds.append("store")
        if self.globals or self.global_arrays:
            kinds.append("global")
        if state.struct_var:
            kinds.append("struct")
        if self.functions:
            kinds.append("call")
        kind = rng.choice(kinds)
        if kind == "assign":
            name = rng.choice(state.ints)
            out.append(f"{indent}{name} = {self._expr(state)};")
            state.initialized.add(name)
        elif kind == "compound":
            name = rng.choice(sorted(state.initialized - set(state.params)))
            op = rng.choice(("+=", "-=", "*="))
            out.append(f"{indent}{name} {op} {self._expr(state, 1)};")
        elif kind == "if":
            out.append(f"{indent}if ({self._cond(state)}) {{")
            # Branch-local writes target already-initialized names so
            # the must-defined analysis stays satisfied either way.
            inner = sorted(state.initialized - set(state.params)) or state.ints
            name = rng.choice(inner)
            out.append(f"{indent}    {name} = {self._expr(state, 1)};")
            out.append(f"{indent}}} else {{")
            out.append(f"{indent}    {name} = {self._expr(state, 1)};")
            out.append(f"{indent}}}")
            state.initialized.add(name)
        elif kind == "store":
            targets = []
            for array in state.arrays:
                targets.append(f"{array}[{rng.randrange(ARRAY_WORDS)}]")
            for pointer in state.pointers:
                targets.append(f"{pointer}[{rng.randrange(ARRAY_WORDS)}]")
                targets.append(f"*({pointer} + {rng.randrange(ARRAY_WORDS)})")
            out.append(f"{indent}{rng.choice(targets)} = {self._expr(state)};")
        elif kind == "global":
            targets = list(self.globals)
            for array in self.global_arrays:
                targets.append(f"{array}[{rng.randrange(ARRAY_WORDS)}]")
            out.append(f"{indent}{rng.choice(targets)} = {self._expr(state)};")
        elif kind == "struct":
            field = rng.choice(("a", "b"))
            access = rng.choice((f"{state.struct_var}.{field}", f"sp->{field}"))
            out.append(f"{indent}{access} = {self._expr(state, 1)};")
        else:  # call
            callee = rng.choice(self.functions)
            arguments = ", ".join(
                self._expr(state, 1) for __ in range(self.arities[callee])
            )
            name = rng.choice(state.ints)
            out.append(f"{indent}{name} = {callee}({arguments});")
            state.initialized.add(name)

    def _fill_loop(self, state: _FunctionState, array: str, out: List[str]) -> None:
        loop = state.fresh("i")
        state.ints.append(loop)
        state.initialized.add(loop)
        scale = self.rng.randrange(1, 5)
        out.append(f"    for ({loop} = 0; {loop} < {ARRAY_WORDS}; {loop}++) {{")
        out.append(f"        {array}[{loop}] = {loop} * {scale};")
        out.append("    }")

    # -- top level -----------------------------------------------------

    def _function(self, index: int) -> str:
        rng = self.rng
        state = _FunctionState(rng, index, arity=rng.randrange(0, 4))
        body: List[str] = []
        decls: List[str] = []

        for __ in range(rng.randrange(1, 4)):
            name = state.fresh("x")
            state.ints.append(name)
            decls.append(f"    int {name};")
        if rng.random() < 0.7:
            array = state.fresh("a")
            state.arrays.append(array)
            decls.append(f"    int {array}[{ARRAY_WORDS}];")
            if rng.random() < 0.6:
                pointer = state.fresh("q")
                state.pointers.append(pointer)
                decls.append(f"    int *{pointer};")
                body.append(f"    {pointer} = &{array}[0];")
        if self.use_struct and rng.random() < 0.4:
            state.struct_var = "s"
            decls.append("    struct S s;")
            decls.append("    struct S *sp;")
            body.append("    s.a = 0;")
            body.append("    s.b = 1;")
            body.append("    sp = &s;")
        # Loop variables are declared on demand by the fill loops, so
        # collect declarations after the body is generated.
        for array in state.arrays:
            self._fill_loop(state, array, body)
        for __ in range(rng.randrange(3, 9)):
            self._statement(state, body, "    ")

        result = self._expr(state)
        if state.struct_var:
            result = f"({result} + s.a + sp->b)"
        body.append(f"    return {result};")

        loop_decls = [
            f"    int {name};"
            for name in state.ints
            if name.startswith("i") and name not in state.params
        ]
        parameters = ", ".join(f"int {p}" for p in state.params)
        lines = [f"int {state.name}({parameters}) {{"]
        lines += decls + loop_decls + body + ["}"]
        self.functions.append(state.name)
        self.arities[state.name] = len(state.params)
        return "\n".join(lines)

    def generate(self) -> str:
        rng = self.rng
        parts: List[str] = []
        if self.use_struct:
            parts.append("struct S { int a; int b; };")
        for index in range(rng.randrange(1, 3)):
            self.globals.append(f"g{index}")
            parts.append(f"int g{index};")
        if rng.random() < 0.6:
            self.global_arrays.append("ga")
            parts.append(f"int ga[{ARRAY_WORDS}];")
        functions = [self._function(index) for index in range(rng.randrange(1, 4))]
        parts.extend(functions)

        calls = " + ".join(
            f"{name}({', '.join(str(rng.randrange(0, 8)) for __ in range(self.arities[name]))})"
            for name in self.functions
        )
        parts.append("int main() {\n    return %s;\n}" % calls)
        return "\n\n".join(parts) + "\n"


def generate_source(rng: random.Random) -> str:
    """One well-typed, UB-free mini-C program drawn from *rng*."""
    return _Generator(rng).generate()


def fuzz_source(seed: int, index: int) -> str:
    """The *index*-th program of the stream anchored at *seed*.

    Each program gets its own generator seeded from ``(seed, index)``,
    so program *k* of a run is reproducible without generating the
    first ``k - 1`` (useful when re-running a single failure).
    """
    return generate_source(random.Random(seed * 1_000_003 + index))


def minimize_lines(source: str, failing: Callable[[str], bool]) -> str:
    """Line-granular ddmin: the smallest line subset still *failing*.

    *failing* must return True for *source* itself; the result is a
    1-minimal reduction — removing any single remaining line makes the
    failure disappear.  The predicate is expected to swallow its own
    exceptions (a reduction that no longer parses should simply return
    False, or True if the crash *is* the failure being chased).
    """
    lines = source.splitlines()
    if not failing(source):
        raise ValueError("minimize_lines needs a failing input to shrink")

    granularity = 2
    while len(lines) >= 2:
        chunk = max(1, len(lines) // granularity)
        reduced = False
        start = 0
        while start < len(lines):
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and failing("\n".join(candidate) + "\n"):
                lines = candidate
                reduced = True
                # Same start now addresses the next chunk.
            else:
                start += chunk
        if reduced:
            granularity = max(granularity - 1, 2)
        elif granularity >= len(lines):
            break
        else:
            granularity = min(len(lines), granularity * 2)
    return "\n".join(lines) + "\n"
