"""Expression grammar: precedence climbing, unary, postfix, primaries."""

from __future__ import annotations

from typing import List

from repro.frontend import ast
from repro.frontend.errors import CompileError

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

# Binary precedence levels, loosest first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

# Forms that can appear on the left of an assignment or under ``&``.
_LVALUES = (ast.Var, ast.Index, ast.Deref, ast.Member)


class ExpressionsMixin:
    """Parse expressions into AST nodes annotated with line/column."""

    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        expr = self._parse_binary(0)
        token = self.current
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            if not isinstance(expr, _LVALUES):
                raise CompileError("assignment to non-lvalue", token.line, token.column)
            self.advance()
            value = self._parse_assignment()
            return ast.AssignExpr(
                line=token.line,
                column=token.column,
                target=expr,
                op=str(token.value),
                value=value,
            )
        return expr

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        expr = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.value in ops:
            token = self.advance()
            right = self._parse_binary(level + 1)
            expr = ast.Binary(
                line=token.line,
                column=token.column,
                op=str(token.value),
                left=expr,
                right=right,
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.value in ("-", "!", "~", "+"):
            self.advance()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            return ast.Unary(
                line=token.line, column=token.column, op=str(token.value), operand=operand
            )
        if token.kind == "op" and token.value == "*":
            self.advance()
            operand = self._parse_unary()
            return ast.Deref(line=token.line, column=token.column, operand=operand)
        if token.kind == "op" and token.value == "&":
            # Permissive here: the type checker rejects non-lvalue
            # operands (TYP004) with a proper source span.
            self.advance()
            operand = self._parse_unary()
            return ast.AddrOf(line=token.line, column=token.column, operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            if not isinstance(target, _LVALUES):
                raise CompileError(
                    f"{token.value} on non-lvalue", token.line, token.column
                )
            return ast.IncDec(
                line=token.line,
                column=token.column,
                target=target,
                op=str(token.value),
                prefix=True,
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if token.kind == "op" and token.value in ("++", "--"):
                if not isinstance(expr, _LVALUES):
                    raise CompileError(
                        f"{token.value} on non-lvalue", token.line, token.column
                    )
                self.advance()
                expr = ast.IncDec(
                    line=token.line,
                    column=token.column,
                    target=expr,
                    op=str(token.value),
                    prefix=False,
                )
                continue
            if token.kind == "op" and token.value in (".", "->"):
                self.advance()
                field_token = self.expect("ident")
                expr = ast.Member(
                    line=field_token.line,
                    column=field_token.column,
                    base=expr,
                    field=str(field_token.value),
                    arrow=token.value == "->",
                )
                continue
            break
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(line=token.line, column=token.column, value=int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(
                line=token.line, column=token.column, value=float(token.value)
            )
        if token.kind == "ident":
            name = str(token.value)
            self.advance()
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.CallExpr(
                    line=token.line, column=token.column, name=name, args=args
                )
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return ast.Index(
                    line=token.line, column=token.column, base=name, index=index
                )
            return ast.Var(line=token.line, column=token.column, name=name)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {token.value!r} in expression")
