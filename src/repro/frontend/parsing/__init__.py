"""Composable recursive-descent parser mixins for mini-C.

The parser is assembled from independent mixin layers, mirroring the
mixin-composed parser architecture from the SVRF/btrc recursive-descent
family: :class:`ParserBase` owns token plumbing and error reporting,
and each grammar area (declarations, statements, expressions) lives in
its own mixin so the grammar can grow without re-monolithing.

``repro.frontend.parser`` assembles the concrete :class:`Parser` from
these pieces; import from there unless you are building a custom
parser variant.
"""

from repro.frontend.parsing.base import ParserBase
from repro.frontend.parsing.declarations import DeclarationsMixin
from repro.frontend.parsing.expressions import (
    _ASSIGN_OPS,
    _BINARY_LEVELS,
    ExpressionsMixin,
)
from repro.frontend.parsing.statements import StatementsMixin

__all__ = [
    "ParserBase",
    "DeclarationsMixin",
    "StatementsMixin",
    "ExpressionsMixin",
    "_ASSIGN_OPS",
    "_BINARY_LEVELS",
]
