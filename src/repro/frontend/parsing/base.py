"""Token plumbing shared by every parser mixin."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token


class ParserBase:
    """Cursor over a token stream plus position-aware error helpers.

    Grammar mixins call :meth:`expect`/:meth:`accept`/:meth:`error`;
    nothing here knows anything about the mini-C grammar itself.
    """

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def _anchor(self) -> Token:
        """The token to blame in an error: at EOF, the last real token.

        Reporting the end-of-file marker's position is useless when the
        stream is exhausted mid-construct; the last token the user
        actually wrote is where the problem is.
        """
        token = self.current
        if token.kind == "eof":
            for index in range(min(self.pos, len(self.tokens) - 1) - 1, -1, -1):
                if self.tokens[index].kind != "eof":
                    return self.tokens[index]
        return token

    def expect(self, kind: str, value=None) -> Token:
        if self.check(kind, value):
            return self.advance()
        token = self._anchor()
        wanted = value if value is not None else kind
        found = "end of input" if self.current.kind == "eof" else repr(self.current.value)
        raise CompileError(
            f"expected {wanted!r}, found {found}", token.line, token.column
        )

    def error(self, message: str) -> CompileError:
        token = self._anchor()
        return CompileError(message, token.line, token.column)
