"""Top-level grammar: struct definitions, globals, functions, params."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token


class DeclarationsMixin:
    """Parse translation units, type specifiers, and declarators."""

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.check("eof"):
            if (
                self.check("keyword", "struct")
                and self.peek().kind == "ident"
                and self.peek(2).value == "{"
            ):
                unit.structs.append(self._parse_struct_def())
                continue
            typ, struct = self._parse_type_spec()
            ptr = self._parse_ptr_depth()
            name_token = self.expect("ident")
            name = str(name_token.value)
            if self.check("op", "("):
                unit.functions.append(
                    self._parse_function(typ, struct, ptr, name, name_token)
                )
            else:
                unit.globals.append(
                    self._parse_global(typ, struct, ptr, name, name_token)
                )
        return unit

    # ------------------------------------------------------------------
    # Type specifiers and declarators
    # ------------------------------------------------------------------

    def _parse_type_spec(self) -> Tuple[str, Optional[str]]:
        """Parse a base type: ``int``/``float``/``void`` or ``struct Tag``."""
        token = self.current
        if token.kind == "keyword" and token.value in ("int", "float", "void"):
            self.advance()
            return str(token.value), None
        if token.kind == "keyword" and token.value == "struct":
            self.advance()
            tag = str(self.expect("ident").value)
            return "struct", tag
        raise self.error(f"expected a type, found {token.value!r}")

    def _parse_type(self) -> str:
        """Back-compat helper: a scalar base type with no declarator."""
        typ, struct = self._parse_type_spec()
        if struct is not None:
            raise self.error("struct type is not valid here")
        return typ

    def _parse_ptr_depth(self) -> int:
        depth = 0
        while self.accept("op", "*"):
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Struct definitions
    # ------------------------------------------------------------------

    def _parse_struct_def(self) -> ast.StructDef:
        token = self.expect("keyword", "struct")
        name = str(self.expect("ident").value)
        self.expect("op", "{")
        fields: List[ast.FieldDecl] = []
        while not self.accept("op", "}"):
            if self.check("eof"):
                raise CompileError("unterminated struct", token.line, token.column)
            typ, struct = self._parse_type_spec()
            ptr = self._parse_ptr_depth()
            field_token = self.expect("ident")
            if self.check("op", "["):
                raise self.error("array fields are not supported")
            self.expect("op", ";")
            fields.append(
                ast.FieldDecl(
                    typ,
                    str(field_token.value),
                    ptr=ptr,
                    struct=struct,
                    line=field_token.line,
                    column=field_token.column,
                )
            )
        self.expect("op", ";")
        if not fields:
            raise CompileError(f"struct {name!r} has no fields", token.line, token.column)
        return ast.StructDef(name, fields, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------

    def _parse_global(
        self,
        typ: str,
        struct: Optional[str],
        ptr: int,
        name: str,
        name_token: Token,
    ) -> ast.GlobalDecl:
        if typ == "void" and ptr == 0:
            raise CompileError("void global", name_token.line, name_token.column)
        array_size: Optional[int] = None
        if self.accept("op", "["):
            if ptr:
                raise self.error("arrays of pointers are not supported")
            if typ == "struct":
                raise self.error("arrays of structs are not supported")
            size_token = self.expect("int")
            array_size = int(size_token.value)
            if array_size <= 0:
                raise CompileError("bad array size", size_token.line, size_token.column)
            self.expect("op", "]")
        init: Optional[List[Union[int, float]]] = None
        if self.accept("op", "="):
            if ptr or typ == "struct":
                raise self.error("only scalar and array globals can have initializers")
            init = self._parse_global_init(typ, array_size is not None)
        self.expect("op", ";")
        return ast.GlobalDecl(
            typ,
            name,
            array_size,
            init,
            name_token.line,
            ptr=ptr,
            struct=struct,
            column=name_token.column,
        )

    def _parse_global_init(self, typ: str, is_array: bool):
        def literal():
            negative = bool(self.accept("op", "-"))
            token = self.current
            if token.kind == "int":
                self.advance()
                value: Union[int, float] = int(token.value)
            elif token.kind == "float":
                self.advance()
                value = float(token.value)
            else:
                raise self.error("global initializers must be literals")
            if typ == "float":
                value = float(value)
            return -value if negative else value

        if is_array:
            self.expect("op", "{")
            values = [literal()]
            while self.accept("op", ","):
                values.append(literal())
            self.expect("op", "}")
            return values
        return [literal()]

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _parse_function(
        self,
        ret_type: str,
        ret_struct: Optional[str],
        ret_ptr: int,
        name: str,
        name_token: Token,
    ) -> ast.FuncDef:
        if ret_struct is not None:
            raise CompileError(
                "functions cannot return structs", name_token.line, name_token.column
            )
        if ret_type == "void" and ret_ptr:
            raise CompileError(
                "void pointers are not supported", name_token.line, name_token.column
            )
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") and self.peek().value == ")":
                self.advance()
            else:
                params.append(self._parse_param())
                while self.accept("op", ","):
                    params.append(self._parse_param())
        self.expect("op", ")")
        body = self._parse_block()
        return ast.FuncDef(
            ret_type,
            name,
            params,
            body,
            name_token.line,
            ret_ptr=ret_ptr,
            column=name_token.column,
        )

    def _parse_param(self) -> ast.Param:
        typ, struct = self._parse_type_spec()
        ptr = self._parse_ptr_depth()
        if typ == "void":
            raise self.error("void parameter")
        name_token = self.expect("ident")
        is_array = False
        if self.accept("op", "["):
            if ptr or typ == "struct":
                raise self.error("array parameters must have scalar elements")
            self.expect("op", "]")
            is_array = True
        return ast.Param(
            typ,
            str(name_token.value),
            is_array,
            ptr=ptr,
            struct=struct,
            line=name_token.line,
            column=name_token.column,
        )
