"""Statement grammar: blocks, declarations, control flow."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.errors import CompileError


class StatementsMixin:
    """Parse statements; expression parsing is delegated to the
    expressions mixin via :meth:`parse_expression`."""

    def _parse_block(self) -> ast.Block:
        open_token = self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise CompileError("unterminated block", open_token.line, open_token.column)
            stmts.append(self._parse_statement())
        self.expect("op", "}")
        return ast.Block(line=open_token.line, column=open_token.column, stmts=stmts)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "keyword":
            keyword = token.value
            if keyword in ("int", "float", "struct"):
                return self._parse_decl()
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "switch":
                return self._parse_switch()
            if keyword == "return":
                self.advance()
                value = None if self.check("op", ";") else self.parse_expression()
                self.expect("op", ";")
                return ast.ReturnStmt(line=token.line, column=token.column, value=value)
            if keyword == "break":
                self.advance()
                self.expect("op", ";")
                return ast.BreakStmt(line=token.line, column=token.column)
            if keyword == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.ContinueStmt(line=token.line, column=token.column)
            if keyword == "void":
                raise self.error("void is only valid as a return type")
        if self.check("op", "{"):
            return self._parse_block()
        if self.accept("op", ";"):
            return ast.Block(line=token.line, column=token.column, stmts=[])
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(line=token.line, column=token.column, expr=expr)

    def _parse_decl(self) -> ast.DeclStmt:
        token = self.current
        typ, struct = self._parse_type_spec()
        ptr = self._parse_ptr_depth()
        name_token = self.expect("ident")
        name = str(name_token.value)
        array_size: Optional[int] = None
        init: Optional[ast.Expr] = None
        if self.check("op", "["):
            if ptr:
                raise self.error("arrays of pointers are not supported")
            if typ == "struct":
                raise self.error("arrays of structs are not supported")
            self.advance()
            size_token = self.expect("int")
            array_size = int(size_token.value)
            if array_size <= 0:
                raise CompileError("bad array size", size_token.line, size_token.column)
            self.expect("op", "]")
        elif self.accept("op", "="):
            if typ == "struct" and ptr == 0:
                raise self.error("struct locals cannot have initializers")
            init = self.parse_expression()
        self.expect("op", ";")
        return ast.DeclStmt(
            line=token.line,
            column=token.column,
            typ=typ,
            name=name,
            array_size=array_size,
            init=init,
            ptr=ptr,
            struct=struct,
        )

    def _parse_if(self) -> ast.IfStmt:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_body = self._parse_statement()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self._parse_statement()
        return ast.IfStmt(
            line=token.line,
            column=token.column,
            cond=cond,
            then_body=then_body,
            else_body=else_body,
        )

    def _parse_while(self) -> ast.WhileStmt:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self._parse_statement()
        return ast.WhileStmt(line=token.line, column=token.column, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        token = self.expect("keyword", "do")
        body = self._parse_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhileStmt(line=token.line, column=token.column, body=body, cond=cond)

    def _parse_switch(self) -> ast.SwitchStmt:
        token = self.expect("keyword", "switch")
        self.expect("op", "(")
        selector = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[ast.SwitchCase] = []
        seen_values = set()
        seen_default = False
        while not self.check("op", "}"):
            if self.accept("keyword", "case"):
                value = self._parse_case_value()
                if value in seen_values:
                    raise self.error(f"duplicate case {value}")
                seen_values.add(value)
                self.expect("op", ":")
                cases.append(ast.SwitchCase(value, self._parse_case_body()))
            elif self.accept("keyword", "default"):
                if seen_default:
                    raise self.error("duplicate default")
                seen_default = True
                self.expect("op", ":")
                cases.append(ast.SwitchCase(None, self._parse_case_body()))
            else:
                raise self.error("expected 'case' or 'default' in switch")
        self.expect("op", "}")
        return ast.SwitchStmt(
            line=token.line, column=token.column, selector=selector, cases=cases
        )

    def _parse_case_value(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("int")
        value = int(token.value)
        return -value if negative else value

    def _parse_case_body(self) -> List[ast.Stmt]:
        body: List[ast.Stmt] = []
        while not (
            self.check("op", "}")
            or self.check("keyword", "case")
            or self.check("keyword", "default")
        ):
            body.append(self._parse_statement())
        return body

    def _parse_for(self) -> ast.ForStmt:
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        init = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        cond = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.parse_expression()
        self.expect("op", ")")
        body = self._parse_statement()
        return ast.ForStmt(
            line=token.line,
            column=token.column,
            init=init,
            cond=cond,
            step=step,
            body=body,
        )
