"""Tokenizer for the mini-C subset."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Union

from repro.frontend.errors import CompileError

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
        "struct",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    ".",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39}


class Token(NamedTuple):
    kind: str  # 'int', 'float', 'ident', 'keyword', 'op', 'eof'
    value: Union[str, int, float]
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; raises CompileError on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        column = i - line_start + 1
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated comment", line, column)
            line += source.count("\n", i, end)
            if "\n" in source[i:end]:
                line_start = source.rfind("\n", i, end) + 1
            i = end + 2
            continue
        # Numbers.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                tokens.append(Token("int", int(source[start:i], 16), line, column))
                continue
            while i < n and source[i].isdigit():
                i += 1
            is_float = False
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            if i < n and source[i] in "fF" and is_float:
                i += 1
            if is_float:
                tokens.append(Token("float", float(text), line, column))
            else:
                tokens.append(Token("int", int(text), line, column))
            continue
        # Character literal (yields an int).
        if ch == "'":
            i += 1
            if i >= n:
                raise CompileError("unterminated char literal", line, column)
            if source[i] == "\\":
                i += 1
                if i >= n or source[i] not in _ESCAPES:
                    raise CompileError("bad escape in char literal", line, column)
                value = _ESCAPES[source[i]]
                i += 1
            else:
                value = ord(source[i])
                i += 1
            if i >= n or source[i] != "'":
                raise CompileError("unterminated char literal", line, column)
            i += 1
            tokens.append(Token("int", value, line, column))
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            continue
        # Operators and punctuation.
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, n - line_start + 1))
    return tokens
