"""The optimization phase order space DAG (paper Figures 4 and 7).

Nodes are distinct function instances; edges are labeled with the
active phase that transforms one instance into the next.  Node weights
follow Figure 7: a leaf (no phase active) weighs 1, and an interior
node's weight is the sum of its children's weights over its outgoing
active edges — i.e. the number of distinct active phase sequences that
continue from that instance.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple


class SpaceNode:
    """One distinct function instance in the space DAG."""

    __slots__ = (
        "node_id",
        "key",
        "level",
        "num_insts",
        "cf_crc",
        "active",
        "dormant",
        "expanded",
        "parents",
        "function",
    )

    def __init__(self, node_id: int, key, level: int, num_insts: int, cf_crc: int):
        self.node_id = node_id
        self.key = key
        self.level = level
        self.num_insts = num_insts
        self.cf_crc = cf_crc
        #: phase id -> child node id (active edges)
        self.active: Dict[str, int] = {}
        #: phase ids found dormant at this instance
        self.dormant: Set[str] = set()
        self.expanded = False
        #: (parent node id, phase id) pairs
        self.parents: List[Tuple[int, str]] = []
        self.function = None  # only retained while on the frontier

    def is_leaf(self) -> bool:
        """No phase is active at this instance (paper's leaf count)."""
        return self.expanded and not self.active

    def __repr__(self):
        return (
            f"<SpaceNode {self.node_id} level={self.level} "
            f"insts={self.num_insts} active={sorted(self.active)}>"
        )


class SpaceDAG:
    """The enumerated phase order space of one function."""

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.nodes: Dict[int, SpaceNode] = {}
        self.by_key: Dict[object, int] = {}
        #: syntactic key -> node id of the *representative* the instance
        #: was semantically collapsed into (collapse=semantic only; see
        #: docs/COLLAPSE.md).  Empty under syntactic collapse.
        self.aliases: Dict[object, int] = {}
        self.root_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction (used by the enumerator)
    # ------------------------------------------------------------------

    def add_node(self, key, level: int, num_insts: int, cf_crc: int) -> SpaceNode:
        node_id = len(self.nodes)
        node = SpaceNode(node_id, key, level, num_insts, cf_crc)
        self.nodes[node_id] = node
        self.by_key[key] = node_id
        if self.root_id is None:
            self.root_id = node_id
        return node

    def lookup(self, key) -> Optional[SpaceNode]:
        node_id = self.by_key.get(key)
        if node_id is None:
            node_id = self.aliases.get(key)
        return None if node_id is None else self.nodes[node_id]

    def add_alias(self, key, node_id: int) -> None:
        """Record that the instance with syntactic *key* was merged
        into node *node_id*; later lookups (repeat discoveries, warm
        memo hits, ``find_instance``) resolve to the representative."""
        self.aliases[key] = node_id

    def add_edge(self, parent: SpaceNode, phase_id: str, child: SpaceNode) -> None:
        parent.active[phase_id] = child.node_id
        child.parents.append((parent.node_id, phase_id))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> SpaceNode:
        return self.nodes[self.root_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def leaves(self) -> List[SpaceNode]:
        return [node for node in self.nodes.values() if node.is_leaf()]

    def depth(self) -> int:
        """Largest active phase sequence length (Table 3's Len)."""
        return max((node.level for node in self.nodes.values()), default=0)

    def distinct_control_flows(self) -> int:
        """Number of distinct control flows over all instances (CF)."""
        return len({node.cf_crc for node in self.nodes.values()})

    def weights(self) -> Dict[int, int]:
        """Figure 7 node weights: distinct active sequences per node.

        Unexpanded nodes (possible when an enumeration was truncated)
        are weighted like leaves.
        """
        weights: Dict[int, int] = {}
        order = self._topological_order()
        for node_id in reversed(order):
            node = self.nodes[node_id]
            if not node.active:
                weights[node_id] = 1
            else:
                weights[node_id] = sum(
                    weights[child] for child in node.active.values()
                )
        return weights

    def path_counts(self) -> Dict[int, int]:
        """Number of distinct root paths to each node.

        Summing these over all nodes gives the size of the
        dormant-pruned *tree* of Figure 2 — what the search space would
        be without identical-instance merging.
        """
        counts: Dict[int, int] = {node_id: 0 for node_id in self.nodes}
        counts[self.root_id] = 1
        for node_id in self._topological_order():
            node = self.nodes[node_id]
            for child in node.active.values():
                counts[child] += counts[node_id]
        return counts

    def tree_size(self) -> int:
        """Nodes of the dormant-pruned tree (Figure 2 equivalent)."""
        return sum(self.path_counts().values())

    def naive_space_size(self, num_phases: int) -> int:
        """Nodes of the naive attempted tree (Figure 1): sum of
        ``num_phases**level`` over the enumerated depth."""
        return sum(num_phases ** level for level in range(self.depth() + 1))

    def min_codesize(self) -> Optional[int]:
        leaves = self.leaves()
        if not leaves:
            return None
        return min(node.num_insts for node in leaves)

    def max_codesize(self) -> Optional[int]:
        leaves = self.leaves()
        if not leaves:
            return None
        return max(node.num_insts for node in leaves)

    def find_instance(self, func) -> Optional[SpaceNode]:
        """Locate a concrete function instance in this space.

        Useful for asking where another compiler's output (e.g. the
        batch compiler's) sits inside the exhaustively enumerated
        space.  Returns None when the instance is not in the space
        (possible for truncated enumerations).
        """
        from repro.core.enumeration import _node_key
        from repro.core.fingerprint import fingerprint_function

        return self.lookup(_node_key(fingerprint_function(func), func))

    def codesize_histogram(self) -> Dict[int, int]:
        """Leaf count per code size (the spread Table 3 summarizes)."""
        histogram: Dict[int, int] = {}
        for leaf in self.leaves():
            histogram[leaf.num_insts] = histogram.get(leaf.num_insts, 0) + 1
        return histogram

    def to_dot(self, max_nodes: int = 400) -> str:
        """Graphviz rendering of the space DAG (Figure 4/7 style).

        Nodes show instance id, level, and instruction count; edges are
        labeled with the active phase.  Spaces larger than *max_nodes*
        are truncated breadth-first (a note is added).
        """
        lines = [
            "digraph space {",
            "  rankdir=TB;",
            '  node [shape=circle, fontsize=10];',
        ]
        included = set()
        for node in self.nodes.values():
            if len(included) >= max_nodes:
                lines.append(
                    f'  trunc [shape=plaintext, label="... truncated at '
                    f'{max_nodes} of {len(self.nodes)} nodes"];'
                )
                break
            included.add(node.node_id)
            shape = "doublecircle" if node.is_leaf() else "circle"
            lines.append(
                f'  n{node.node_id} [shape={shape}, '
                f'label="{node.node_id}\\n{node.num_insts} insts"];'
            )
        for node in self.nodes.values():
            if node.node_id not in included:
                continue
            for phase_id, child in sorted(node.active.items()):
                if child in included:
                    lines.append(f'  n{node.node_id} -> n{child} [label="{phase_id}"];')
        lines.append("}")
        return "\n".join(lines)

    def _topological_order(self) -> List[int]:
        """Parents before children (levels give a valid topological
        order because every edge goes from level n to level <= n+1 and
        the DAG is acyclic by construction)."""
        indegree: Dict[int, int] = {node_id: 0 for node_id in self.nodes}
        for node in self.nodes.values():
            for child in node.active.values():
                indegree[child] += 1
        ready = sorted(
            (node_id for node_id, deg in indegree.items() if deg == 0)
        )
        order: List[int] = []
        while ready:
            node_id = ready.pop()
            order.append(node_id)
            for child in sorted(self.nodes[node_id].active.values()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.nodes):
            raise RuntimeError("space DAG contains a cycle")
        return order


def materialize_instances(dag: SpaceDAG, root_func, target=None) -> int:
    """Re-attach a :class:`Function` instance to every node of *dag*.

    The DAG records *which* instances exist and which phase transforms
    one into the next, but a space enumerated without
    ``keep_functions=True`` (or loaded back from a checkpoint or a
    :class:`~repro.parallel.store.SpaceStore` entry) carries no
    function objects.  This walk rebuilds them by replaying every
    active edge exactly once in topological order — the same
    one-phase-per-edge discipline as prefix-sharing enumeration — so
    leaf evaluation (dynamic counts, the multi-objective cost model,
    the search-lab oracle) works on cold-loaded spaces.

    *root_func* must be the canonical root instance (after
    ``implicit_cleanup``); each rebuilt instance is verified against
    the node's stored fingerprint key, so a wrong or stale root fails
    loudly instead of silently pricing the wrong code.

    Returns the number of phase applications performed (== active
    edges replayed).  Nodes that already carry a function are kept
    as-is and their outgoing edges are still used for children.
    """
    from repro.core.enumeration import _node_key
    from repro.core.fingerprint import fingerprint_function
    from repro.machine.target import DEFAULT_TARGET
    from repro.opt import attempt_phase_on_clone, phase_by_id

    target = target or DEFAULT_TARGET
    if dag.root_id is None:
        return 0
    root = dag.root
    if root.function is None:
        candidate = root_func.clone()
        key = _node_key(fingerprint_function(candidate), candidate)
        if key != root.key:
            raise ValueError(
                f"{dag.function_name}: root_func does not fingerprint to the "
                "DAG's root key — wrong function or non-canonical instance "
                "(run implicit_cleanup first)"
            )
        root.function = candidate
    applied = 0
    for node_id in dag._topological_order():
        node = dag.nodes[node_id]
        if node.function is None:
            # Unreachable from the root through materialized parents;
            # can only happen on a DAG truncated mid-construction.
            continue
        for phase_id in sorted(node.active):
            child = dag.nodes[node.active[phase_id]]
            if child.function is not None:
                continue
            candidate = attempt_phase_on_clone(
                node.function, phase_by_id(phase_id), target
            )
            applied += 1
            if candidate is None:
                raise ValueError(
                    f"{dag.function_name}: phase {phase_id!r} recorded as "
                    f"active on node #{node.node_id} was dormant on replay "
                    "— the DAG does not belong to root_func"
                )
            key = _node_key(fingerprint_function(candidate), candidate)
            if key != child.key:
                if dag.aliases.get(key) == child.node_id:
                    # Semantically merged edge: the replayed candidate
                    # is a proved-equivalent sibling of the
                    # representative, not its exact code.  Leave
                    # materialization to an exact in-edge — the
                    # representative's creating edge always is one.
                    continue
                raise ValueError(
                    f"{dag.function_name}: replaying phase {phase_id!r} on "
                    f"node #{node.node_id} produced a different instance "
                    f"than recorded child #{child.node_id}"
                )
            child.function = candidate
    return applied
