"""Optimization phase interaction analysis (paper section 5).

Given one or more enumerated space DAGs, compute:

- **enabling** probabilities (Table 4): phase x enables phase y when y
  was dormant before x was applied and active afterwards.  The
  probability is the ratio of dormant→active transitions to all
  dormant→{active,dormant} transitions across x-edges, each transition
  weighted by the weight of the destination node (Figure 7 weights);
- **disabling** probabilities (Table 5): active→dormant transitions
  against active→{dormant,active}, weighted the same way;
- **independence** probabilities (Table 6): two phases active at the
  same instance are independent there when applying them in either
  order yields the identical instance; weighted by the node's weight;
- **start** probabilities (Table 4's St column): how often each phase
  is active on the unoptimized instance.

Only expanded nodes participate (an aborted enumeration's frontier has
unknown phase status).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dag import SpaceDAG
from repro.core.enumeration import EnumerationResult
from repro.opt import PHASE_IDS


class InteractionAnalysis:
    """Aggregated phase interaction probabilities."""

    def __init__(
        self,
        phase_ids: Sequence[str],
        enabling: Dict[str, Dict[str, float]],
        disabling: Dict[str, Dict[str, float]],
        independence: Dict[str, Dict[str, float]],
        start: Dict[str, float],
        size_effect: Optional[Dict[str, float]] = None,
    ):
        self.phase_ids = tuple(phase_ids)
        #: enabling[y][x] = P(x enables y)
        self.enabling = enabling
        #: disabling[y][x] = P(x disables y)
        self.disabling = disabling
        #: independence[x][y] = P(order of x and y does not matter)
        self.independence = independence
        #: start[x] = P(x active on the unoptimized function)
        self.start = start
        #: size_effect[x] = mean instruction-count change when x is
        #: active (negative = shrinks code), weighted like the tables.
        #: This is the "benefit" signal the paper's section 6 suggests
        #: the probabilistic compiler should additionally consider.
        self.size_effect = size_effect or {}

    # ------------------------------------------------------------------
    # Paper-style table rendering
    # ------------------------------------------------------------------

    def format_enabling(self) -> str:
        return self._format_table(
            self.enabling, "Enabling (row enabled by column)", start=self.start
        )

    def format_disabling(self) -> str:
        return self._format_table(
            self.disabling, "Disabling (row disabled by column)"
        )

    def format_independence(self) -> str:
        return self._format_table(
            self.independence,
            "Independence (blank > 0.995)",
            blank_when_high=True,
        )

    def _format_table(
        self,
        table: Dict[str, Dict[str, float]],
        title: str,
        start: Optional[Dict[str, float]] = None,
        blank_when_high: bool = False,
    ) -> str:
        ids = self.phase_ids
        header = ["Ph"] + (["St"] if start is not None else []) + list(ids)
        lines = [title, "  ".join(f"{h:>5}" for h in header)]
        for row_id in ids:
            cells = [f"{row_id:>5}"]
            if start is not None:
                cells.append(_format_cell(start.get(row_id), False))
            for col_id in ids:
                cells.append(
                    _format_cell(table.get(row_id, {}).get(col_id), blank_when_high)
                )
            lines.append("  ".join(cells))
        return "\n".join(lines)


def _format_cell(value: Optional[float], blank_when_high: bool) -> str:
    if value is None:
        return f"{'':>5}"
    if blank_when_high and value > 0.995:
        return f"{'':>5}"
    if not blank_when_high and value < 0.005:
        return f"{'':>5}"
    return f"{value:5.2f}"


class _Accumulator:
    __slots__ = ("numerator", "denominator")

    def __init__(self):
        self.numerator = 0.0
        self.denominator = 0.0

    def add(self, hit: bool, weight: float) -> None:
        self.denominator += weight
        if hit:
            self.numerator += weight

    def ratio(self) -> Optional[float]:
        if self.denominator == 0:
            return None
        return self.numerator / self.denominator


def analyze_interactions(
    results: Iterable[EnumerationResult],
    phase_ids: Sequence[str] = PHASE_IDS,
) -> InteractionAnalysis:
    """Aggregate interaction statistics over enumerated functions."""
    enabling: Dict[Tuple[str, str], _Accumulator] = {}
    disabling: Dict[Tuple[str, str], _Accumulator] = {}
    independence: Dict[Tuple[str, str], _Accumulator] = {}
    start: Dict[str, _Accumulator] = {pid: _Accumulator() for pid in phase_ids}
    # weighted sums for the mean code-size effect of each phase
    effect_sum: Dict[str, float] = {}
    effect_weight: Dict[str, float] = {}

    results = list(results)
    for result in results:
        dag = result.dag
        weights = dag.weights()
        root = dag.root
        if root.expanded:
            for pid in phase_ids:
                start[pid].add(pid in root.active, 1.0)
        for node in dag.nodes.values():
            if not node.expanded:
                continue
            node_active = set(node.active)
            node_dormant = set(node.dormant)
            for applied, child_id in node.active.items():
                child = dag.nodes[child_id]
                if not child.expanded:
                    continue
                weight = float(weights[child_id])
                effect_sum[applied] = effect_sum.get(applied, 0.0) + weight * (
                    child.num_insts - node.num_insts
                )
                effect_weight[applied] = effect_weight.get(applied, 0.0) + weight
                child_active = set(child.active)
                child_dormant = set(child.dormant)
                for other in phase_ids:
                    if other == applied:
                        # A phase always disables itself: it runs to its
                        # own fixpoint (Table 5's diagonal of 1.00).
                        key = (other, applied)
                        acc = disabling.get(key)
                        if acc is None:
                            acc = disabling[key] = _Accumulator()
                        acc.add(other in child_dormant, weight)
                        continue
                    if other in node_dormant:
                        key = (other, applied)
                        acc = enabling.get(key)
                        if acc is None:
                            acc = enabling[key] = _Accumulator()
                        if other in child_active:
                            acc.add(True, weight)
                        elif other in child_dormant:
                            acc.add(False, weight)
                    elif other in node_active:
                        key = (other, applied)
                        acc = disabling.get(key)
                        if acc is None:
                            acc = disabling[key] = _Accumulator()
                        if other in child_dormant:
                            acc.add(True, weight)
                        elif other in child_active:
                            acc.add(False, weight)
            # Independence: both orders from this node reach one node.
            node_weight = float(weights[node.node_id])
            actives = sorted(node_active)
            for i, x in enumerate(actives):
                for y in actives[i + 1 :]:
                    a = dag.nodes[node.active[x]]
                    b = dag.nodes[node.active[y]]
                    if not a.expanded or not b.expanded:
                        continue
                    if y not in a.active or x not in b.active:
                        continue  # not consecutively active both ways
                    same = a.active[y] == b.active[x]
                    for key in ((x, y), (y, x)):
                        acc = independence.get(key)
                        if acc is None:
                            acc = independence[key] = _Accumulator()
                        acc.add(same, node_weight)

    def collapse(table: Dict[Tuple[str, str], _Accumulator]):
        out: Dict[str, Dict[str, float]] = {}
        for (row, col), acc in table.items():
            ratio = acc.ratio()
            if ratio is not None:
                out.setdefault(row, {})[col] = ratio
        return out

    return InteractionAnalysis(
        phase_ids,
        collapse(enabling),
        collapse(disabling),
        collapse(independence),
        {
            pid: acc.ratio()
            for pid, acc in start.items()
            if acc.ratio() is not None
        },
        {
            pid: effect_sum[pid] / effect_weight[pid]
            for pid in effect_sum
            if effect_weight.get(pid)
        },
    )
