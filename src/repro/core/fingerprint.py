"""Function-instance fingerprinting (paper section 4.2.1, Figure 5).

Two function instances are *identical* when their instructions match
after remapping registers and block labels in control-flow encounter
order.  Remapping catches instances that differ only because different
phase orders consumed registers or created blocks in a different order
(Figure 5 of the paper shows why this matters).

For each instance we keep three numbers — the instruction count, the
byte-sum of the rendered RTLs, and a CRC-32 over the same bytes — and
treat instances as identical when all three match.  A fourth component
fingerprints only the control transfers, which is what the paper's
"distinct control flows" column (CF of Table 3) counts.

The remapping is deliberately the paper's naive one: every register is
renumbered on first encounter (not a live-range remapping, which would
be unsafe at intermediate points because it changes register pressure).

Fingerprinting happens once per attempted edge, so the default path is
a *streaming* single pass: each rendered line is hashed into the
running CRCs and byte-sum as it is produced, never materializing the
joined text.  The stream is chunked with the same ``"\\n"`` separators
``"\\n".join(lines)`` would insert, so the result is bit-identical to
the legacy render-then-hash pipeline (kept below as the oracle for the
property tests, for exact mode — which needs the text anyway — and for
the hot-path bench's legacy measurements via ``set_legacy_mode``).
"""

from __future__ import annotations

import os
from typing import Dict, NamedTuple, Optional

from repro.core.crc import crc32
from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump
from repro.ir.operands import Reg
from repro.ir.printer import format_instruction


class Fingerprint(NamedTuple):
    """Identity of a function instance."""

    num_insts: int
    byte_sum: int
    crc: int
    cf_crc: int  # control-flow-only fingerprint (Table 3's CF column)
    text: Optional[str] = None  # remapped rendering (exact mode only)

    @property
    def key(self):
        """The triple the paper compares (plus instruction count)."""
        return (self.num_insts, self.byte_sum, self.crc)


def remap_function_text(func: Function) -> str:
    """Render *func* with registers and labels renumbered in encounter
    order, scanning blocks from the top of the function (Figure 5d)."""
    reg_map: Dict[Reg, str] = {}
    label_map: Dict[str, str] = {}

    def reg_namer(reg: Reg) -> str:
        name = reg_map.get(reg)
        if name is None:
            name = f"r[{len(reg_map) + 1}]"
            reg_map[reg] = name
        return name

    def label_namer(label: str) -> str:
        name = label_map.get(label)
        if name is None:
            name = f"L{len(label_map) + 1:02d}"
            label_map[label] = name
        return name

    lines = []
    for block in func.blocks:
        lines.append(f"{label_namer(block.label)}:")
        for inst in block.insts:
            lines.append(format_instruction(inst, reg_namer, label_namer))
    return "\n".join(lines)


def control_flow_text(func: Function) -> str:
    """Render only the control structure: blocks and transfers."""
    label_map: Dict[str, str] = {}

    def label_namer(label: str) -> str:
        name = label_map.get(label)
        if name is None:
            name = f"L{len(label_map) + 1:02d}"
            label_map[label] = name
        return name

    lines = []
    for block in func.blocks:
        lines.append(f"{label_namer(block.label)}:")
        term = block.terminator()
        if isinstance(term, Jump):
            lines.append(f"j {label_namer(term.target)}")
        elif isinstance(term, CondBranch):
            lines.append(f"b{term.relop} {label_namer(term.target)}")
        elif term is not None:
            lines.append("ret")
    return "\n".join(lines)


def raw_function_text(func: Function) -> str:
    """Render *func* without any remapping (the ablation baseline:
    merging then only catches textually identical instances)."""
    lines = []
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for inst in block.insts:
            lines.append(format_instruction(inst))
    return "\n".join(lines)


class _StreamHash:
    """Running (byte_sum, crc) over newline-joined lines.

    Feeding lines [a, b, c] hashes exactly the bytes of
    ``"\\n".join([a, b, c]).encode("utf-8")`` — CRC-32 chains
    (``crc32(y, crc32(x)) == crc32(x + y)``), so interleaving the
    separator keeps the digest bit-identical to the one-shot hash.
    """

    __slots__ = ("byte_sum", "crc", "_chunks")

    def __init__(self) -> None:
        self.byte_sum = 0
        self.crc = 0
        self._chunks: list = []

    def line(self, text: str) -> None:
        self._chunks.append(text)

    def flush_block(self) -> None:
        """Hash the lines buffered since the previous flush."""
        if not self._chunks:
            return
        if self.byte_sum or self.crc:
            data = ("\n" + "\n".join(self._chunks)).encode("utf-8")
        else:
            data = "\n".join(self._chunks).encode("utf-8")
        self.byte_sum += sum(data)
        self.crc = crc32(data, self.crc)
        self._chunks.clear()


def _streaming_fingerprint(func: Function) -> Fingerprint:
    """Single pass over blocks: render each line once, feed the main and
    control-flow hashes as the text is produced, count instructions."""
    reg_map: Dict[Reg, str] = {}
    label_map: Dict[str, str] = {}
    cf_label_map: Dict[str, str] = {}

    def reg_namer(reg: Reg) -> str:
        name = reg_map.get(reg)
        if name is None:
            name = f"r[{len(reg_map) + 1}]"
            reg_map[reg] = name
        return name

    def label_namer(label: str) -> str:
        name = label_map.get(label)
        if name is None:
            name = f"L{len(label_map) + 1:02d}"
            label_map[label] = name
        return name

    def cf_label_namer(label: str) -> str:
        name = cf_label_map.get(label)
        if name is None:
            name = f"L{len(cf_label_map) + 1:02d}"
            cf_label_map[label] = name
        return name

    main = _StreamHash()
    cf = _StreamHash()
    num_insts = 0
    for block in func.blocks:
        main.line(f"{label_namer(block.label)}:")
        for inst in block.insts:
            main.line(format_instruction(inst, reg_namer, label_namer))
        num_insts += len(block.insts)
        main.flush_block()

        cf.line(f"{cf_label_namer(block.label)}:")
        term = block.terminator()
        if isinstance(term, Jump):
            cf.line(f"j {cf_label_namer(term.target)}")
        elif isinstance(term, CondBranch):
            cf.line(f"b{term.relop} {cf_label_namer(term.target)}")
        elif term is not None:
            cf.line("ret")
        cf.flush_block()

    return Fingerprint(
        num_insts=num_insts,
        byte_sum=main.byte_sum & 0xFFFFFFFF,
        crc=main.crc,
        cf_crc=cf.crc,
        text=None,
    )


_LEGACY = bool(os.environ.get("REPRO_LEGACY_FINGERPRINT"))


def set_legacy_mode(enabled: bool) -> bool:
    """Force the render-then-hash pipeline (bench/test toggle).

    Returns the previous setting so callers can restore it.
    """
    global _LEGACY
    previous = _LEGACY
    _LEGACY = enabled
    return previous


def _legacy_fingerprint(
    func: Function, keep_text: bool, remap: bool
) -> Fingerprint:
    text = remap_function_text(func) if remap else raw_function_text(func)
    data = text.encode("utf-8")
    cf_data = control_flow_text(func).encode("utf-8")
    return Fingerprint(
        num_insts=func.num_instructions(),
        byte_sum=sum(data) & 0xFFFFFFFF,
        crc=crc32(data),
        cf_crc=crc32(cf_data),
        text=text if keep_text else None,
    )


def fingerprint_function(
    func: Function, keep_text: bool = False, remap: bool = True
) -> Fingerprint:
    """Compute the identity fingerprint of a function instance.

    ``remap=False`` skips the register/label renumbering — the paper's
    section 4.2.1 argues (and the remapping ablation bench shows) that
    this misses merges and inflates the space.  Exact mode
    (``keep_text=True``) needs the materialized text for collision
    checks, so it takes the legacy path; everything else streams.
    """
    if keep_text or not remap or _LEGACY:
        return _legacy_fingerprint(func, keep_text, remap)
    return _streaming_fingerprint(func)
