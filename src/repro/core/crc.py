"""CRC-32 (IEEE 802.3 polynomial), zlib-backed with a reference build.

The paper (section 4.2.1) uses a CRC checksum over the bytes of a
function's RTLs because, unlike a plain byte-sum, a CRC is sensitive to
byte *order* [Peterson & Brown 1961] — two functions with the same
instructions in a different order hash differently.

``crc32`` delegates to :func:`zlib.crc32` (a C loop) because hashing is
on the enumeration hot path: every attempted edge fingerprints its
candidate instance.  The original byte-at-a-time table-driven
implementation is kept as :func:`crc32_reference`; the test suite
asserts both agree on arbitrary data and arbitrary seeds, and
``set_reference_mode(True)`` (or ``REPRO_REFERENCE_CRC=1`` in the
environment) routes ``crc32`` through it — used by the hot-path bench
to measure the legacy cost and by the property tests as an oracle.

Both implementations chain identically: ``crc32(b, crc32(a)) ==
crc32(a + b)``, which is what lets the streaming fingerprint hash a
function line-by-line without materializing the joined text.
"""

from __future__ import annotations

import os
import zlib
from typing import List

_POLYNOMIAL = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return table


_TABLE = _build_table()


def crc32_reference(data: bytes, seed: int = 0) -> int:
    """Table-driven CRC-32 of *data* (the from-scratch reference)."""
    value = seed ^ 0xFFFFFFFF
    for byte in data:
        value = (value >> 8) ^ _TABLE[(value ^ byte) & 0xFF]
    return value ^ 0xFFFFFFFF


_REFERENCE = bool(os.environ.get("REPRO_REFERENCE_CRC"))


def set_reference_mode(enabled: bool) -> bool:
    """Route :func:`crc32` through the table-driven reference.

    Returns the previous setting so callers can restore it.
    """
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = enabled
    return previous


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of *data* (bit-identical to zlib.crc32 for every seed)."""
    if _REFERENCE:
        return crc32_reference(data, seed)
    return zlib.crc32(data, seed)
