"""CRC-32 from scratch (table-driven, IEEE 802.3 polynomial).

The paper (section 4.2.1) uses a CRC checksum over the bytes of a
function's RTLs because, unlike a plain byte-sum, a CRC is sensitive to
byte *order* [Peterson & Brown 1961] — two functions with the same
instructions in a different order hash differently.
"""

from __future__ import annotations

from typing import Iterable, List

_POLYNOMIAL = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return table


_TABLE = _build_table()


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of *data* (compatible with zlib.crc32 for seed 0)."""
    value = seed ^ 0xFFFFFFFF
    for byte in data:
        value = (value >> 8) ^ _TABLE[(value ^ byte) & 0xFF]
    return value ^ 0xFFFFFFFF
