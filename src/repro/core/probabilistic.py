"""The probabilistic batch compiler (paper section 6, Figure 8).

Instead of a fixed phase order, the compiler keeps a running
probability of each phase being active, seeded with the start-of-
compilation probabilities (Table 4's St column) and updated after every
active phase from the enabling/disabling tables::

    p[i] += (1 - p[i]) * e[i][j] - p[i] * d[i][j]

At each step the phase with the highest probability is applied and its
own probability reset to zero.  The paper reports this reaches code
quality comparable to the batch compiler in under one third of the
compile time, because most dormant attempts are skipped.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.core.batch import CompilationReport
from repro.core.interactions import InteractionAnalysis
from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.observability import tracer as _obs
from repro.opt import PHASE_IDS, apply_phase, phase_by_id
from repro.robustness.guard import GuardedPhaseRunner


class ProbabilisticCompiler:
    """Dynamically select the next phase by activity probability."""

    def __init__(
        self,
        interactions: InteractionAnalysis,
        target: Optional[Target] = None,
        threshold: float = 0.0,
        max_steps: int = 500,
        use_benefits: bool = False,
        guard: Optional[GuardedPhaseRunner] = None,
    ):
        self.interactions = interactions
        self.target = target or DEFAULT_TARGET
        #: phases with probability at or below this are never applied
        self.threshold = threshold
        self.max_steps = max_steps
        #: section 6's suggested refinement: weight selection by each
        #: phase's measured code-size benefit, not just P(active)
        self.use_benefits = use_benefits
        #: when set, phases run through the guarded runner; a
        #: quarantined application reads as dormant, which zeroes the
        #: phase's probability and lets the algorithm move on
        self.guard = guard

    def _selection_score(self, phase_id: str, probability: float) -> float:
        if not self.use_benefits:
            return probability
        # expected instructions removed = P(active) * mean shrinkage;
        # phases that grow code (unrolling) rank by probability alone,
        # scaled down so shrinking phases go first.
        effect = self.interactions.size_effect.get(phase_id, 0.0)
        benefit = max(0.25, -effect)
        return probability * benefit

    def compile(self, func: Function) -> CompilationReport:
        """Optimize *func* in place with Figure 8's algorithm."""
        start = time.perf_counter()
        enabling = self.interactions.enabling
        disabling = self.interactions.disabling
        phase_ids: Sequence[str] = self.interactions.phase_ids or PHASE_IDS

        probability: Dict[str, float] = {
            pid: self.interactions.start.get(pid, 0.0) for pid in phase_ids
        }
        attempted = 0
        quarantined_before = (
            len(self.guard.quarantine) if self.guard is not None else 0
        )
        active_sequence: List[str] = []
        for _ in range(self.max_steps):
            best = max(
                phase_ids,
                key=lambda pid: (self._selection_score(pid, probability[pid]), pid),
            )
            if probability[best] <= self.threshold:
                break
            attempted += 1
            if self.guard is not None:
                was_active = self.guard.apply(
                    func, phase_by_id(best), self.target
                )
            else:
                was_active = apply_phase(func, phase_by_id(best), self.target)
            if was_active:
                active_sequence.append(best)
                for pid in phase_ids:
                    if pid == best:
                        continue
                    enable = enabling.get(pid, {}).get(best, 0.0)
                    disable = disabling.get(pid, {}).get(best, 0.0)
                    p = probability[pid]
                    probability[pid] = p + (1.0 - p) * enable - p * disable
            probability[best] = 0.0
        elapsed = time.perf_counter() - start
        quarantined = (
            len(self.guard.quarantine) - quarantined_before
            if self.guard is not None
            else 0
        )
        report = CompilationReport(
            func.name,
            attempted,
            len(active_sequence),
            tuple(active_sequence),
            elapsed,
            func.num_instructions(),
            quarantined=quarantined,
        )
        tr = _obs.ACTIVE
        if tr is not None:
            tr.emit(
                "prob_compile",
                function=report.function_name,
                attempted=report.attempted,
                active=report.active,
                sequence="".join(report.active_sequence),
                quarantined=report.quarantined,
                code_size=report.code_size,
                wall=round(report.elapsed, 3),
            )
        return report
