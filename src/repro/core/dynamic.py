"""Dynamic instruction count inference from distinct control flows.

The paper's section 7 observes that the small number of distinct
control flows (the CF column of Table 3) "can be used to infer the
dynamic instruction count of one execution from another": two function
instances with the same control flow execute corresponding blocks the
same number of times, so profiling *one* representative per control
flow prices *every* instance in the space.  For a function with
thousands of instances but only dozens of control flows, this turns
"simulate everything" into a handful of executions.

:class:`DynamicCountOracle` implements exactly that: it lazily executes
one representative instance per distinct control flow (recording
per-block execution frequencies) and computes every other instance's
dynamic count as sum(frequency[i] * len(block_i)) over positionally
corresponding blocks.

Requires a space enumerated with ``keep_functions=True`` so that each
node still carries its function instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.dag import SpaceDAG, SpaceNode
from repro.ir.function import Function, Program
from repro.vm import Interpreter


class DynamicCountOracle:
    """Price every instance in a space with one run per control flow.

    Parameters
    ----------
    program:
        The program the function belongs to (callees are needed).
    function_name:
        Which function the space enumerates.
    run:
        Callback ``run(interpreter) -> None`` that drives one
        execution (e.g. seeds globals and calls the entry point).
        The interpreter it receives has block profiling enabled.
    """

    def __init__(
        self,
        program: Program,
        function_name: str,
        run: Callable[[Interpreter], None],
        fuel: int = 50_000_000,
    ):
        self.program = program
        self.function_name = function_name
        self.run = run
        self.fuel = fuel
        #: cf_crc -> per-positional-block execution frequencies
        self._frequencies: Dict[int, List[int]] = {}
        self.executions = 0

    # ------------------------------------------------------------------

    def measure(self, func: Function) -> List[int]:
        """Execute once with *func* installed; per-block frequencies."""
        trial = Program()
        trial.globals = self.program.globals
        trial.functions = dict(self.program.functions)
        trial.functions[self.function_name] = func
        interpreter = Interpreter(trial, fuel=self.fuel, profile_blocks=True)
        self.run(interpreter)
        self.executions += 1
        return [
            interpreter.block_counts.get((self.function_name, block.label), 0)
            for block in func.blocks
        ]

    def dynamic_count(self, node: SpaceNode) -> int:
        """Dynamic instructions of *node*'s instance (inferred when a
        same-control-flow representative was already executed)."""
        func = node.function
        if func is None:
            raise ValueError(
                "node carries no function; enumerate with keep_functions=True"
            )
        frequencies = self._frequencies.get(node.cf_crc)
        if frequencies is None:
            frequencies = self.measure(func)
            self._frequencies[node.cf_crc] = frequencies
        return sum(
            count * len(block.insts)
            for count, block in zip(frequencies, func.blocks)
        )

    def price_space(self, dag: SpaceDAG) -> Dict[int, int]:
        """Dynamic counts for every node; executes once per control flow."""
        return {
            node.node_id: self.dynamic_count(node)
            for node in dag.nodes.values()
            if node.function is not None
        }

    def best_node(self, dag: SpaceDAG) -> Tuple[SpaceNode, int]:
        """The leaf instance with the lowest dynamic instruction count."""
        leaves = [node for node in dag.leaves() if node.function is not None]
        if not leaves:
            raise ValueError("no leaf instances with retained functions")
        priced = [(self.dynamic_count(node), node) for node in leaves]
        count, node = min(priced, key=lambda pair: (pair[0], pair[1].node_id))
        return node, count
