"""Dynamic instruction count inference from distinct control flows.

The paper's section 7 observes that the small number of distinct
control flows (the CF column of Table 3) "can be used to infer the
dynamic instruction count of one execution from another": two function
instances with the same control flow execute corresponding blocks the
same number of times, so profiling *one* representative per control
flow prices *every* instance in the space.  For a function with
thousands of instances but only dozens of control flows, this turns
"simulate everything" into a handful of executions.

:class:`DynamicCountOracle` implements exactly that: it lazily executes
one representative instance per distinct control flow (recording
per-block execution frequencies) and computes every other instance's
dynamic count as sum(frequency[i] * len(block_i)) over positionally
corresponding blocks.

Requires a space enumerated with ``keep_functions=True`` — or
materialized afterwards with
:func:`repro.core.dag.materialize_instances` — so that each node still
carries its function instance; a bare node raises
:class:`MissingFunctionError` up front instead of failing deep inside
a leaf walk.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.dag import SpaceDAG, SpaceNode
from repro.core.fingerprint import fingerprint_function
from repro.ir.function import Function, Program
from repro.vm import Interpreter


class MissingFunctionError(ValueError):
    """A space node carries no :class:`Function` instance.

    Raised before any leaf walk starts, with the fix spelled out:
    enumerate with ``keep_functions=True``, or rebuild the instances
    from the DAG with :func:`repro.core.dag.materialize_instances`.
    Subclasses :class:`ValueError` for backward compatibility with the
    untyped error this replaces.
    """


def _missing(dag_name: str, detail: str) -> MissingFunctionError:
    return MissingFunctionError(
        f"{dag_name}: {detail}; enumerate with keep_functions=True or "
        "rebuild the instances with "
        "repro.core.dag.materialize_instances(dag, root_func)"
    )


class DynamicCountOracle:
    """Price every instance in a space with one run per control flow.

    Parameters
    ----------
    program:
        The program the function belongs to (callees are needed).
    function_name:
        Which function the space enumerates.
    run:
        Callback ``run(interpreter) -> None`` that drives one
        execution (e.g. seeds globals and calls the entry point).
        The interpreter it receives has block profiling enabled.
    """

    def __init__(
        self,
        program: Program,
        function_name: str,
        run: Callable[[Interpreter], None],
        fuel: int = 50_000_000,
    ):
        self.program = program
        self.function_name = function_name
        self.run = run
        self.fuel = fuel
        #: cf_crc -> per-positional-block execution frequencies
        self._frequencies: Dict[int, List[int]] = {}
        self.executions = 0

    # ------------------------------------------------------------------

    def measure(self, func: Function) -> List[int]:
        """Execute once with *func* installed; per-block frequencies."""
        trial = Program()
        trial.globals = self.program.globals
        trial.functions = dict(self.program.functions)
        trial.functions[self.function_name] = func
        interpreter = Interpreter(trial, fuel=self.fuel, profile_blocks=True)
        self.run(interpreter)
        self.executions += 1
        return [
            interpreter.block_counts.get((self.function_name, block.label), 0)
            for block in func.blocks
        ]

    def block_frequencies(self, func: Function, cf_crc: Optional[int] = None) -> List[int]:
        """Per-positional-block execution frequencies of *func*.

        Executes at most once per distinct control flow: a previously
        measured representative with the same ``cf_crc`` prices this
        instance for free.  This is the one primitive every objective —
        dynamic count, weighted cycles, the energy proxy (see
        :mod:`repro.search.cost`) — is derived from, which is what
        makes multi-objective pricing cost *zero extra executions*.
        """
        if cf_crc is None:
            cf_crc = fingerprint_function(func).cf_crc
        frequencies = self._frequencies.get(cf_crc)
        if frequencies is None:
            frequencies = self.measure(func)
            self._frequencies[cf_crc] = frequencies
        return frequencies

    def count_for(self, func: Function, cf_crc: Optional[int] = None) -> int:
        """Dynamic instruction count of an arbitrary function instance."""
        frequencies = self.block_frequencies(func, cf_crc)
        return sum(
            count * len(block.insts)
            for count, block in zip(frequencies, func.blocks)
        )

    def dynamic_count(self, node: SpaceNode) -> int:
        """Dynamic instructions of *node*'s instance (inferred when a
        same-control-flow representative was already executed)."""
        func = node.function
        if func is None:
            raise _missing(
                self.function_name,
                f"node #{node.node_id} carries no function instance",
            )
        return self.count_for(func, node.cf_crc)

    def price_space(self, dag: SpaceDAG) -> Dict[int, int]:
        """Dynamic counts for every node; executes once per control flow.

        Raises :class:`MissingFunctionError` up front when *no* node
        carries an instance (the space was enumerated without
        ``keep_functions=True``); partially retained spaces — e.g. an
        aborted enumeration whose frontier is still materialized —
        price the nodes they have.
        """
        priced = {
            node.node_id: self.count_for(node.function, node.cf_crc)
            for node in dag.nodes.values()
            if node.function is not None
        }
        if not priced and dag.nodes:
            raise _missing(
                self.function_name, "no node carries a function instance"
            )
        return priced

    def best_node(self, dag: SpaceDAG) -> Tuple[SpaceNode, int]:
        """The leaf instance with the lowest dynamic instruction count."""
        all_leaves = dag.leaves()
        leaves = [node for node in all_leaves if node.function is not None]
        if not leaves:
            if all_leaves:
                raise _missing(
                    self.function_name,
                    f"none of the {len(all_leaves)} leaves carries a "
                    "function instance",
                )
            raise ValueError("space has no leaves to price")
        priced = [(self.dynamic_count(node), node) for node in leaves]
        count, node = min(priced, key=lambda pair: (pair[0], pair[1].node_id))
        return node, count
