"""Per-function search space statistics (paper Table 3)."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.loops import find_natural_loops
from repro.core.enumeration import (
    EnumerationConfig,
    EnumerationResult,
    enumerate_space,
)
from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump


class FunctionSpaceStats:
    """One row of Table 3."""

    __slots__ = (
        "name",
        "insts",
        "blocks",
        "branches",
        "loops",
        "fn_instances",
        "attempted_phases",
        "max_seq_len",
        "control_flows",
        "leaves",
        "codesize_max",
        "codesize_min",
        "completed",
        "elapsed",
        "result",
    )

    def __init__(self, name, insts, blocks, branches, loops, result: EnumerationResult):
        self.name = name
        self.insts = insts
        self.blocks = blocks
        self.branches = branches
        self.loops = loops
        self.result = result
        dag = result.dag
        self.fn_instances = len(dag)
        self.attempted_phases = result.attempted_phases
        self.max_seq_len = dag.depth()
        self.control_flows = dag.distinct_control_flows()
        self.leaves = len(dag.leaves())
        self.codesize_max = dag.max_codesize()
        self.codesize_min = dag.min_codesize()
        self.completed = result.completed
        self.elapsed = result.elapsed

    @property
    def codesize_diff_percent(self) -> Optional[float]:
        """Max-vs-min code size gap over leaf instances, in percent."""
        if not self.codesize_min:
            return None
        return 100.0 * (self.codesize_max - self.codesize_min) / self.codesize_min

    def row(self) -> List[str]:
        if not self.completed:
            return [
                self.name,
                str(self.insts),
                str(self.blocks),
                str(self.branches),
                str(self.loops),
            ] + ["N/A"] * 8
        diff = self.codesize_diff_percent
        return [
            self.name,
            str(self.insts),
            str(self.blocks),
            str(self.branches),
            str(self.loops),
            str(self.fn_instances),
            str(self.attempted_phases),
            str(self.max_seq_len),
            str(self.control_flows),
            str(self.leaves),
            str(self.codesize_max),
            str(self.codesize_min),
            f"{diff:.1f}" if diff is not None else "N/A",
        ]

    HEADER = [
        "Function",
        "Insts",
        "Blk",
        "Brch",
        "Loop",
        "FnInst",
        "Attempt",
        "Len",
        "CF",
        "Leaf",
        "Max",
        "Min",
        "%Diff",
    ]

    def __repr__(self):
        return f"<FunctionSpaceStats {self.name}: {self.fn_instances} instances>"


def static_function_facts(func: Function):
    """(insts, blocks, branches, loops) of the unoptimized function."""
    branches = sum(
        1
        for inst in func.instructions()
        if isinstance(inst, (Jump, CondBranch))
    )
    return (
        func.num_instructions(),
        len(func.blocks),
        branches,
        len(find_natural_loops(func)),
    )


def collect_function_stats(
    func: Function, config: Optional[EnumerationConfig] = None
) -> FunctionSpaceStats:
    """Enumerate *func*'s space and assemble its Table 3 row."""
    insts, blocks, branches, loops = static_function_facts(func)
    result = enumerate_space(func, config)
    return FunctionSpaceStats(func.name, insts, blocks, branches, loops, result)


def format_stats_table(rows: List[FunctionSpaceStats]) -> str:
    """Render rows in the layout of Table 3."""
    table = [FunctionSpaceStats.HEADER] + [row.row() for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(table[0]))]
    lines = []
    for line in table:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)
