"""Exhaustive enumeration of the optimization phase order space.

The algorithm of section 4 of the paper: view the space as levels of
function *instances* rather than phase sequences (Figure 1), and prune
with two techniques that lose no information:

1. **Dormant phase detection** (section 4.1): an attempted phase that
   makes no change ends that branch; an active phase is not re-attempted
   on its own result (no phase in this compiler can be successfully
   applied twice in a row, since every phase runs to its own fixpoint).
2. **Identical function instance detection** (section 4.2): instances
   are fingerprinted (instruction count, byte-sum, CRC-32 of the
   register/label-remapped RTLs) and merged, turning the tree into a
   DAG (Figure 4).

Section 4.3's search enhancements are also here: the unoptimized
function and every frontier instance stay in memory, so evaluating a
sequence applies exactly one phase to an already-materialized prefix
instead of replaying the whole sequence (prefix sharing).  Disable
``share_prefixes`` to measure the difference (the Figure 6 experiment).

The per-level budget mirrors the paper: enumeration is abandoned (and
the function reported as too big) when the number of optimization
sequences to apply at one level exceeds ``max_level_sequences``
(1,000,000 in the paper).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dag import SpaceDAG, SpaceNode
from repro.core.fingerprint import Fingerprint, fingerprint_function
from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.opt import PHASES, Phase, apply_phase, implicit_cleanup


class EnumerationConfig:
    """Tunable limits and switches for the space enumeration."""

    def __init__(
        self,
        max_level_sequences: int = 1_000_000,
        max_nodes: Optional[int] = None,
        max_levels: Optional[int] = None,
        time_limit: Optional[float] = None,
        exact: bool = False,
        share_prefixes: bool = True,
        keep_functions: bool = False,
        remap: bool = True,
        phases: Sequence[Phase] = PHASES,
        target: Optional[Target] = None,
    ):
        self.max_level_sequences = max_level_sequences
        self.max_nodes = max_nodes
        self.max_levels = max_levels
        self.time_limit = time_limit
        #: keep remapped text per instance and verify hash matches are
        #: truly identical (collision check); costs memory
        self.exact = exact
        #: keep frontier instances in memory (section 4.3); turning
        #: this off replays the whole phase sequence from the
        #: unoptimized function for every attempt (Figure 6 baseline)
        self.share_prefixes = share_prefixes
        #: retain every node's Function object (memory heavy)
        self.keep_functions = keep_functions
        #: remap registers/labels before hashing (section 4.2.1);
        #: turning this off is the remapping ablation
        self.remap = remap
        self.phases = tuple(phases)
        self.target = target or DEFAULT_TARGET


class EnumerationResult:
    """Outcome of enumerating one function's phase order space."""

    def __init__(
        self,
        dag: SpaceDAG,
        completed: bool,
        attempted_phases: int,
        phases_applied: int,
        elapsed: float,
        abort_reason: Optional[str] = None,
    ):
        self.dag = dag
        #: True when the space was fully enumerated (no budget hit)
        self.completed = completed
        #: phase attempts, dormant ones included (Table 3's "Attempt")
        self.attempted_phases = attempted_phases
        #: total phase executions, including sequence replays when
        #: prefix sharing is off (the Figure 6 metric)
        self.phases_applied = phases_applied
        self.elapsed = elapsed
        self.abort_reason = abort_reason

    def __repr__(self):
        status = "complete" if self.completed else f"aborted({self.abort_reason})"
        return (
            f"<EnumerationResult {self.dag.function_name}: {len(self.dag)} "
            f"instances, {self.attempted_phases} attempts, {status}>"
        )


class _Budget:
    def __init__(self, config: EnumerationConfig):
        self.config = config
        self.start = time.monotonic()
        self.reason: Optional[str] = None

    def exceeded_nodes(self, dag: SpaceDAG) -> bool:
        if self.config.max_nodes is not None and len(dag) > self.config.max_nodes:
            self.reason = "max_nodes"
            return True
        return False

    def exceeded_time(self) -> bool:
        if (
            self.config.time_limit is not None
            and time.monotonic() - self.start > self.config.time_limit
        ):
            self.reason = "time_limit"
            return True
        return False


def enumerate_space(
    func: Function, config: Optional[EnumerationConfig] = None
) -> EnumerationResult:
    """Exhaustively enumerate all distinct instances of *func*.

    The input function is not modified.
    """
    if config is None:
        config = EnumerationConfig()
    target = config.target
    budget = _Budget(config)

    root_func = func.clone()
    implicit_cleanup(root_func)  # canonical root instance

    dag = SpaceDAG(func.name)
    texts: Dict[object, str] = {}
    attempted = 0
    applied = 0

    root_fp = fingerprint_function(
        root_func, keep_text=config.exact, remap=config.remap
    )
    root_key = _node_key(root_fp, root_func)
    root = dag.add_node(root_key, 0, root_fp.num_insts, root_fp.cf_crc)
    root.function = root_func
    if config.exact:
        texts[root_key] = root_fp.text

    # Paths from the root, used to replay sequences when prefix sharing
    # is disabled.
    recipes: Dict[int, Tuple[str, ...]] = {root.node_id: ()}

    frontier: List[SpaceNode] = [root]
    level = 0
    completed = True

    while frontier:
        if config.max_levels is not None and level >= config.max_levels:
            completed = False
            budget.reason = "max_levels"
            break
        # The paper's per-level criterion: sequences to apply at this
        # level.
        sequences_this_level = sum(
            sum(
                1
                for phase in config.phases
                if phase.id not in _arrival_phases(node)
            )
            for node in frontier
        )
        if sequences_this_level > config.max_level_sequences:
            completed = False
            budget.reason = "max_level_sequences"
            break

        next_frontier: List[SpaceNode] = []
        for node in frontier:
            if budget.exceeded_time() or budget.exceeded_nodes(dag):
                completed = False
                break
            arrival = _arrival_phases(node)
            for phase in config.phases:
                if phase.id in arrival:
                    # An active phase is never attempted on its own
                    # result (it just ran to its fixpoint).
                    node.dormant.add(phase.id)
                    continue
                attempted += 1
                if config.share_prefixes:
                    candidate = node.function.clone()
                    applied += 1
                    active = apply_phase(candidate, phase, target)
                else:
                    candidate = root_func.clone()
                    for prior_id in recipes[node.node_id]:
                        applied += 1
                        apply_phase(candidate, _phase_by_id(config, prior_id), target)
                    applied += 1
                    active = apply_phase(candidate, phase, target)
                if not active:
                    node.dormant.add(phase.id)
                    continue
                fingerprint = fingerprint_function(
                    candidate, keep_text=config.exact, remap=config.remap
                )
                key = _node_key(fingerprint, candidate)
                existing = dag.lookup(key)
                if existing is not None:
                    if config.exact and texts.get(key) != fingerprint.text:
                        raise RuntimeError(
                            f"fingerprint collision in {func.name}: two "
                            "distinct instances share (count, byte-sum, CRC)"
                        )
                    dag.add_edge(node, phase.id, existing)
                    continue
                child = dag.add_node(
                    key, level + 1, fingerprint.num_insts, fingerprint.cf_crc
                )
                child.function = candidate
                if config.exact:
                    texts[key] = fingerprint.text
                recipes[child.node_id] = recipes[node.node_id] + (phase.id,)
                dag.add_edge(node, phase.id, child)
                next_frontier.append(child)
            node.expanded = True
            if not config.keep_functions:
                node.function = None
        else:
            frontier = next_frontier
            level += 1
            continue
        break  # inner budget break propagates

    elapsed = time.monotonic() - budget.start
    return EnumerationResult(
        dag, completed, attempted, applied, elapsed, budget.reason
    )


def _node_key(fingerprint: Fingerprint, func: Function):
    """Node identity: the paper's hash triple plus the legality flags
    (register assignment / s applied / k applied), which determine which
    phases are attemptable — see DESIGN.md."""
    return (
        fingerprint.key,
        func.reg_assigned,
        func.sel_applied,
        func.alloc_applied,
    )


def _arrival_phases(node: SpaceNode) -> set:
    """Phases that produced this node (labels of its in-edges)."""
    return {phase_id for (_parent, phase_id) in node.parents}


def _phase_by_id(config: EnumerationConfig, phase_id: str) -> Phase:
    for phase in config.phases:
        if phase.id == phase_id:
            return phase
    raise KeyError(phase_id)
