"""Exhaustive enumeration of the optimization phase order space.

The algorithm of section 4 of the paper: view the space as levels of
function *instances* rather than phase sequences (Figure 1), and prune
with two techniques that lose no information:

1. **Dormant phase detection** (section 4.1): an attempted phase that
   makes no change ends that branch; an active phase is not re-attempted
   on its own result (no phase in this compiler can be successfully
   applied twice in a row, since every phase runs to its own fixpoint).
2. **Identical function instance detection** (section 4.2): instances
   are fingerprinted (instruction count, byte-sum, CRC-32 of the
   register/label-remapped RTLs) and merged, turning the tree into a
   DAG (Figure 4).

Section 4.3's search enhancements are also here: the unoptimized
function and every frontier instance stay in memory, so evaluating a
sequence applies exactly one phase to an already-materialized prefix
instead of replaying the whole sequence (prefix sharing).  Disable
``share_prefixes`` to measure the difference (the Figure 6 experiment).

The per-level budget mirrors the paper: enumeration is abandoned (and
the function reported as too big) when the number of optimization
sequences to apply at one level exceeds ``max_level_sequences``
(1,000,000 in the paper).

Enumeration is the longest-running path in the system, so it is built
to survive failure (see ``docs/ROBUSTNESS.md``):

- phase applications can run through a
  :class:`~repro.robustness.guard.GuardedPhaseRunner` (``validate``,
  ``difftest``, ``phase_timeout``, ``fault_injector``) that quarantines
  bad applications instead of aborting the run;
- the budget is checked before *every phase attempt*, not once per
  frontier node, so a single slow phase cannot blow far past
  ``time_limit``;
- with ``checkpoint_path`` set, the full enumeration state is
  periodically persisted at instance boundaries and a later run with
  ``resume=True`` continues to a bit-identical DAG; SIGINT and SIGTERM
  both request a graceful stop through the same checkpoint (a second
  signal kills), so ^C and an orchestrator shutdown behave identically.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import checkpoint as ckpt
from repro.core.dag import SpaceDAG, SpaceNode
from repro.core.fingerprint import Fingerprint, fingerprint_function
from repro.core.memo import TransitionMemo
from repro.ir.flat import flat_fingerprint, from_flat, to_flat
from repro.ir.function import Function, Program
from repro.machine.target import DEFAULT_TARGET, Target
from repro.observability import tracer as _obs
from repro.opt import (
    PHASES,
    Phase,
    apply_phase,
    attempt_phase_on_clone,
    implicit_cleanup,
)
from repro.opt.flat import attempt_phase_on_flat

#: the stock phase instances, by id — the flat kernels are verified
#: against exactly these objects (see SpaceEnumerator.flat_engine)
_CANONICAL_PHASES = {phase.id: phase for phase in PHASES}
from repro.robustness.faults import FaultInjector
from repro.robustness.guard import (
    DifferentialTester,
    GuardedPhaseRunner,
    default_vectors,
)
from repro.robustness.quarantine import QuarantineLog


class EnumerationConfig:
    """Tunable limits and switches for the space enumeration."""

    def __init__(
        self,
        max_level_sequences: int = 1_000_000,
        max_nodes: Optional[int] = None,
        max_levels: Optional[int] = None,
        time_limit: Optional[float] = None,
        exact: bool = False,
        share_prefixes: bool = True,
        keep_functions: bool = False,
        remap: bool = True,
        phases: Sequence[Phase] = PHASES,
        target: Optional[Target] = None,
        validate: bool = False,
        difftest: bool = False,
        program: Optional[Program] = None,
        input_vectors: Optional[Sequence[Sequence[int]]] = None,
        phase_timeout: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: Optional[float] = 30.0,
        resume: bool = False,
        canonical_input: bool = False,
        memo: Optional[TransitionMemo] = None,
        sanitize: Optional[str] = None,
        engine: str = "flat",
        collapse: str = "syntactic",
    ):
        self.max_level_sequences = max_level_sequences
        self.max_nodes = max_nodes
        self.max_levels = max_levels
        self.time_limit = time_limit
        #: keep remapped text per instance and verify hash matches are
        #: truly identical (collision check); costs memory
        self.exact = exact
        #: keep frontier instances in memory (section 4.3); turning
        #: this off replays the whole phase sequence from the
        #: unoptimized function for every attempt (Figure 6 baseline)
        self.share_prefixes = share_prefixes
        #: retain every node's Function object (memory heavy)
        self.keep_functions = keep_functions
        #: remap registers/labels before hashing (section 4.2.1);
        #: turning this off is the remapping ablation
        self.remap = remap
        self.phases = tuple(phases)
        #: id -> phase, precomputed so sequence replays (and any other
        #: by-id lookup) avoid a linear scan per phase
        self.phase_index: Dict[str, Phase] = {
            phase.id: phase for phase in self.phases
        }
        self.target = target or DEFAULT_TARGET
        #: run the IR validator on every active phase's output
        self.validate = validate
        #: differential-test candidates in the VM against *program*
        self.difftest = difftest
        self.program = program
        #: argument vectors for the differential test (defaults to
        #: small deterministic vectors derived from the function arity)
        self.input_vectors = input_vectors
        #: per-phase wall-clock watchdog (SIGALRM, main thread only)
        self.phase_timeout = phase_timeout
        #: deterministic sabotage of phase applications (tests/chaos)
        self.fault_injector = fault_injector
        #: where to persist the enumeration state; None disables
        self.checkpoint_path = checkpoint_path
        #: seconds between periodic checkpoints (None = only on abort)
        self.checkpoint_interval = checkpoint_interval
        #: continue from ``checkpoint_path`` when it exists
        self.resume = resume
        #: the input function is already the canonical root instance
        #: (implicit cleanup applied — e.g. round-tripped from a
        #: checkpoint or a shard spec); skips the redundant cleanup
        #: pass on the root and on the resume probe, which matters when
        #: many small enumerations are spawned from serialized inputs
        self.canonical_input = canonical_input
        #: opt-in phase-transition memo table (see repro.core.memo).
        #: Shared across enumerations: memo keys are content-based
        #: node keys, so hits are sound across functions and runs.
        #: Only consulted on the unguarded prefix-sharing hot path;
        #: in exact mode entries are verified, never trusted.
        #: Deliberately excluded from ``signature()``: the memo changes
        #: how results are computed, not what they are.
        self.memo = memo
        #: static-analysis mode applied to every active phase output:
        #: None (off), "fast" (structural/machine/frame/call checks +
        #: phase contracts) or "full" (adds dataflow definedness and
        #: per-edge translation validation).  Like the guards above it
        #: changes how edges are vetted, not which space is explored,
        #: so it stays out of ``signature()``.
        if sanitize not in (None, "fast", "full"):
            raise ValueError(
                f"bad sanitize mode {sanitize!r}; expected 'fast' or 'full'"
            )
        self.sanitize = sanitize
        #: expansion engine: "flat" runs the unguarded prefix-sharing
        #: hot path on the flat IR (repro.ir.flat + repro.opt.flat);
        #: "object" is the legacy engine, retained for differential
        #: testing.  The two produce bit-identical DAGs, so — like the
        #: memo — the engine stays out of ``signature()``.  Guards,
        #: exact mode, the remapping ablation, and replay mode need
        #: instruction objects and silently use the object engine.
        if engine not in ("flat", "object"):
            raise ValueError(
                f"bad engine {engine!r}; expected 'flat' or 'object'"
            )
        self.engine = engine
        #: instance-merging mode: "syntactic" is the paper's remap+CRC
        #: dedup; "semantic" additionally collapses instances whose
        #: canonical symbolic summaries collide *and* are proved (or
        #: co-execution-tested) equivalent — never on the hash alone
        #: (see staticanalysis/canon.py and docs/COLLAPSE.md).  Unlike
        #: the engine, collapse changes which space is enumerated, so
        #: it participates in ``signature()``.
        if collapse not in ("syntactic", "semantic"):
            raise ValueError(
                f"bad collapse mode {collapse!r}; "
                "expected 'syntactic' or 'semantic'"
            )
        self.collapse = collapse

    def guards_enabled(self) -> bool:
        """Whether phase applications must run through the guard."""
        return (
            self.validate
            or self.phase_timeout is not None
            or self.fault_injector is not None
            or (self.difftest and self.program is not None)
            or self.sanitize is not None
        )

    def signature(self) -> Dict[str, object]:
        """The space-shaping settings a checkpoint must agree on.

        Budgets (``max_nodes``, ``time_limit``, ...) are run-scoped and
        deliberately excluded: an aborted run may be resumed with a
        larger budget.
        """
        return {
            "phases": "".join(phase.id for phase in self.phases),
            "remap": self.remap,
            "exact": self.exact,
            "collapse": self.collapse,
        }


class EnumerationResult:
    """Outcome of enumerating one function's phase order space."""

    def __init__(
        self,
        dag: SpaceDAG,
        completed: bool,
        attempted_phases: int,
        phases_applied: int,
        elapsed: float,
        abort_reason: Optional[str] = None,
        quarantine: Optional[QuarantineLog] = None,
        levels_completed: int = 0,
        resumed_from: Optional[str] = None,
        sanitize_stats: Optional[Dict[str, int]] = None,
        collapse_stats: Optional[Dict[str, int]] = None,
    ):
        self.dag = dag
        #: True when the space was fully enumerated (no budget hit)
        self.completed = completed
        #: phase attempts, dormant ones included (Table 3's "Attempt")
        self.attempted_phases = attempted_phases
        #: total phase executions, including sequence replays when
        #: prefix sharing is off (the Figure 6 metric)
        self.phases_applied = phases_applied
        self.elapsed = elapsed
        self.abort_reason = abort_reason
        #: phase applications the guard rejected (empty without guards)
        self.quarantine = quarantine if quarantine is not None else QuarantineLog()
        #: levels fully expanded before completion or abort
        self.levels_completed = levels_completed
        #: checkpoint path this run continued from, or None
        self.resumed_from = resumed_from
        #: static-analysis counters (edges checked, findings, transval
        #: verdicts); None when the run had no --sanitize
        self.sanitize_stats = sanitize_stats
        #: semantic-collapse counters (candidates, merged, splits);
        #: None when the run used syntactic collapse
        self.collapse_stats = collapse_stats

    def __repr__(self):
        status = "complete" if self.completed else f"aborted({self.abort_reason})"
        return (
            f"<EnumerationResult {self.dag.function_name}: {len(self.dag)} "
            f"instances, {self.attempted_phases} attempts, {status}>"
        )


class _Budget:
    def __init__(self, config: EnumerationConfig, consumed: float = 0.0):
        self.config = config
        self.start = time.monotonic()
        #: seconds spent by prior runs of a resumed enumeration
        self.consumed = consumed
        self.reason: Optional[str] = None

    def elapsed(self) -> float:
        return self.consumed + time.monotonic() - self.start

    def exceeded_nodes(self, dag: SpaceDAG) -> bool:
        if self.config.max_nodes is not None and len(dag) > self.config.max_nodes:
            self.reason = "max_nodes"
            return True
        return False

    def exceeded_time(self) -> bool:
        if (
            self.config.time_limit is not None
            and self.elapsed() > self.config.time_limit
        ):
            self.reason = "time_limit"
            return True
        return False


class SpaceEnumerator:
    """Stateful enumeration engine with checkpoint/resume.

    :func:`enumerate_space` is the one-shot front door; the class is
    public so callers can inspect state after a run (and so tests can
    drive checkpointing precisely).
    """

    def __init__(self, func: Function, config: Optional[EnumerationConfig] = None):
        self.config = config if config is not None else EnumerationConfig()
        self.input_func = func
        self.target = self.config.target
        self.guard = self._build_guard()
        self.quarantine = (
            self.guard.quarantine if self.guard is not None else QuarantineLog()
        )
        # The memo shortcut only replaces the plain prefix-sharing
        # transition; guarded runs must actually execute every phase
        # (the guard's whole point), and replay mode re-applies the
        # entire sequence anyway.
        self.memo = (
            self.config.memo
            if (
                self.config.memo is not None
                and self.config.share_prefixes
                and self.guard is None
            )
            else None
        )
        # The flat engine replaces only the same unguarded
        # prefix-sharing transition the memo does, and additionally
        # needs the streaming remapped fingerprint (no exact texts, no
        # remapping ablation).  Kernels dispatch on ``phase.id``, so a
        # custom phase object carrying a stock id (a test wrapper, an
        # instrumented phase) must also force the object engine — only
        # the canonical phase instances are known to match their
        # kernels.  Anything else falls back to objects.
        self.flat_engine = (
            self.config.engine == "flat"
            and self.config.share_prefixes
            and self.guard is None
            and self.config.remap
            and not self.config.exact
            and all(
                _CANONICAL_PHASES.get(phase.id) is phase
                for phase in self.config.phases
            )
        )
        # Semantic collapse (docs/COLLAPSE.md): merge decisions live in
        # a SemanticCollapser so the serial expander and the parallel
        # coordinator's replay merge share one decision procedure.  A
        # program context (config.program) enables the VM co-execution
        # fallback; without it unproven collisions simply stay split.
        self.collapser = None
        if self.config.collapse == "semantic":
            from repro.staticanalysis.canon import SemanticCollapser

            self.collapser = SemanticCollapser(
                program=self.config.program, entry=func.name
            )
        self.resumed_from: Optional[str] = None
        self._interrupted = False
        self._last_checkpoint = time.monotonic()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> EnumerationResult:
        config = self.config
        # Single-writer discipline: two runs checkpointing to the same
        # path would corrupt each other.  The lock (and its file
        # handle) is released on every exit path — completion, abort,
        # or exception — never left for the interpreter to collect.
        self.lock = (
            ckpt.CheckpointLock(config.checkpoint_path).acquire()
            if config.checkpoint_path is not None
            else None
        )
        try:
            return self._run_locked()
        finally:
            if self.lock is not None:
                self.lock.release()

    def _run_locked(self) -> EnumerationResult:
        config = self.config
        tracer = _obs.ACTIVE
        consumed = 0.0
        if (
            config.resume
            and config.checkpoint_path is not None
            and os.path.exists(config.checkpoint_path)
        ):
            consumed = self._restore(config.checkpoint_path)
            self.resumed_from = config.checkpoint_path
            if tracer is not None:
                tracer.emit(
                    "checkpoint_resume",
                    path=config.checkpoint_path,
                    function=self.input_func.name,
                    level=self.level,
                )
        else:
            self._initialize()
        if tracer is not None:
            tracer.emit(
                "enum_start",
                function=self.input_func.name,
                level=self.level,
                resumed=self.resumed_from is not None,
            )
            phase_snapshot = tracer.snapshot_phases()
            memo_hits0 = self.memo.hits if self.memo is not None else 0
            memo_misses0 = self.memo.misses if self.memo is not None else 0
        self.budget = _Budget(config, consumed=consumed)
        self._last_checkpoint = time.monotonic()

        previous_handlers = self._install_signals()
        try:
            self._loop()
        finally:
            for signum, previous in previous_handlers:
                signal.signal(signum, previous)

        elapsed = self.budget.elapsed()
        if config.checkpoint_path is not None:
            if self.completed:
                # The run is over; the resume artifact has no further use.
                try:
                    os.unlink(config.checkpoint_path)
                except OSError:
                    pass
            else:
                self._write_checkpoint()
        if not self.completed and not config.keep_functions:
            # An aborted run must not pin the frontier instances.
            for node in self.frontier:
                node.function = None
            for node in self.next_frontier:
                node.function = None
        if self.flat_engine and config.keep_functions:
            # Callers asking for retained functions expect instruction
            # objects, whatever engine expanded the space.
            for node in self.dag.nodes.values():
                if node.function is not None and not isinstance(
                    node.function, Function
                ):
                    node.function = from_flat(node.function)
        if tracer is not None:
            delta = tracer.phases_since(phase_snapshot)
            if delta:
                tracer.emit(
                    "phase_stats",
                    phases=delta,
                    function=self.input_func.name,
                )
            if self.memo is not None:
                tracer.emit(
                    "memo_stats",
                    hits=self.memo.hits - memo_hits0,
                    misses=self.memo.misses - memo_misses0,
                    entries=len(self.memo),
                    function=self.input_func.name,
                )
            if self.guard is not None and self.guard.sanitizer is not None:
                tracer.emit(
                    "sanitize_stats",
                    function=self.input_func.name,
                    mode=config.sanitize,
                    **self.guard.sanitizer.stats(),
                )
            if self.collapser is not None:
                tracer.emit(
                    "collapse_stats",
                    function=self.input_func.name,
                    **self.collapser.stats_fields(),
                )
            tracer.emit(
                "enum_done",
                function=self.input_func.name,
                instances=len(self.dag),
                completed=self.completed,
                levels=self.level,
                attempted=self.attempted,
                reason=self.abort_reason,
                wall=round(elapsed, 3),
            )
        return EnumerationResult(
            self.dag,
            self.completed,
            self.attempted,
            self.applied,
            elapsed,
            self.abort_reason,
            quarantine=self.quarantine,
            levels_completed=self.level,
            resumed_from=self.resumed_from,
            sanitize_stats=(
                self.guard.sanitizer.stats()
                if self.guard is not None and self.guard.sanitizer is not None
                else None
            ),
            collapse_stats=(
                self.collapser.stats_fields()
                if self.collapser is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Setup / restore
    # ------------------------------------------------------------------

    def _build_guard(self) -> Optional[GuardedPhaseRunner]:
        config = self.config
        if not config.guards_enabled():
            return None
        difftester = None
        if config.difftest and config.program is not None:
            vectors = config.input_vectors
            if vectors is None:
                vectors = default_vectors(self.input_func)
            difftester = DifferentialTester(
                config.program, self.input_func.name, vectors
            )
        sanitizer = None
        if config.sanitize is not None:
            from repro.staticanalysis.checker import EdgeChecker

            sanitizer = EdgeChecker(
                mode=config.sanitize,
                target=config.target,
                program=config.program,
                entry=self.input_func.name,
            )
        return GuardedPhaseRunner(
            target=config.target,
            validate=config.validate,
            difftest=difftester,
            phase_timeout=config.phase_timeout,
            fault_injector=config.fault_injector,
            sanitizer=sanitizer,
        )

    def _initialize(self) -> None:
        config = self.config
        root_func = self.input_func.clone()
        if not config.canonical_input:
            implicit_cleanup(root_func)  # canonical root instance
        self.root_func = root_func
        self.dag = SpaceDAG(self.input_func.name)
        self.texts: Dict[object, str] = {}
        self.attempted = 0
        self.applied = 0
        root_fp = fingerprint_function(
            root_func, keep_text=config.exact, remap=config.remap
        )
        root_key = _node_key(root_fp, root_func)
        root = self.dag.add_node(root_key, 0, root_fp.num_insts, root_fp.cf_crc)
        root.function = to_flat(root_func) if self.flat_engine else root_func
        if config.exact:
            self.texts[root_key] = root_fp.text
        if self.collapser is not None:
            self.collapser.register(
                self.collapser.digest_of(root_func), root.node_id, root_func
            )
        # Paths from the root, used to replay sequences when prefix
        # sharing is disabled.
        self.recipes: Dict[int, Tuple[str, ...]] = {root.node_id: ()}
        self.frontier: List[SpaceNode] = [root]
        self.frontier_index = 0
        self.next_frontier: List[SpaceNode] = []
        self.level = 0
        self.completed = True
        self.abort_reason: Optional[str] = None

    def _restore(self, path: str) -> float:
        """Load a checkpoint; returns the seconds already consumed.

        Every failure mode — unreadable file, integrity/version
        mismatch, or a payload that will not rebuild — surfaces as a
        :class:`~repro.core.checkpoint.CheckpointError` (CKP001), never
        a raw KeyError/ValueError from half-restored state.
        """
        config = self.config
        state = ckpt.load_checkpoint(path, require=ckpt.ENUMERATION_KEYS)
        try:
            return self._restore_state(path, state)
        except ckpt.CheckpointError:
            raise
        except (KeyError, IndexError, TypeError, ValueError, AttributeError) as error:
            raise ckpt.CheckpointError(
                f"checkpoint {path} is structurally invalid: "
                f"{type(error).__name__}: {error}"
            ) from error

    def _restore_state(self, path: str, state: Dict[str, object]) -> float:
        config = self.config
        if state["function_name"] != self.input_func.name:
            raise ckpt.CheckpointError(
                f"checkpoint {path} is for function "
                f"{state['function_name']!r}, not {self.input_func.name!r}"
            )
        if state["config"] != config.signature():
            raise ckpt.CheckpointError(
                f"checkpoint {path} was written with different enumeration "
                f"settings ({state['config']} != {config.signature()})"
            )
        self.dag = ckpt.dag_from_dict(state["function_name"], state["dag"])
        self.root_func = ckpt.function_from_dict(state["root_function"])
        # The input function must be the one the checkpoint was made
        # from: its canonical root instance must fingerprint to the
        # checkpointed root key.
        probe = self.input_func.clone()
        if not config.canonical_input:
            implicit_cleanup(probe)
        probe_fp = fingerprint_function(probe, remap=config.remap)
        if _node_key(probe_fp, probe) != self.dag.root.key:
            raise ckpt.CheckpointError(
                f"checkpoint {path} was written for a different version of "
                f"{self.input_func.name!r} (root fingerprint mismatch)"
            )
        self.frontier = [self.dag.nodes[i] for i in state["frontier"]]
        self.frontier_index = state["frontier_index"]
        self.next_frontier = [self.dag.nodes[i] for i in state["next_frontier"]]
        for node_id, data in state["functions"].items():
            restored = ckpt.function_from_dict(data)
            if self.flat_engine:
                restored = to_flat(restored)
            self.dag.nodes[int(node_id)].function = restored
        self.recipes = {
            int(node_id): tuple(recipe)
            for node_id, recipe in state["recipes"].items()
        }
        self.texts = {
            ckpt.key_from_json(key): text for key, text in state["texts"]
        }
        self.attempted = state["attempted"]
        self.applied = state["applied"]
        self.level = state["level"]
        if self.collapser is not None:
            # The signature check above guarantees the checkpoint was
            # written in semantic mode, so the collapse state exists.
            self.collapser.restore(state["collapse"])
        self.completed = True
        self.abort_reason = None
        restored_log = QuarantineLog.from_dicts(state["quarantine"])
        self.quarantine.records[:0] = restored_log.records
        return state["elapsed"]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        config = self.config
        while True:
            at_level_start = self.frontier_index == 0 and not self.next_frontier
            if at_level_start:
                if not self.frontier:
                    return  # space fully enumerated
                if (
                    config.max_levels is not None
                    and self.level >= config.max_levels
                ):
                    self._abort("max_levels")
                    return
                # The paper's per-level criterion: sequences to apply
                # at this level.
                # Every in-edge label is one of config.phases, so the
                # per-node count is just the complement of its arrivals.
                num_phases = len(config.phases)
                sequences_this_level = sum(
                    num_phases - len(_arrival_phases(node))
                    for node in self.frontier
                )
                if sequences_this_level > config.max_level_sequences:
                    self._abort("max_level_sequences")
                    return
            while self.frontier_index < len(self.frontier):
                if self._interrupted:
                    self._abort("interrupted")
                    return
                if self.budget.exceeded_time() or self.budget.exceeded_nodes(
                    self.dag
                ):
                    self._abort(self.budget.reason)
                    return
                node = self.frontier[self.frontier_index]
                if not self._expand(node):
                    self._abort(self.budget.reason or "interrupted")
                    return
                self.frontier_index += 1
                self._maybe_checkpoint()
            self.frontier = self.next_frontier
            self.next_frontier = []
            self.frontier_index = 0
            self.level += 1
            tracer = _obs.ACTIVE
            if tracer is not None:
                tracer.emit(
                    "level_done",
                    function=self.input_func.name,
                    level=self.level - 1,
                    frontier=len(self.frontier),
                    instances=len(self.dag),
                )

    def _abort(self, reason: Optional[str]) -> None:
        self.completed = False
        self.abort_reason = reason

    def _expand(self, node: SpaceNode) -> bool:
        """Expand one frontier node; False = budget/interrupt mid-node.

        A mid-node stop rolls the node back to its pre-expansion state
        so the DAG (and any checkpoint written from it) sits at a clean
        instance boundary and a resumed run re-expands the node from
        scratch — keeping resumed enumerations bit-identical.
        """
        config = self.config
        tracer = _obs.ACTIVE
        arrival = _arrival_phases(node)
        dormant_before = set(node.dormant)
        attempted_before = self.attempted
        applied_before = self.applied
        next_frontier_len = len(self.next_frontier)
        added_nodes: List[SpaceNode] = []
        added_edges: List[Tuple[SpaceNode, str, SpaceNode]] = []
        # Semantic-collapse scratch, undone on a mid-node rollback
        # exactly like the DAG mutations below.
        added_aliases: List[object] = []
        added_digests: List[Tuple[str, int]] = []
        collapse_stats_before = (
            dict(self.collapser.stats) if self.collapser is not None else None
        )
        # Per-node scratch for the flat engine's fallback phases: the
        # object view of this node is materialized at most once.
        view_cache: Dict[str, Function] = {}

        def rollback() -> None:
            for parent, phase_id, child in reversed(added_edges):
                parent.active.pop(phase_id, None)
                entry = (parent.node_id, phase_id)
                for i in range(len(child.parents) - 1, -1, -1):
                    if child.parents[i] == entry:
                        del child.parents[i]
                        break
            for child in reversed(added_nodes):
                del self.dag.nodes[child.node_id]
                self.dag.by_key.pop(child.key, None)
                self.recipes.pop(child.node_id, None)
                if config.exact:
                    self.texts.pop(child.key, None)
            for key in reversed(added_aliases):
                self.dag.aliases.pop(key, None)
                if config.exact:
                    self.texts.pop(key, None)
            if self.collapser is not None:
                for digest, node_id in reversed(added_digests):
                    self.collapser.forget(digest, node_id)
                self.collapser.stats = dict(collapse_stats_before)
            del self.next_frontier[next_frontier_len:]
            node.dormant = dormant_before
            self.attempted = attempted_before
            self.applied = applied_before

        def collapse_target(candidate_func: Function):
            """(digest, representative-or-None) for a fresh instance."""
            return self.collapser.merge_target(self.dag, node, candidate_func)

        def alias_guarded(key, existing):
            """Veto a syntactic hit that resolved through an alias onto
            this node's own root path: the edge would close a cycle.
            The caller falls through to the miss path, where the
            collapser makes (and counts) the split decision."""
            if (
                existing is None
                or self.collapser is None
                or key in self.dag.by_key
            ):
                return existing
            from repro.staticanalysis.canon import _reaches

            if existing.node_id == node.node_id or _reaches(
                self.dag, existing.node_id, node.node_id
            ):
                return None
            return existing

        def merge(key, phase_id: str, rep: SpaceNode, text) -> None:
            self.dag.add_alias(key, rep.node_id)
            added_aliases.append(key)
            if config.exact:
                # Later syntactic rediscoveries of this instance resolve
                # through the alias; the collision check needs its text.
                self.texts[key] = text
            self.dag.add_edge(node, phase_id, rep)
            added_edges.append((node, phase_id, rep))

        for phase in config.phases:
            if phase.id in arrival:
                # An active phase is never attempted on its own result
                # (it just ran to its fixpoint).
                node.dormant.add(phase.id)
                continue
            # Per-attempt budget check: one slow phase must not blow
            # far past time_limit, and an interrupt must not wait for
            # the whole node.
            if self._interrupted or self.budget.exceeded_time():
                rollback()
                return False
            self.attempted += 1
            entry = (
                self.memo.lookup(node.key, phase.id)
                if self.memo is not None
                else None
            )
            if entry is not None and not config.exact:
                # Memo fast path: the transition outcome is a recorded
                # content-keyed fact — skip clone + apply + fingerprint.
                # Counters advance exactly as the cold path would.
                self.applied += 1
                if tracer is not None:
                    tracer.phase_outcome(
                        phase.id, "dormant" if entry.dormant else "active"
                    )
                if entry.dormant:
                    node.dormant.add(phase.id)
                    continue
                key = entry.key
                existing = alias_guarded(key, self.dag.lookup(key))
                if existing is not None:
                    self.dag.add_edge(node, phase.id, existing)
                    added_edges.append((node, phase.id, existing))
                    continue
                materialized = TransitionMemo.materialize(entry)
                digest = None
                if self.collapser is not None:
                    # Warm memo runs start with an empty alias table,
                    # so the fast path must make its own merge decision
                    # — in the same order the cold path would.
                    digest, rep = collapse_target(materialized)
                    if rep is not None:
                        merge(key, phase.id, rep, None)
                        continue
                child = self.dag.add_node(
                    key, self.level + 1, entry.num_insts, entry.cf_crc
                )
                child.function = (
                    to_flat(materialized) if self.flat_engine else materialized
                )
                if self.collapser is not None and self.collapser.register(
                    digest, child.node_id, materialized
                ):
                    added_digests.append((digest, child.node_id))
                self.recipes[child.node_id] = self.recipes[node.node_id] + (
                    phase.id,
                )
                self.dag.add_edge(node, phase.id, child)
                added_nodes.append(child)
                added_edges.append((node, phase.id, child))
                self.next_frontier.append(child)
                continue
            if config.share_prefixes:
                self.applied += 1
                if self.guard is None:
                    # Single-clone fast path (see opt/base.py and
                    # opt/flat): at most one clone per attempted edge,
                    # none when the phase is illegal in the current
                    # state.
                    if self.flat_engine:
                        candidate = attempt_phase_on_flat(
                            node.function, phase, self.target, view_cache
                        )
                    else:
                        candidate = attempt_phase_on_clone(
                            node.function, phase, self.target
                        )
                    active = candidate is not None
                else:
                    candidate = node.function.clone()
                    active = self._apply(candidate, phase, node)
                    if tracer is not None:
                        tracer.phase_outcome(
                            phase.id, "active" if active else "dormant"
                        )
            else:
                candidate = self.root_func.clone()
                for prior_id in self.recipes[node.node_id]:
                    self.applied += 1
                    apply_phase(
                        candidate, config.phase_index[prior_id], self.target
                    )
                self.applied += 1
                active = self._apply(candidate, phase, node)
                if tracer is not None:
                    tracer.phase_outcome(
                        phase.id, "active" if active else "dormant"
                    )
            if not active:
                if entry is not None and not entry.dormant:
                    raise RuntimeError(
                        f"{self.input_func.name}: memo claims phase "
                        f"{phase.id} is active on node#{node.node_id} but "
                        "the real application was dormant (exact-mode "
                        "memo verification)"
                    )
                if self.memo is not None:
                    self.memo.record_dormant(node.key, phase.id)
                node.dormant.add(phase.id)
                continue
            if self.flat_engine:
                fingerprint = flat_fingerprint(candidate)
            else:
                fingerprint = fingerprint_function(
                    candidate, keep_text=config.exact, remap=config.remap
                )
            key = _node_key(fingerprint, candidate)
            if entry is not None and (entry.dormant or entry.key != key):
                raise RuntimeError(
                    f"{self.input_func.name}: memo entry for phase "
                    f"{phase.id} on node#{node.node_id} diverges from the "
                    "real application (exact-mode memo verification)"
                )
            if self.memo is not None and entry is None:
                self.memo.record_active(
                    node.key,
                    phase.id,
                    key,
                    fingerprint.num_insts,
                    fingerprint.cf_crc,
                    from_flat(candidate) if self.flat_engine else candidate,
                )
            existing = self.dag.lookup(key)
            if existing is not None:
                if config.exact and self.texts.get(key) != fingerprint.text:
                    raise RuntimeError(
                        f"fingerprint collision in {self.input_func.name}: two "
                        "distinct instances share (count, byte-sum, CRC)"
                    )
                existing = alias_guarded(key, existing)
            if existing is not None:
                self.dag.add_edge(node, phase.id, existing)
                added_edges.append((node, phase.id, existing))
                continue
            digest = None
            candidate_obj = None
            if self.collapser is not None:
                candidate_obj = (
                    from_flat(candidate) if self.flat_engine else candidate
                )
                digest, rep = collapse_target(candidate_obj)
                if rep is not None:
                    merge(key, phase.id, rep, fingerprint.text)
                    continue
            child = self.dag.add_node(
                key, self.level + 1, fingerprint.num_insts, fingerprint.cf_crc
            )
            child.function = candidate
            if self.collapser is not None and self.collapser.register(
                digest, child.node_id, candidate_obj
            ):
                added_digests.append((digest, child.node_id))
            if config.exact:
                self.texts[key] = fingerprint.text
            self.recipes[child.node_id] = self.recipes[node.node_id] + (phase.id,)
            self.dag.add_edge(node, phase.id, child)
            added_nodes.append(child)
            added_edges.append((node, phase.id, child))
            self.next_frontier.append(child)
        node.expanded = True
        if not config.keep_functions:
            node.function = None
        return True

    def _apply(self, candidate: Function, phase: Phase, node: SpaceNode) -> bool:
        if self.guard is not None:
            return self.guard.apply(
                candidate,
                phase,
                self.target,
                node_key=f"node#{node.node_id}",
                level=node.level,
            )
        return apply_phase(candidate, phase, self.target)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        config = self.config
        if config.checkpoint_path is None or config.checkpoint_interval is None:
            return
        now = time.monotonic()
        if now - self._last_checkpoint >= config.checkpoint_interval:
            self._write_checkpoint()
            self._last_checkpoint = now

    def _write_checkpoint(self) -> None:
        ckpt.save_checkpoint(self.config.checkpoint_path, self._state())
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.emit(
                "checkpoint_write",
                path=self.config.checkpoint_path,
                function=self.input_func.name,
                level=self.level,
            )

    def _state(self) -> Dict[str, object]:
        config = self.config
        pending = self.frontier[self.frontier_index :] + self.next_frontier
        functions: Dict[str, object] = {}
        if config.share_prefixes:
            for node in pending:
                if node.function is not None:
                    func = node.function
                    if not isinstance(func, Function):
                        func = from_flat(func)  # flat engine frontier
                    functions[str(node.node_id)] = ckpt.function_to_dict(func)
        recipes = {
            str(node.node_id): "".join(self.recipes.get(node.node_id, ()))
            for node in pending
        }
        state: Dict[str, object] = {
            "function_name": self.input_func.name,
            "config": config.signature(),
            "completed": self.completed,
            "level": self.level,
            "frontier": [node.node_id for node in self.frontier],
            "frontier_index": self.frontier_index,
            "next_frontier": [node.node_id for node in self.next_frontier],
            "attempted": self.attempted,
            "applied": self.applied,
            "elapsed": self.budget.elapsed(),
            "dag": ckpt.dag_to_dict(self.dag),
            "root_function": ckpt.function_to_dict(self.root_func),
            "functions": functions,
            "recipes": recipes,
            "texts": [
                [ckpt.key_to_json(key), text] for key, text in self.texts.items()
            ],
            "quarantine": self.quarantine.to_dicts(),
        }
        if self.collapser is not None:
            state["collapse"] = self.collapser.state_dict()
        return state

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    #: signals traded for a graceful stop; SIGTERM is what container
    #: orchestrators send on shutdown, and it must checkpoint exactly
    #: like ^C does (the service's drain path depends on this)
    GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def _install_signals(self):
        """Trade SIGINT/SIGTERM for a graceful stop when checkpointing
        is on.

        The first signal sets a flag the loop observes at the next
        phase attempt (writing a final checkpoint on the way out); a
        second one raises KeyboardInterrupt as usual.  Handlers can
        only be installed on the main thread.
        """
        if (
            self.config.checkpoint_path is None
            or threading.current_thread() is not threading.main_thread()
        ):
            return []

        def _handler(signum, frame):
            if self._interrupted:
                raise KeyboardInterrupt
            self._interrupted = True

        previous = []
        for signum in self.GRACEFUL_SIGNALS:
            previous.append((signum, signal.signal(signum, _handler)))
        return previous


def enumerate_space(
    func: Function, config: Optional[EnumerationConfig] = None
) -> EnumerationResult:
    """Exhaustively enumerate all distinct instances of *func*.

    The input function is not modified.
    """
    return SpaceEnumerator(func, config).run()


def _node_key(fingerprint: Fingerprint, func: Function):
    """Node identity: the paper's hash triple plus the legality flags
    (register assignment / s applied / k applied), which determine which
    phases are attemptable — see DESIGN.md."""
    return (
        fingerprint.key,
        func.reg_assigned,
        func.sel_applied,
        func.alloc_applied,
    )


def _arrival_phases(node: SpaceNode) -> set:
    """Phases that produced this node (labels of its in-edges)."""
    return {phase_id for (_parent, phase_id) in node.parents}


def _phase_by_id(config: EnumerationConfig, phase_id: str) -> Phase:
    return config.phase_index[phase_id]
