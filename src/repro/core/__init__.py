"""The paper's contribution: exhaustive phase-order space exploration.

- :mod:`repro.core.crc` / :mod:`repro.core.fingerprint` — efficient
  detection of identical function instances (section 4.2.1);
- :mod:`repro.core.enumeration` — the space enumeration algorithm with
  dormant-phase and identical-instance pruning (section 4);
- :mod:`repro.core.dag` — the weighted space DAG (Figure 7);
- :mod:`repro.core.interactions` — enabling / disabling / independence
  probabilities (section 5, Tables 4-6);
- :mod:`repro.core.batch` / :mod:`repro.core.probabilistic` — the
  conventional and probabilistic batch compilers (section 6, Figure 8);
- :mod:`repro.core.stats` — per-function search statistics (Table 3).
"""

from repro.core.crc import crc32
from repro.core.fingerprint import Fingerprint, fingerprint_function
from repro.core.enumeration import (
    EnumerationConfig,
    EnumerationResult,
    enumerate_space,
)
from repro.core.dag import SpaceDAG, SpaceNode
from repro.core.interactions import InteractionAnalysis, analyze_interactions
from repro.core.batch import BatchCompiler, BATCH_ORDER, CompilationReport
from repro.core.probabilistic import ProbabilisticCompiler
from repro.core.stats import FunctionSpaceStats, collect_function_stats

__all__ = [
    "crc32",
    "Fingerprint",
    "fingerprint_function",
    "EnumerationConfig",
    "EnumerationResult",
    "enumerate_space",
    "SpaceDAG",
    "SpaceNode",
    "InteractionAnalysis",
    "analyze_interactions",
    "BatchCompiler",
    "BATCH_ORDER",
    "CompilationReport",
    "ProbabilisticCompiler",
    "FunctionSpaceStats",
    "collect_function_stats",
]
