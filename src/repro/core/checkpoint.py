"""Checkpoint/resume for the exhaustive space enumeration.

A checkpoint is a single JSON document capturing everything the
enumerator needs to continue a run bit-identically: the space DAG, the
current frontier (with its in-memory function instances serialized as
printed RTL), the replay recipes, the budget counters, and the
quarantine log.  Checkpoints are written atomically (temp file +
``os.replace``) at function-instance boundaries, so a file on disk is
always internally consistent no matter when the process died.

File layout (all keys always present)::

    {
      "version":        2,
      "digest":         "sha256...",   // integrity hash of the payload
      "function_name":  "...",
      "config":         {"phases": "bcdg...", "remap": true, "exact": false},
      "completed":      false,
      "level":          3,              // current (0-based) level
      "frontier":       [12, 17, ...], // node ids awaiting expansion
      "frontier_index": 2,             // next frontier slot to expand
      "next_frontier":  [31, ...],     // children found so far this level
      "attempted":      1234,          // Table 3 "Attempt" so far
      "applied":        1400,          // phase executions so far
      "elapsed":        12.5,          // seconds consumed so far
      "dag":            {"root_id": 0, "nodes": [...]},
      "root_function":  {...},         // serialized Function
      "functions":      {"17": {...}}, // frontier instances (RTL text)
      "recipes":        {"17": "scb"}, // root phase paths (replay mode)
      "texts":          [[key, text]], // exact-mode collision texts
      "quarantine":     [...]          // QuarantineRecord dicts
    }

Node entries hold ``key`` (the fingerprint triple plus the legality
flags), ``level``, ``num_insts``, ``cf_crc``, ``active`` (phase → child
id), ``dormant``, ``expanded``, and ``parents``.

Serialized functions round-trip through the RTL printer/parser
(:func:`repro.ir.printer.format_function` /
:func:`repro.ir.parser.parse_function`) plus the metadata the printed
form does not carry: frame slots, legality flags, and counters.  The
fingerprint hashes only the printed form, so a round-tripped function
fingerprints identically — which is what makes resumed enumerations
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.core.dag import SpaceDAG, SpaceNode
from repro.ir.function import Function, LocalSlot
from repro.ir.parser import RTLParseError, parse_function
from repro.ir.printer import format_function

#: version 2 added the payload digest
CHECKPOINT_VERSION = 2

#: the diagnostic code every checkpoint/store load failure carries, so
#: operators (and the service's error responses) can grep one token
#: across logs, journals, and exception text
DIAGNOSTIC = "CKP001"

#: keys an enumeration checkpoint must contain (see the layout above);
#: ``version`` and ``digest`` are checked separately by the loader
ENUMERATION_KEYS = (
    "function_name",
    "config",
    "completed",
    "level",
    "frontier",
    "frontier_index",
    "next_frontier",
    "attempted",
    "applied",
    "elapsed",
    "dag",
    "root_function",
    "functions",
    "recipes",
    "texts",
    "quarantine",
)


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or incompatible.

    Every instance carries the ``CKP001`` diagnostic in its message
    (and as ``.code``): persisted-state corruption is one failure
    class no matter which loader tripped over it.
    """

    code = DIAGNOSTIC

    def __init__(self, message: str):
        if not message.startswith(DIAGNOSTIC):
            message = f"{DIAGNOSTIC}: {message}"
        super().__init__(message)


# ----------------------------------------------------------------------
# Function (de)serialization
# ----------------------------------------------------------------------


def function_to_dict(func: Function) -> Dict[str, object]:
    """Serialize *func* as printed RTL plus its metadata."""
    return {
        "name": func.name,
        "returns_value": func.returns_value,
        "params": list(func.params),
        "rtl": format_function(func),
        "frame": [
            {
                "name": slot.name,
                "offset": slot.offset,
                "words": slot.words,
                "typ": slot.typ,
                "is_array": slot.is_array,
                "is_param": slot.is_param,
            }
            for slot in func.frame.values()
        ],
        "frame_size": func.frame_size,
        "next_pseudo": func.next_pseudo,
        "next_label": func.next_label,
        "reg_assigned": func.reg_assigned,
        "sel_applied": func.sel_applied,
        "alloc_applied": func.alloc_applied,
        "unrolled": sorted(func.unrolled),
        "mem_facts": func.mem_facts,
    }


def function_from_dict(data: Dict[str, object]) -> Function:
    """Rebuild a function serialized by :func:`function_to_dict`.

    Raises :class:`CheckpointError` when the serialized RTL does not
    parse — damaged function text is persisted-state corruption, the
    same failure class as a bad digest.
    """
    try:
        func = parse_function(data["rtl"], data["name"])
    except RTLParseError as error:
        raise CheckpointError(
            f"serialized function {data.get('name')!r} does not parse: "
            f"{error}"
        ) from error
    func.returns_value = data["returns_value"]
    func.params = list(data["params"])
    # Frame slot insertion order is semantic (register allocation walks
    # frame.values()), so rebuild the dict in the serialized order.
    func.frame = {}
    for slot in data["frame"]:
        func.frame[slot["name"]] = LocalSlot(
            slot["name"],
            slot["offset"],
            slot["words"],
            slot["typ"],
            slot["is_array"],
            slot["is_param"],
        )
    func.frame_size = data["frame_size"]
    func.next_pseudo = data["next_pseudo"]
    func.next_label = data["next_label"]
    func.reg_assigned = data["reg_assigned"]
    func.sel_applied = data["sel_applied"]
    func.alloc_applied = data["alloc_applied"]
    func.unrolled = set(data["unrolled"])
    # Older checkpoints predate source-level memory facts.
    func.mem_facts = data.get("mem_facts")
    return func


# ----------------------------------------------------------------------
# Node keys
# ----------------------------------------------------------------------
#
# Node keys are nested tuples of ints and bools; JSON turns tuples into
# lists, so restoring must tuple-ify recursively before dict lookups.


def key_to_json(key):
    if isinstance(key, tuple):
        return [key_to_json(part) for part in key]
    return key


def key_from_json(data):
    if isinstance(data, list):
        return tuple(key_from_json(part) for part in data)
    return data


# ----------------------------------------------------------------------
# DAG (de)serialization
# ----------------------------------------------------------------------


def dag_to_dict(dag: SpaceDAG) -> Dict[str, object]:
    nodes: List[Dict[str, object]] = []
    # Node ids are assigned densely in creation order; serialize in
    # that order so restoration reproduces identical ids.
    for node_id in range(len(dag.nodes)):
        node = dag.nodes[node_id]
        nodes.append(
            {
                "key": key_to_json(node.key),
                "level": node.level,
                "num_insts": node.num_insts,
                "cf_crc": node.cf_crc,
                "active": dict(node.active),
                "dormant": sorted(node.dormant),
                "expanded": node.expanded,
                "parents": [[pid, phase] for (pid, phase) in node.parents],
            }
        )
    data: Dict[str, object] = {"root_id": dag.root_id, "nodes": nodes}
    if dag.aliases:
        # Only written by semantic collapse — syntactic checkpoints
        # stay byte-identical to previous versions.
        data["aliases"] = [
            [key_to_json(key), node_id]
            for key, node_id in dag.aliases.items()
        ]
    return data


def dag_from_dict(function_name: str, data: Dict[str, object]) -> SpaceDAG:
    dag = SpaceDAG(function_name)
    for node_id, entry in enumerate(data["nodes"]):
        node = SpaceNode(
            node_id,
            key_from_json(entry["key"]),
            entry["level"],
            entry["num_insts"],
            entry["cf_crc"],
        )
        node.active = {
            phase: child for phase, child in entry["active"].items()
        }
        node.dormant = set(entry["dormant"])
        node.expanded = entry["expanded"]
        node.parents = [(pid, phase) for pid, phase in entry["parents"]]
        dag.nodes[node_id] = node
        dag.by_key[node.key] = node_id
    for key, node_id in data.get("aliases", []):
        dag.aliases[key_from_json(key)] = node_id
    dag.root_id = data["root_id"]
    return dag


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------


class CheckpointLock:
    """Advisory single-writer lock guarding a checkpoint path.

    Two enumerations resuming from the same checkpoint would silently
    corrupt each other's progress (last atomic write wins); the lock
    turns that into an immediate error.  Implemented as an ``O_EXCL``
    pid file next to the checkpoint: portable, NFS-tolerant enough for
    this use, and inspectable.  A lock whose owning pid no longer
    exists (the process crashed before releasing) is stolen.
    """

    def __init__(self, path: str):
        self.lock_path = path + ".lock"
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "CheckpointLock":
        while self._fd is None:
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                owner = self._owner_pid()
                if owner is not None and self._pid_alive(owner):
                    raise CheckpointError(
                        f"checkpoint is locked by running process {owner} "
                        f"({self.lock_path})"
                    )
                # Crashed owner: steal the stale lock and retry (another
                # stealer may beat us to the unlink; the loop handles it).
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    pass
                continue
            os.write(fd, f"{os.getpid()}\n".encode())
            self._fd = fd
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        os.close(self._fd)
        self._fd = None
        try:
            os.unlink(self.lock_path)
        except OSError:
            pass

    def _owner_pid(self) -> Optional[int]:
        try:
            with open(self.lock_path) as handle:
                return int(handle.read().strip())
        except (OSError, ValueError):
            return None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        return True

    def __enter__(self) -> "CheckpointLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


def _payload_digest(state: Dict[str, object]) -> str:
    """Integrity hash of a checkpoint payload (digest key excluded).

    Canonical JSON (sorted keys) so the digest is independent of dict
    insertion order; sha256 because corruption detection, not crypto,
    is the goal — a truncated write, a flipped bit, or a hand-edited
    file must not resume into a silently wrong enumeration.
    """
    return hashlib.sha256(
        json.dumps(state, sort_keys=True).encode()
    ).hexdigest()


def save_checkpoint(path: str, state: Dict[str, object]) -> None:
    """Atomically write *state* as JSON to *path* (version + digest
    stamped)."""
    state = dict(state)
    state["version"] = CHECKPOINT_VERSION
    state["digest"] = _payload_digest(state)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(state, handle)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: str, require: Sequence[str] = ()
) -> Dict[str, object]:
    """Read and verify a checkpoint written by :func:`save_checkpoint`.

    Verification order: readable JSON, then version (an incompatible
    layout gets the version message, not a digest complaint), then the
    payload digest, then any *require*\\ d keys.  Every failure raises
    :class:`CheckpointError` with the ``CKP001`` diagnostic.
    """
    try:
        with open(path) as handle:
            state = json.load(handle)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}")
    except ValueError as error:
        raise CheckpointError(f"malformed checkpoint {path}: {error}")
    if not isinstance(state, dict):
        raise CheckpointError(
            f"malformed checkpoint {path}: expected a JSON object, "
            f"got {type(state).__name__}"
        )
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    digest = state.pop("digest", None)
    expected = _payload_digest(state)
    if digest != expected:
        raise CheckpointError(
            f"checkpoint {path} failed its integrity check "
            f"(digest {digest!r}, expected {expected!r}) — the file is "
            "corrupt or was modified"
        )
    missing = [key for key in require if key not in state]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is missing required keys: {missing}"
        )
    return state
