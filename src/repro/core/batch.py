"""The conventional batch compiler (paper section 6 baseline).

VPO's batch mode applies optimization phases to every function in one
fixed order, looping over the aggressive phases until no phase changes
the program, which means many attempted phases are dormant.  The
probabilistic compiler (:mod:`repro.core.probabilistic`) is measured
against this baseline in Table 7.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.observability import tracer as _obs
from repro.opt import PHASES, Phase, apply_phase, phase_by_id
from repro.robustness.guard import GuardedPhaseRunner

#: phases applied once before the fixpoint loop: control-flow cleanup,
#: evaluation order determination (must precede register assignment),
#: then a first instruction selection
BATCH_PROLOGUE: Tuple[str, ...] = ("b", "i", "u", "r", "o", "s")

#: the fixpoint loop body, repeated until one full pass stays dormant
BATCH_LOOP: Tuple[str, ...] = (
    "s",
    "c",
    "h",
    "k",
    "l",
    "g",
    "j",
    "q",
    "n",
    "b",
    "i",
    "u",
    "r",
    "d",
)

#: the complete default order, for reporting
BATCH_ORDER: Tuple[str, ...] = BATCH_PROLOGUE + BATCH_LOOP


class CompilationReport:
    """Statistics from compiling one function."""

    __slots__ = (
        "function_name",
        "attempted",
        "active",
        "active_sequence",
        "elapsed",
        "code_size",
        "quarantined",
    )

    def __init__(
        self,
        function_name,
        attempted,
        active,
        active_sequence,
        elapsed,
        code_size,
        quarantined=0,
    ):
        self.function_name = function_name
        #: number of phases attempted (dormant included)
        self.attempted = attempted
        #: number of phases that changed the code
        self.active = active
        #: the active phase ids in application order
        self.active_sequence = active_sequence
        #: wall-clock compile time in seconds
        self.elapsed = elapsed
        #: static instructions in the final code
        self.code_size = code_size
        #: phase applications rejected by the guard (0 without one)
        self.quarantined = quarantined

    def __repr__(self):
        return (
            f"<CompilationReport {self.function_name}: attempted="
            f"{self.attempted} active={self.active} size={self.code_size}>"
        )


class BatchCompiler:
    """Apply phases in VPO's fixed default order to a fixpoint."""

    def __init__(
        self,
        target: Optional[Target] = None,
        prologue: Sequence[str] = BATCH_PROLOGUE,
        loop: Sequence[str] = BATCH_LOOP,
        max_loop_iterations: int = 50,
        guard: Optional[GuardedPhaseRunner] = None,
    ):
        self.target = target or DEFAULT_TARGET
        self.prologue = tuple(prologue)
        self.loop = tuple(loop)
        self.max_loop_iterations = max_loop_iterations
        #: when set, phases run through the guarded runner: failing
        #: applications are quarantined and read as dormant, so one
        #: broken phase degrades code quality instead of crashing the
        #: compilation
        self.guard = guard

    def _apply(self, func: Function, phase_id: str) -> bool:
        if self.guard is not None:
            return self.guard.apply(func, phase_by_id(phase_id), self.target)
        return apply_phase(func, phase_by_id(phase_id), self.target)

    def compile(self, func: Function) -> CompilationReport:
        """Optimize *func* in place with the default phase order."""
        start = time.perf_counter()
        attempted = 0
        quarantined_before = (
            len(self.guard.quarantine) if self.guard is not None else 0
        )
        active_sequence: List[str] = []
        for phase_id in self.prologue:
            attempted += 1
            if self._apply(func, phase_id):
                active_sequence.append(phase_id)
        for _ in range(self.max_loop_iterations):
            any_active = False
            for phase_id in self.loop:
                attempted += 1
                if self._apply(func, phase_id):
                    active_sequence.append(phase_id)
                    any_active = True
            if not any_active:
                break
        else:
            raise RuntimeError(
                f"{func.name}: batch compilation did not reach a fixpoint"
            )
        elapsed = time.perf_counter() - start
        quarantined = (
            len(self.guard.quarantine) - quarantined_before
            if self.guard is not None
            else 0
        )
        report = CompilationReport(
            func.name,
            attempted,
            len(active_sequence),
            tuple(active_sequence),
            elapsed,
            func.num_instructions(),
            quarantined=quarantined,
        )
        tr = _obs.ACTIVE
        if tr is not None:
            tr.emit(
                "batch_compile",
                function=report.function_name,
                attempted=report.attempted,
                active=report.active,
                sequence="".join(report.active_sequence),
                quarantined=report.quarantined,
                code_size=report.code_size,
                wall=round(report.elapsed, 3),
            )
        return report
