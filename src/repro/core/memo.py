"""Phase-transition memo table (the memoized expansion engine).

Applying a phase to a function instance is deterministic: the same
instance (same remapped RTL content and legality flags) under the same
space-shaping configuration always yields the same result instance —
"Beyond the Phase Ordering Problem" (PAPERS.md) formalizes exactly this
property, and it is already the soundness assumption behind the paper's
identical-instance merging (two merged nodes share their whole
subspace).  The memo table exploits it: the outcome of ``(instance
key, phase)`` is recorded once, and any later re-arrival at the same
instance — in another function's space, at another level, or in a
whole other run — skips the clone + phase application + fingerprint
entirely.

The memo key is the enumeration *node key*: the paper's fingerprint
triple (instruction count, byte-sum, CRC-32 of the remapped RTLs) plus
the three legality flags.  Content-based keying is what makes sharing
across functions and runs sound; it also means a memo entry recorded
during a run that later aborted is still a valid fact.

An entry is either *dormant* (the phase made no change) or *active*,
in which case it carries the child's node key, fingerprint metadata,
and the child instance itself — as a live :class:`Function` when
recorded in-process, or as a serialized checkpoint dict when loaded
from the merged-space store.  :meth:`TransitionMemo.materialize`
returns a fresh ``Function`` either way.

Exact mode never takes the memo fast path: it performs the real
application and *verifies* the memo entry against it, raising on any
divergence — that is how the bit-identity guarantee survives memo
reuse (ISSUE 3 tentpole requirement).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.ir.function import Function

MEMO_VERSION = 1


class MemoEntry:
    """Outcome of one ``(instance, phase)`` transition."""

    __slots__ = ("dormant", "key", "num_insts", "cf_crc", "function")

    def __init__(
        self,
        dormant: bool,
        key=None,
        num_insts: int = 0,
        cf_crc: int = 0,
        function=None,
    ):
        self.dormant = dormant
        #: child node key (None for dormant entries)
        self.key = key
        self.num_insts = num_insts
        self.cf_crc = cf_crc
        #: child instance: a Function (in-run) or a serialized dict
        #: (loaded from the store); None for dormant entries
        self.function = function


class TransitionMemo:
    """In-memory memo of phase transitions, with JSON persistence."""

    def __init__(self) -> None:
        self.entries: Dict[Tuple[object, str], MemoEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters, in the shape telemetry events use."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.entries),
        }

    def lookup(self, parent_key, phase_id: str) -> Optional[MemoEntry]:
        entry = self.entries.get((parent_key, phase_id))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def record_dormant(self, parent_key, phase_id: str) -> None:
        self.entries.setdefault((parent_key, phase_id), MemoEntry(dormant=True))

    def record_active(
        self, parent_key, phase_id: str, key, num_insts: int, cf_crc: int, function
    ) -> None:
        """Record an active transition; *function* is the child instance
        (a Function or an already-serialized dict)."""
        self.entries.setdefault(
            (parent_key, phase_id),
            MemoEntry(
                dormant=False,
                key=key,
                num_insts=num_insts,
                cf_crc=cf_crc,
                function=function,
            ),
        )

    @staticmethod
    def materialize(entry: MemoEntry) -> Function:
        """A fresh Function for *entry*'s child instance."""
        if isinstance(entry.function, Function):
            return entry.function.clone()
        return ckpt.function_from_dict(entry.function)

    # ------------------------------------------------------------------
    # Persistence (the merged-space store's memo-<digest>.json)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        entries = []
        for (parent_key, phase_id), entry in self.entries.items():
            record: Dict[str, object] = {
                "parent": ckpt.key_to_json(parent_key),
                "phase": phase_id,
                "dormant": entry.dormant,
            }
            if not entry.dormant:
                function = entry.function
                if isinstance(function, Function):
                    function = ckpt.function_to_dict(function)
                record.update(
                    key=ckpt.key_to_json(entry.key),
                    num_insts=entry.num_insts,
                    cf_crc=entry.cf_crc,
                    function=function,
                )
            entries.append(record)
        # "memo_version", not "version": the checkpoint writer that
        # persists this dict stamps its own "version" envelope key.
        return {"memo_version": MEMO_VERSION, "entries": entries}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TransitionMemo":
        if data.get("memo_version") != MEMO_VERSION:
            raise ValueError(
                f"unsupported memo version {data.get('memo_version')!r}"
            )
        memo = cls()
        for record in data["entries"]:
            parent_key = ckpt.key_from_json(record["parent"])
            phase_id = record["phase"]
            if record["dormant"]:
                memo.record_dormant(parent_key, phase_id)
            else:
                memo.record_active(
                    parent_key,
                    phase_id,
                    ckpt.key_from_json(record["key"]),
                    record["num_insts"],
                    record["cf_crc"],
                    record["function"],
                )
        return memo
