"""bitcount — MiBench ``auto`` category.

Tests processor bit manipulation abilities: several alternative bit
counting routines (iterated shift, Kernighan clear-lowest-bit, parallel
fold, and table lookup), exercised over a pseudo-random stream.
"""

from __future__ import annotations

_SOURCE = """
int bits_table[256];

void init_bits_table(void) {
    int i;
    for (i = 0; i < 256; i++) {
        int n = 0;
        int x = i;
        while (x) {
            n += x & 1;
            x >>= 1;
        }
        bits_table[i] = n;
    }
}

/* Iterated-shift counter. */
int bit_shifter(int x) {
    int n = 0;
    int i;
    for (i = 0; i < 32 && x != 0; i++) {
        n += x & 1;
        x = (x >> 1) & 0x7fffffff;
    }
    return n;
}

/* Kernighan: clear the lowest set bit each iteration. */
int bit_count(int x) {
    int n = 0;
    while (x != 0) {
        n++;
        x = x & (x - 1);
    }
    return n;
}

/* Parallel fold (the non-table btbl variant). */
int ntbl_bitcount(int x) {
    int m = x;
    m = (m & 0x55555555) + ((m >> 1) & 0x55555555);
    m = (m & 0x33333333) + ((m >> 2) & 0x33333333);
    m = (m & 0x0f0f0f0f) + ((m >> 4) & 0x0f0f0f0f);
    m = (m & 0x00ff00ff) + ((m >> 8) & 0x00ff00ff);
    m = (m & 0x0000ffff) + ((m >> 16) & 0x0000ffff);
    return m;
}

/* Table lookup over the four bytes. */
int tbl_bitcount(int x) {
    return bits_table[x & 255]
         + bits_table[(x >> 8) & 255]
         + bits_table[(x >> 16) & 255]
         + bits_table[(x >> 24) & 255];
}

/* MiBench's AR_btbl variant: arithmetic reduction in octal masks. */
int ar_bitcount(int x) {
    int y;
    y = x - ((x >> 1) & 0x5db6db6d) - ((x >> 2) & 0x49249249);
    y = (y + (y >> 3)) & 0xc71c71c7;
    return y % 63;
}

/* Locate the lowest set bit (ffs-style), -1 when none. */
int bit_position(int x) {
    int pos = 0;
    if (x == 0)
        return -1;
    while (!(x & 1)) {
        x = (x >> 1) & 0x7fffffff;
        pos++;
    }
    return pos;
}

int main(void) {
    int seed = 1013904223;
    int total = 0;
    int i;
    init_bits_table();
    for (i = 0; i < 64; i++) {
        int value;
        seed = seed * 1664525 + 1013904223;
        value = seed & 0x7fffffff;
        total += bit_count(value);
        total += bit_shifter(value);
        total += ntbl_bitcount(value);
        total += tbl_bitcount(value);
    }
    return total;
}

/* Secondary driver exercising the extra counters (kept out of main so
   its checksum stays comparable with the reference run). */
int selftest(void) {
    int seed = 12345;
    int total = 0;
    int i;
    for (i = 0; i < 32; i++) {
        int value;
        seed = seed * 1103515245 + 12345;
        value = seed & 0x7fffffff;
        if (ar_bitcount(value) != 0)
            total += ar_bitcount(value);
        total = total * 3 + bit_position(value);
    }
    total = total * 31 + bit_position(0);
    return total;
}
"""

from repro.programs._program import make_program

BITCOUNT = make_program(
    name="bitcount",
    category="auto",
    source=_SOURCE,
    entry="main",
    study_functions=[
        "init_bits_table",
        "bit_shifter",
        "bit_count",
        "ntbl_bitcount",
        "tbl_bitcount",
        "ar_bitcount",
        "bit_position",
        "main",
        "selftest",
    ],
)
