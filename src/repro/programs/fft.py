"""fft — MiBench ``telecomm`` category.

An iterative radix-2 complex FFT over 32 points, with sine/cosine
computed by a range-reduced Taylor series (the paper's fft benchmark is
the float-heavy one — ``fft_float`` and ``main`` are its two functions
whose spaces were too big to enumerate, a property our Table 3
experiment reproduces in miniature).
"""

from __future__ import annotations

from repro.programs._program import make_program

_SOURCE = """
float fr[32];
float fi[32];

float fsin(float x) {
    float x2;
    float term;
    float sum;
    int i;
    while (x > 3.14159265358979)
        x -= 6.28318530717959;
    while (x < -3.14159265358979)
        x += 6.28318530717959;
    x2 = x * x;
    term = x;
    sum = x;
    for (i = 1; i <= 9; i++) {
        term = -term * x2 / ((2 * i) * (2 * i + 1));
        sum += term;
    }
    return sum;
}

float fcos(float x) {
    return fsin(x + 1.5707963267949);
}

void fft_init(int seed) {
    int i;
    int v = seed;
    for (i = 0; i < 32; i++) {
        v = v * 1664525 + 1013904223;
        fr[i] = ((v >> 16) & 255) - 128;
        fi[i] = 0.0;
    }
}

void bit_reverse(int n, int bits) {
    int i;
    for (i = 0; i < n; i++) {
        int rev = 0;
        int bit;
        int x = i;
        for (bit = 0; bit < bits; bit++) {
            rev = (rev << 1) | (x & 1);
            x >>= 1;
        }
        if (rev > i) {
            float tr = fr[i];
            float ti = fi[i];
            fr[i] = fr[rev];
            fi[i] = fi[rev];
            fr[rev] = tr;
            fi[rev] = ti;
        }
    }
}

void fft_float(int n, int bits, int inverse) {
    int len;
    bit_reverse(n, bits);
    for (len = 2; len <= n; len <<= 1) {
        float ang = 6.28318530717959 / len;
        int i;
        if (inverse)
            ang = -ang;
        for (i = 0; i < n; i += len) {
            int j;
            for (j = 0; j + j < len; j++) {
                float wr = fcos(ang * j);
                float wi = fsin(ang * j);
                int a = i + j;
                int b = i + j + len / 2;
                float xr = fr[b] * wr - fi[b] * wi;
                float xi = fr[b] * wi + fi[b] * wr;
                fr[b] = fr[a] - xr;
                fi[b] = fi[a] - xi;
                fr[a] = fr[a] + xr;
                fi[a] = fi[a] + xi;
            }
        }
    }
}

/* MiBench fourier's small helpers. */
int is_power_of_two(int n) {
    if (n < 2)
        return 0;
    return (n & (n - 1)) == 0;
}

int number_of_bits_needed(int n) {
    int bits = 0;
    if (n < 2)
        return 0;
    while ((1 << bits) < n)
        bits++;
    return bits;
}

int reverse_bits(int index, int bits) {
    int rev = 0;
    int i;
    for (i = 0; i < bits; i++) {
        rev = (rev << 1) | (index & 1);
        index >>= 1;
    }
    return rev;
}

int index_to_frequency(int n, int index) {
    if (index >= n / 2)
        return index - n;   /* negative frequencies */
    return index;
}

int selftest(void) {
    int total = 0;
    int n;
    for (n = 1; n <= 64; n++) {
        total += is_power_of_two(n);
        total = total * 3 + number_of_bits_needed(n);
    }
    for (n = 0; n < 16; n++) {
        total = total * 5 + reverse_bits(n, 4);
        total += index_to_frequency(16, n);
    }
    return total;
}

int main(void) {
    int checksum = 0;
    int t;
    int i;
    fft_init(20250701);
    fft_float(32, 5, 0);
    for (i = 0; i < 32; i++) {
        t = fr[i] * 16.0;
        checksum += t;
        t = fi[i] * 16.0;
        checksum ^= t;
    }
    fft_float(32, 5, 1);
    for (i = 0; i < 32; i++) {
        t = fr[i] / 32.0;
        checksum += t;
    }
    return checksum;
}
"""

FFT = make_program(
    name="fft",
    category="telecomm",
    source=_SOURCE,
    entry="main",
    study_functions=[
        "fsin",
        "fcos",
        "fft_init",
        "bit_reverse",
        "fft_float",
        "main",
        "is_power_of_two",
        "number_of_bits_needed",
        "reverse_bits",
        "index_to_frequency",
        "selftest",
    ],
)
