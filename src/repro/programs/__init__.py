"""MiBench-like benchmark programs in mini-C (paper Table 2).

The paper evaluates one benchmark from each of MiBench's six embedded
categories: bitcount (auto), dijkstra (network), fft (telecomm), jpeg
(consumer), sha (security), and stringsearch (office).  The programs
here re-implement representative kernels of each benchmark in the
mini-C subset, preserving the mix of control flow, loop structure, and
arithmetic that shaped the paper's per-function search spaces.

Every program is self-checking: ``main`` returns a checksum that must
be identical under every optimization phase ordering.
"""

from __future__ import annotations

from typing import Dict

from repro.frontend import compile_source
from repro.ir.function import Program
from repro.programs._program import BenchmarkProgram

from repro.programs.bitcount import BITCOUNT
from repro.programs.dijkstra import DIJKSTRA
from repro.programs.fft import FFT
from repro.programs.jpeg import JPEG
from repro.programs.sha import SHA
from repro.programs.stringsearch import STRINGSEARCH


PROGRAMS: Dict[str, BenchmarkProgram] = {
    program.name: program
    for program in (BITCOUNT, DIJKSTRA, FFT, JPEG, SHA, STRINGSEARCH)
}


def compile_benchmark(name: str) -> Program:
    """Compile benchmark *name* to naive RTL."""
    return compile_source(PROGRAMS[name].source)


def all_study_functions():
    """Yield (benchmark, function_name) for every studied function."""
    for program in PROGRAMS.values():
        for function_name in program.study_functions:
            yield program, function_name


__all__ = [
    "BenchmarkProgram",
    "PROGRAMS",
    "compile_benchmark",
    "all_study_functions",
    "BITCOUNT",
    "DIJKSTRA",
    "FFT",
    "JPEG",
    "SHA",
    "STRINGSEARCH",
]
