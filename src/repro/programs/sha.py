"""sha — MiBench ``security`` category.

The SHA-1 compression function (``sha_transform`` with its 80-round
loop and message schedule expansion), a byte-reversal helper, and a
driver hashing a pseudo-random buffer.
"""

from __future__ import annotations

from repro.programs._program import make_program

_SOURCE = """
int sha_digest[5];
int sha_data[16];
int W[80];

int rol(int x, int n) {
    /* 32-bit rotate left built from shifts (mask clears the sign
       extension of the arithmetic right shift). */
    int right = (x >> (32 - n)) & ((1 << n) - 1);
    return (x << n) | right;
}

void byte_reverse(int n) {
    int i;
    for (i = 0; i < n; i++) {
        int v = sha_data[i];
        int b0 = v & 255;
        int b1 = (v >> 8) & 255;
        int b2 = (v >> 16) & 255;
        int b3 = (v >> 24) & 255;
        sha_data[i] = (b0 << 24) | (b1 << 16) | (b2 << 8) | b3;
    }
}

void sha_init(void) {
    sha_digest[0] = 0x67452301;
    sha_digest[1] = 0xefcdab89;
    sha_digest[2] = 0x98badcfe;
    sha_digest[3] = 0x10325476;
    sha_digest[4] = 0xc3d2e1f0;
}

void sha_transform(void) {
    int i;
    int a;
    int b;
    int c;
    int d;
    int e;
    int temp;

    for (i = 0; i < 16; i++)
        W[i] = sha_data[i];
    for (i = 16; i < 80; i++)
        W[i] = W[i - 3] ^ W[i - 8] ^ W[i - 14] ^ W[i - 16];

    a = sha_digest[0];
    b = sha_digest[1];
    c = sha_digest[2];
    d = sha_digest[3];
    e = sha_digest[4];

    for (i = 0; i < 20; i++) {
        temp = rol(a, 5) + ((b & c) | (~b & d)) + e + W[i] + 0x5a827999;
        e = d;
        d = c;
        c = rol(b, 30);
        b = a;
        a = temp;
    }
    for (i = 20; i < 40; i++) {
        temp = rol(a, 5) + (b ^ c ^ d) + e + W[i] + 0x6ed9eba1;
        e = d;
        d = c;
        c = rol(b, 30);
        b = a;
        a = temp;
    }
    for (i = 40; i < 60; i++) {
        temp = rol(a, 5) + ((b & c) | (b & d) | (c & d)) + e + W[i] + 0x8f1bbcdc;
        e = d;
        d = c;
        c = rol(b, 30);
        b = a;
        a = temp;
    }
    for (i = 60; i < 80; i++) {
        temp = rol(a, 5) + (b ^ c ^ d) + e + W[i] + 0xca62c1d6;
        e = d;
        d = c;
        c = rol(b, 30);
        b = a;
        a = temp;
    }

    sha_digest[0] = sha_digest[0] + a;
    sha_digest[1] = sha_digest[1] + b;
    sha_digest[2] = sha_digest[2] + c;
    sha_digest[3] = sha_digest[3] + d;
    sha_digest[4] = sha_digest[4] + e;
}

/* sha_update's block-feeding loop, simplified to whole words. */
int sha_count;

void sha_update_words(int words[], int count) {
    int consumed = 0;
    while (consumed < count) {
        int chunk = count - consumed;
        int i;
        if (chunk > 16)
            chunk = 16;
        for (i = 0; i < chunk; i++)
            sha_data[i] = words[consumed + i];
        for (i = chunk; i < 16; i++)
            sha_data[i] = 0;
        byte_reverse(16);
        sha_transform();
        consumed += chunk;
        sha_count += chunk * 4;
    }
}

int sha_final_word(void) {
    /* fold the digest, mixing in the processed byte count */
    return sha_digest[0] ^ sha_digest[1] ^ sha_digest[2]
         ^ sha_digest[3] ^ sha_digest[4] ^ sha_count;
}

int message[40];

int selftest(void) {
    int seed = 0x2545f491;
    int i;
    sha_count = 0;
    sha_init();
    for (i = 0; i < 40; i++) {
        seed = seed * 69069 + 1;
        message[i] = seed;
    }
    sha_update_words(message, 40);
    return sha_final_word();
}

int main(void) {
    int seed = 0x517cc1b7;
    int block;
    int i;
    sha_init();
    for (block = 0; block < 4; block++) {
        for (i = 0; i < 16; i++) {
            seed = seed * 69069 + 1234567;
            sha_data[i] = seed;
        }
        byte_reverse(16);
        sha_transform();
    }
    return sha_digest[0] ^ sha_digest[1] ^ sha_digest[2]
         ^ sha_digest[3] ^ sha_digest[4];
}

/* MiBench's sha_stream feeds the hash from a buffer pointer; these
   two are the pointer-walking counterparts of sha_update_words. */
int word_sum(int *p, int n) {
    int total = 0;
    while (n > 0) {
        total += *p;
        p += 1;
        n -= 1;
    }
    return total;
}

void sha_update_ptr(int *words, int count) {
    int consumed = 0;
    while (consumed < count) {
        int chunk = count - consumed;
        int i;
        int *src;
        if (chunk > 16)
            chunk = 16;
        src = words + consumed;
        for (i = 0; i < chunk; i++)
            sha_data[i] = *(src + i);
        for (i = chunk; i < 16; i++)
            sha_data[i] = 0;
        byte_reverse(16);
        sha_transform();
        consumed += chunk;
        sha_count += chunk * 4;
    }
}
"""

SHA = make_program(
    name="sha",
    category="security",
    source=_SOURCE,
    entry="main",
    study_functions=[
        "rol",
        "byte_reverse",
        "sha_init",
        "sha_transform",
        "sha_update_words",
        "sha_final_word",
        "main",
        "selftest",
        "word_sum",
        "sha_update_ptr",
    ],
)
