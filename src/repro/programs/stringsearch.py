"""stringsearch — MiBench ``office`` category.

Boyer-Moore-Horspool search for given words in a pseudo-random text
(the paper's bmh_init / bmh_search / bmha / bmhi function family).
Characters are stored one per word.
"""

from __future__ import annotations

from repro.programs._program import make_program

_SOURCE = """
int search_text[256];
int pattern[16];
int skip[128];

void make_text(int seed) {
    int i;
    int v = seed;
    for (i = 0; i < 256; i++) {
        v = v * 1103515245 + 12345;
        search_text[i] = 97 + ((v >> 16) & 0x7fff) % 26;   /* 'a'..'z' */
    }
}

void plant_pattern(int at, int patlen) {
    int i;
    for (i = 0; i < patlen; i++)
        search_text[at + i] = pattern[i];
}

int set_pattern(int which) {
    /* Returns the pattern length. */
    switch (which) {
    case 0:
        pattern[0] = 'h'; pattern[1] = 'e'; pattern[2] = 'r';
        pattern[3] = 'e'; return 4;
    case 1:
        pattern[0] = 'w'; pattern[1] = 'o'; pattern[2] = 'r';
        pattern[3] = 'l'; pattern[4] = 'd'; return 5;
    case 2:
        pattern[0] = 'q'; pattern[1] = 'z'; pattern[2] = 'x';
        return 3;
    default:
        pattern[0] = 'a'; pattern[1] = 'b'; pattern[2] = 'a';
        pattern[3] = 'b'; pattern[4] = 'a'; pattern[5] = 'b';
        return 6;
    }
}

void bmh_init(int patlen) {
    int i;
    for (i = 0; i < 128; i++)
        skip[i] = patlen;
    for (i = 0; i < patlen - 1; i++)
        skip[pattern[i] & 127] = patlen - 1 - i;
}

int bmh_search(int textlen, int patlen) {
    int pos = patlen - 1;
    while (pos < textlen) {
        int i = patlen - 1;
        int j = pos;
        while (i >= 0 && search_text[j] == pattern[i]) {
            i--;
            j--;
        }
        if (i < 0)
            return pos - patlen + 1;
        pos += skip[search_text[pos] & 127];
    }
    return -1;
}

/* Case-insensitive variant (bmhi in the paper's tables). */
int bmhi_search(int textlen, int patlen) {
    int pos = patlen - 1;
    while (pos < textlen) {
        int i = patlen - 1;
        int j = pos;
        while (i >= 0) {
            int t = search_text[j];
            int p = pattern[i];
            if (t >= 65 && t <= 90)
                t += 32;
            if (p >= 65 && p <= 90)
                p += 32;
            if (t != p)
                break;
            i--;
            j--;
        }
        if (i < 0)
            return pos - patlen + 1;
        pos += skip[search_text[pos] & 127];
    }
    return -1;
}

int strsearch(int which, int textlen) {
    int patlen = set_pattern(which);
    bmh_init(patlen);
    return bmh_search(textlen, patlen);
}

/* Naive O(n*m) search, the baseline BMH beats. */
int simple_search(int textlen, int patlen) {
    int pos;
    for (pos = 0; pos + patlen <= textlen; pos++) {
        int i = 0;
        while (i < patlen && search_text[pos + i] == pattern[i])
            i++;
        if (i == patlen)
            return pos;
    }
    return -1;
}

int to_lower(int c) {
    if (c >= 'A' && c <= 'Z')
        return c + 32;
    return c;
}

int count_occurrences(int textlen, int patlen) {
    int found = 0;
    int pos = patlen - 1;
    while (pos < textlen) {
        int i = patlen - 1;
        int j = pos;
        while (i >= 0 && search_text[j] == pattern[i]) {
            i--;
            j--;
        }
        if (i < 0) {
            found++;
            pos += patlen;
        } else {
            pos += skip[search_text[pos] & 127];
        }
    }
    return found;
}

int selftest(void) {
    int total = 0;
    int which;
    make_text(19991231);
    for (which = 0; which < 4; which++) {
        int patlen = set_pattern(which);
        bmh_init(patlen);
        total = total * 31 + simple_search(256, patlen);
        total = total * 31 + count_occurrences(256, patlen);
        /* naive and BMH must agree on the first match */
        if (simple_search(256, patlen) != bmh_search(256, patlen))
            total += 1000000;
    }
    total = total * 31 + to_lower('Q') + to_lower('q') + to_lower('!');
    return total;
}

int main(void) {
    int total = 0;
    int which;
    make_text(20060325);
    set_pattern(0);
    plant_pattern(100, 4);
    set_pattern(1);
    plant_pattern(200, 5);
    for (which = 0; which < 4; which++) {
        int found = strsearch(which, 256);
        total = total * 31 + found;
    }
    set_pattern(1);
    bmh_init(5);
    total = total * 31 + bmhi_search(256, 5);
    return total;
}

/* Match accounting through a struct pointer (MiBench's bmha family
   reports both the first hit and the hit count). */
struct Match { int pos; int count; };
struct Match last_match;

void record_match(struct Match *m, int at) {
    if (m->count == 0)
        m->pos = at;
    m->count += 1;
}

int find_all(int textlen, int patlen) {
    struct Match *m;
    int pos;
    m = &last_match;
    m->pos = -1;
    m->count = 0;
    pos = patlen - 1;
    while (pos < textlen) {
        int i = patlen - 1;
        int j = pos;
        while (i >= 0 && search_text[j] == pattern[i]) {
            i--;
            j--;
        }
        if (i < 0) {
            record_match(m, pos - patlen + 1);
            pos += patlen;
        } else {
            pos += skip[search_text[pos] & 127];
        }
    }
    return m->pos * 1000 + m->count;
}

/* Pointer-walking rewrite of the naive search's inner comparison. */
int match_here(int *t, int *p, int n) {
    while (n > 0) {
        if (*t != *p)
            return 0;
        t += 1;
        p += 1;
        n -= 1;
    }
    return 1;
}

int simple_search_ptr(int textlen, int patlen) {
    int pos;
    for (pos = 0; pos + patlen <= textlen; pos++) {
        if (match_here(&search_text[pos], &pattern[0], patlen) == 1)
            return pos;
    }
    return -1;
}
"""

STRINGSEARCH = make_program(
    name="stringsearch",
    category="office",
    source=_SOURCE,
    entry="main",
    study_functions=[
        "make_text",
        "plant_pattern",
        "set_pattern",
        "bmh_init",
        "bmh_search",
        "bmhi_search",
        "strsearch",
        "simple_search",
        "to_lower",
        "count_occurrences",
        "main",
        "selftest",
        "record_match",
        "find_all",
        "match_here",
        "simple_search_ptr",
    ],
)
