"""Shared benchmark-program record type."""

from __future__ import annotations

from typing import List, NamedTuple


class BenchmarkProgram(NamedTuple):
    """A benchmark: its category, mini-C source, and study functions."""

    name: str
    category: str
    source: str
    entry: str
    #: functions whose phase order spaces the experiments enumerate
    study_functions: List[str]


def make_program(
    name: str,
    category: str,
    source: str,
    entry: str,
    study_functions: List[str],
) -> BenchmarkProgram:
    return BenchmarkProgram(name, category, source, entry, study_functions)
