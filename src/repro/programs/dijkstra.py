"""dijkstra — MiBench ``network`` category.

Dijkstra's shortest path algorithm over a dense pseudo-random adjacency
matrix (O(n^2) selection, as in the MiBench original).
"""

from __future__ import annotations

from repro.programs._program import make_program

_SOURCE = """
int adj[400];       /* 20 x 20 weight matrix, 0 = no edge */
int dist[20];
int visited[20];

int next_rand(int seed) {
    return seed * 1103515245 + 12345;
}

void init_graph(int seed) {
    int i;
    int j;
    int v = seed;
    for (i = 0; i < 20; i++) {
        for (j = 0; j < 20; j++) {
            v = next_rand(v);
            if (i == j) {
                adj[i * 20 + j] = 0;
            } else {
                int w = (v >> 16) & 31;
                if (w < 4) {
                    adj[i * 20 + j] = 0;       /* no edge */
                } else {
                    adj[i * 20 + j] = w;
                }
            }
        }
    }
}

int enqueue_min(void) {
    /* Select the unvisited node with the smallest distance. */
    int best = 1000000;
    int u = -1;
    int i;
    for (i = 0; i < 20; i++) {
        if (!visited[i] && dist[i] < best) {
            best = dist[i];
            u = i;
        }
    }
    return u;
}

int dijkstra(int src) {
    int i;
    int count;
    for (i = 0; i < 20; i++) {
        dist[i] = 1000000;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (count = 0; count < 20; count++) {
        int u = enqueue_min();
        if (u < 0)
            break;
        visited[u] = 1;
        for (i = 0; i < 20; i++) {
            int w = adj[u * 20 + i];
            if (w > 0 && dist[u] + w < dist[i])
                dist[i] = dist[u] + w;
        }
    }
    return dist[19];
}

int main(void) {
    int total = 0;
    int src;
    init_graph(42);
    for (src = 0; src < 10; src++) {
        int d = dijkstra(src);
        if (d < 1000000)
            total += d;
        else
            total += 7;     /* unreachable marker */
    }
    return total;
}

/* MiBench's dijkstra keeps a work queue (enqueue/dequeue/qcount);
   this variant drives the same relaxation through one. */
int queue[64];
int qhead;
int qtail;

void qinit(void) {
    qhead = 0;
    qtail = 0;
}

int qcount(void) {
    return qtail - qhead;
}

void enqueue(int node) {
    queue[qtail & 63] = node;
    qtail++;
}

int dequeue(void) {
    int node = queue[qhead & 63];
    qhead++;
    return node;
}

int dijkstra_queued(int src) {
    int i;
    for (i = 0; i < 20; i++) {
        dist[i] = 1000000;
        visited[i] = 0;
    }
    dist[src] = 0;
    qinit();
    enqueue(src);
    while (qcount() > 0) {
        int u = dequeue();
        if (visited[u])
            continue;
        visited[u] = 1;
        for (i = 0; i < 20; i++) {
            int w = adj[u * 20 + i];
            if (w > 0 && dist[u] + w < dist[i]) {
                dist[i] = dist[u] + w;
                if (qcount() < 40)
                    enqueue(i);
            }
        }
    }
    return dist[19];
}

int selftest(void) {
    int total = 0;
    int src;
    init_graph(42);
    for (src = 0; src < 6; src++) {
        int d = dijkstra_queued(src);
        if (d < 1000000)
            total = total * 13 + d;
        else
            total = total * 13 + 7;
    }
    return total;
}
"""

DIJKSTRA = make_program(
    name="dijkstra",
    category="network",
    source=_SOURCE,
    entry="main",
    study_functions=[
        "next_rand",
        "init_graph",
        "enqueue_min",
        "dijkstra",
        "main",
        "qinit",
        "qcount",
        "enqueue",
        "dequeue",
        "dijkstra_queued",
        "selftest",
    ],
)
