"""jpeg — MiBench ``consumer`` category.

Representative kernels of a JPEG encoder's block pipeline: quantization
table setup, coefficient quantization, zig-zag reordering, fixed-point
RGB-to-YCC color conversion, and sample range limiting.
"""

from __future__ import annotations

from repro.programs._program import make_program

_SOURCE = """
/* Standard JPEG luminance quantization table (quality 50 base). */
int base_quant[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};

/* JPEG zig-zag scan order. */
int zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

int quant_tbl[64];
int coef[64];
int workspace[64];

void set_quant_table(int quality) {
    int scale;
    int i;
    if (quality <= 0)
        quality = 1;
    if (quality > 100)
        quality = 100;
    if (quality < 50)
        scale = 5000 / quality;
    else
        scale = 200 - quality * 2;
    for (i = 0; i < 64; i++) {
        int q = (base_quant[i] * scale + 50) / 100;
        if (q <= 0)
            q = 1;
        if (q > 255)
            q = 255;
        quant_tbl[i] = q;
    }
}

int descale(int x, int n) {
    return (x + (1 << (n - 1))) >> n;
}

int range_limit(int x) {
    if (x < 0)
        return 0;
    if (x > 255)
        return 255;
    return x;
}

void quantize_block(void) {
    int i;
    for (i = 0; i < 64; i++) {
        int q = quant_tbl[i];
        int c = coef[i];
        if (c < 0) {
            c = -c;
            c += q >> 1;
            c /= q;
            coef[i] = -c;
        } else {
            c += q >> 1;
            c /= q;
            coef[i] = c;
        }
    }
}

void zigzag_block(void) {
    int i;
    for (i = 0; i < 64; i++)
        workspace[i] = coef[zigzag[i]];
}

/* Fixed-point RGB -> luma (the jpeg color conversion kernel). */
int rgb_to_y(int r, int g, int b) {
    return descale(19595 * r + 38470 * g + 7471 * b, 16);
}

int rgb_to_cb(int r, int g, int b) {
    return range_limit(descale(-11059 * r - 21709 * g + 32768 * b, 16) + 128);
}

/* One row of the AAN forward DCT (adds, subs and shifted multiplies —
   the shape of jdct.c's fast path). */
void fdct_row(int row) {
    int base = row * 8;
    int tmp0 = coef[base + 0] + coef[base + 7];
    int tmp7 = coef[base + 0] - coef[base + 7];
    int tmp1 = coef[base + 1] + coef[base + 6];
    int tmp6 = coef[base + 1] - coef[base + 6];
    int tmp2 = coef[base + 2] + coef[base + 5];
    int tmp5 = coef[base + 2] - coef[base + 5];
    int tmp3 = coef[base + 3] + coef[base + 4];
    int tmp4 = coef[base + 3] - coef[base + 4];
    int tmp10 = tmp0 + tmp3;
    int tmp13 = tmp0 - tmp3;
    int tmp11 = tmp1 + tmp2;
    int tmp12 = tmp1 - tmp2;
    coef[base + 0] = tmp10 + tmp11;
    coef[base + 4] = tmp10 - tmp11;
    coef[base + 2] = tmp13 + descale(tmp12 * 181, 7);
    coef[base + 6] = tmp13 - descale(tmp12 * 181, 7);
    coef[base + 1] = tmp4 + descale((tmp5 + tmp6) * 98, 7);
    coef[base + 5] = tmp7 - descale((tmp5 - tmp6) * 139, 7);
    coef[base + 3] = tmp4 - tmp7;
    coef[base + 7] = tmp5 + tmp6 + tmp4;
}

/* Huffman-style bit packing (jchuff.c's emit_bits shape). */
int bit_buffer;
int bits_in_buffer;
int emitted_words;

void emit_reset(void) {
    bit_buffer = 0;
    bits_in_buffer = 0;
    emitted_words = 0;
}

int emit_bits(int code, int size) {
    int out = 0;
    bit_buffer = (bit_buffer << size) | (code & ((1 << size) - 1));
    bits_in_buffer += size;
    while (bits_in_buffer >= 16) {
        bits_in_buffer -= 16;
        out = (bit_buffer >> bits_in_buffer) & 0xffff;
        emitted_words++;
    }
    return out;
}

int ycc_to_r(int y, int cr) {
    return range_limit(y + descale(91881 * (cr - 128), 16));
}

/* jdmarker-style dispatch: classify a JPEG marker byte. */
int marker_category(int marker) {
    switch (marker) {
    case 0xd8:          /* SOI */
    case 0xd9:          /* EOI */
        return 1;       /* standalone */
    case 0xc0:          /* SOF0 */
    case 0xc1:          /* SOF1 */
    case 0xc2:          /* SOF2 */
        return 2;       /* frame header */
    case 0xc4:          /* DHT */
    case 0xdb:          /* DQT */
        return 3;       /* table definition */
    case 0xda:          /* SOS */
        return 4;       /* scan */
    default:
        if (marker >= 0xd0 && marker <= 0xd7)
            return 5;   /* RSTn */
        if (marker >= 0xe0 && marker <= 0xef)
            return 6;   /* APPn */
        return 0;       /* unknown / skip */
    }
}

int selftest(void) {
    int seed = 24036583;
    int total = 0;
    int i;
    for (i = 0; i < 64; i++) {
        seed = seed * 48271 + 11;
        coef[i] = ((seed >> 9) & 511) - 256;
    }
    for (i = 0; i < 8; i++)
        fdct_row(i);
    for (i = 0; i < 64; i++)
        total = total * 7 + coef[i] % 997;
    emit_reset();
    for (i = 0; i < 32; i++)
        total += emit_bits(i * 11, 5 + (i & 3));
    total = total * 31 + emitted_words;
    for (i = 0; i < 8; i++)
        total += ycc_to_r(i * 30, 255 - i * 17);
    for (i = 0xc0; i <= 0xef; i++)
        total = total * 3 + marker_category(i);
    return total;
}

int main(void) {
    int seed = 48271;
    int total = 0;
    int i;
    set_quant_table(75);
    for (i = 0; i < 64; i++) {
        seed = seed * 48271 + 3;
        coef[i] = ((seed >> 12) & 2047) - 1024;
    }
    quantize_block();
    zigzag_block();
    for (i = 0; i < 64; i++)
        total += workspace[i] * (i + 1);
    for (i = 0; i < 16; i++) {
        int r = (i * 37) & 255;
        int g = (i * 73) & 255;
        int b = (i * 111) & 255;
        total += rgb_to_y(r, g, b);
        total += rgb_to_cb(r, g, b);
        total += range_limit(r - 200);
    }
    return total;
}
"""

JPEG = make_program(
    name="jpeg",
    category="consumer",
    source=_SOURCE,
    entry="main",
    study_functions=[
        "set_quant_table",
        "descale",
        "range_limit",
        "quantize_block",
        "zigzag_block",
        "rgb_to_y",
        "rgb_to_cb",
        "fdct_row",
        "emit_reset",
        "emit_bits",
        "ycc_to_r",
        "marker_category",
        "main",
        "selftest",
    ],
)
