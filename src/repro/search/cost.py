"""Multi-objective cost model over the exhaustive space.

The paper scores instances by two numbers: static code size and
dynamic instruction count.  Real phase-ordering decisions trade more
dimensions than that — VPO's own successors weight cycles, and the
learned-ordering literature (PAPERS.md) optimizes energy on embedded
targets.  This module extends leaf evaluation to a *vector* of
objectives computed from the same per-block execution frequencies the
:class:`~repro.core.dynamic.DynamicCountOracle` already measures, so
pricing a whole space on four objectives still costs exactly one VM
execution per distinct control flow:

- ``code_size`` — static instruction count (the paper's primary);
- ``dynamic_count`` — executed instructions (the paper's section 7);
- ``cycles`` — a weighted-latency proxy: multiplies, divides, memory
  traffic and taken-branch overhead cost extra issue slots;
- ``energy`` — an access-energy proxy: memory traffic dominates, with
  arithmetic intensity a second-order term (the classic embedded
  cost split that makes energy *not* proportional to cycles);
- ``registers`` — distinct hardware registers referenced, a register
  pressure proxy: on a real embedded target every register past the
  caller-saved set costs prologue/epilogue saves and interrupt-state,
  none of which this IR models directly.  Distinct fully-optimized
  leaves genuinely trade this against code size (a shorter instance
  that needs one more register vs. a one-instruction-longer instance
  that frees one), which is what makes the leaf frontier more than a
  single point.

The weights are deliberately small integers: every objective stays an
exact integer, so Pareto comparisons, the JSON leaderboard, and the
determinism tests never meet floating-point noise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.dag import SpaceDAG, SpaceNode
from repro.core.dynamic import DynamicCountOracle, MissingFunctionError
from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, CondBranch, Instruction
from repro.ir.operands import BinOp, Reg

#: extra issue slots on top of the single base cycle
CYCLE_WEIGHTS = {
    "mul": 3,
    "div": 11,
    "rem": 11,
    "load": 2,
    "store": 1,
    "branch": 1,
    "call": 2,
}

#: extra energy units on top of the single base unit
ENERGY_WEIGHTS = {
    "mul": 2,
    "div": 6,
    "rem": 6,
    "load": 4,
    "store": 4,
    "branch": 0,
    "call": 3,
}

#: objectives a :class:`CostVector` exposes, in canonical order
OBJECTIVES = ("code_size", "dynamic_count", "cycles", "energy", "registers")

#: the default Pareto axes (cycles is dropped — it correlates almost
#: perfectly with dynamic_count; energy does not, because its weights
#: are skewed toward memory traffic, and registers is independent of
#: all three)
PARETO_OBJECTIVES = ("code_size", "dynamic_count", "energy", "registers")


class CostVector(NamedTuple):
    """One instance's price on every objective (all exact integers)."""

    code_size: int
    dynamic_count: int
    cycles: int
    energy: int
    registers: int

    def to_dict(self) -> Dict[str, int]:
        return {name: int(getattr(self, name)) for name in OBJECTIVES}


def register_pressure(func: Function) -> int:
    """Distinct hardware registers referenced by *func*.

    Pseudo registers are ignored: before register assignment they are
    unbounded in number and cost nothing; what the target pays for is
    hardware registers live across the function.
    """
    registers = set()
    for block in func.blocks:
        for inst in block.insts:
            for expr in _expressions(inst):
                for node in expr.walk():
                    if isinstance(node, Reg) and not node.pseudo:
                        registers.add(node.index)
    return len(registers)


def _expressions(inst: Instruction) -> Iterator:
    if isinstance(inst, Assign):
        yield inst.dst
        yield inst.src
    elif isinstance(inst, Compare):
        yield inst.left
        yield inst.right


def _classify(inst: Instruction) -> Dict[str, int]:
    """Count the weighted features of one instruction."""
    features = {"mul": 0, "div": 0, "rem": 0, "load": 0, "store": 0,
                "branch": 0, "call": 0}
    if isinstance(inst, Call):
        features["call"] = 1
        features["load"] = 1
        features["store"] = 1
        return features
    if isinstance(inst, CondBranch):
        features["branch"] = 1
        return features
    for expr in _expressions(inst):
        for node in expr.walk():
            if isinstance(node, BinOp) and node.op in ("mul", "div", "rem"):
                features[node.op] += 1
    if inst.reads_memory():
        features["load"] += 1
    if inst.writes_memory():
        features["store"] += 1
    return features


def instruction_cycles(inst: Instruction) -> int:
    """Latency proxy of one instruction (base cycle + extras)."""
    features = _classify(inst)
    return 1 + sum(CYCLE_WEIGHTS[name] * count for name, count in features.items())


def instruction_energy(inst: Instruction) -> int:
    """Energy proxy of one instruction (base unit + extras)."""
    features = _classify(inst)
    return 1 + sum(ENERGY_WEIGHTS[name] * count for name, count in features.items())


class CostModel:
    """Price function instances as :class:`CostVector`\\ s.

    Wraps a :class:`~repro.core.dynamic.DynamicCountOracle`: all four
    objectives derive from the same per-block frequencies, so pricing
    a space multi-objectively executes the VM no more often than
    pricing dynamic counts alone (once per distinct control flow).
    """

    def __init__(self, oracle: DynamicCountOracle):
        self.oracle = oracle

    @property
    def executions(self) -> int:
        return self.oracle.executions

    # ------------------------------------------------------------------

    def vector_for(self, func: Function, cf_crc: Optional[int] = None) -> CostVector:
        """Price an arbitrary function instance."""
        frequencies = self.oracle.block_frequencies(func, cf_crc)
        dynamic = cycles = energy = 0
        for count, block in zip(frequencies, func.blocks):
            if not count:
                continue
            dynamic += count * len(block.insts)
            cycles += count * sum(instruction_cycles(inst) for inst in block.insts)
            energy += count * sum(instruction_energy(inst) for inst in block.insts)
        return CostVector(
            func.num_instructions(),
            dynamic,
            cycles,
            energy,
            register_pressure(func),
        )

    def node_vector(self, node: SpaceNode) -> CostVector:
        if node.function is None:
            raise MissingFunctionError(
                f"{self.oracle.function_name}: node #{node.node_id} carries "
                "no function instance; enumerate with keep_functions=True or "
                "rebuild the instances with "
                "repro.core.dag.materialize_instances(dag, root_func)"
            )
        return self.vector_for(node.function, node.cf_crc)

    def price_leaves(self, dag: SpaceDAG) -> Dict[int, CostVector]:
        """Cost vectors for every leaf instance of the space."""
        leaves = dag.leaves()
        priced = {
            node.node_id: self.node_vector(node)
            for node in leaves
            if node.function is not None
        }
        if not priced and leaves:
            raise MissingFunctionError(
                f"{self.oracle.function_name}: none of the {len(leaves)} "
                "leaves carries a function instance; enumerate with "
                "keep_functions=True or rebuild the instances with "
                "repro.core.dag.materialize_instances(dag, root_func)"
            )
        return priced

    def price_space(self, dag: SpaceDAG) -> Dict[int, CostVector]:
        """Cost vectors for every node of the space."""
        priced = {
            node.node_id: self.node_vector(node)
            for node in dag.nodes.values()
            if node.function is not None
        }
        if not priced and dag.nodes:
            raise MissingFunctionError(
                f"{self.oracle.function_name}: no node carries a function "
                "instance; enumerate with keep_functions=True or rebuild "
                "the instances with "
                "repro.core.dag.materialize_instances(dag, root_func)"
            )
        return priced

    # ------------------------------------------------------------------

    @staticmethod
    def optimum(
        prices: Dict[int, CostVector], objective: str = "dynamic_count"
    ) -> Tuple[int, int]:
        """``(node_id, value)`` minimizing one objective (ties break on
        the lowest node id, so the optimum is deterministic)."""
        if objective not in OBJECTIVES:
            raise ValueError(
                f"bad objective {objective!r}; expected one of {OBJECTIVES}"
            )
        if not prices:
            raise ValueError("no priced nodes to take an optimum over")
        node_id = min(
            prices, key=lambda nid: (getattr(prices[nid], objective), nid)
        )
        return node_id, int(getattr(prices[node_id], objective))


def _dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """Minimization dominance: *a* is no worse anywhere, better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(
    prices: Dict[int, CostVector],
    objectives: Iterable[str] = PARETO_OBJECTIVES,
    keys: Optional[Dict[int, object]] = None,
) -> List[Tuple[int, Tuple[int, ...]]]:
    """The non-dominated set of *prices* on the chosen objectives.

    Returns ``[(node_id, values), ...]`` sorted by objective values
    (then node id).  Instances with identical objective values collapse
    to one representative, so the frontier's length counts genuinely
    distinct trade-off points.

    Without *keys* the representative is the lowest node id.  Node ids
    are assignment-order artifacts, though — parallel merge order or
    semantic collapse renumber the same space — so callers that need a
    frontier stable across equivalent runs pass ``keys`` mapping node
    ids to their content-derived node keys; ties then break on the
    key's repr (then node id), which survives renumbering.
    """
    objectives = tuple(objectives)
    for name in objectives:
        if name not in OBJECTIVES:
            raise ValueError(
                f"bad objective {name!r}; expected one of {OBJECTIVES}"
            )
    if keys is None:
        ordered = sorted(prices)
    else:
        ordered = sorted(
            prices, key=lambda nid: (repr(keys.get(nid)), nid)
        )
    # one representative per distinct point: first in the stable order
    points: Dict[Tuple[int, ...], int] = {}
    for node_id in ordered:
        values = tuple(int(getattr(prices[node_id], name)) for name in objectives)
        points.setdefault(values, node_id)
    frontier = [
        (node_id, values)
        for values, node_id in points.items()
        if not any(
            _dominates(other, values) for other in points if other != values
        )
    ]
    frontier.sort(key=lambda item: (item[1], item[0]))
    return frontier
