"""Genetic algorithm search for effective phase sequences.

The paper's related work ([3], [4], [14]) searches the attempted space
with genetic algorithms instead of enumerating it; its section 7
proposes two improvements that this module implements:

- **redundancy detection by fingerprinting** ([14], also section 4.2):
  sequences producing an already-seen function instance are not
  re-evaluated — the fitness cache is keyed by the instance
  fingerprint, not the sequence text;
- **interaction-guided mutation** (section 7): instead of uniform
  random phases, mutations sample the next phase from the measured
  enabling probabilities given the preceding gene, so the search
  spends its budget on sequences whose phases can actually be active.

With the space enumerated exhaustively (this repository's main
result), the GA's answer can be *checked against the true optimum* —
see ``tests/search/test_genetic.py`` and ``repro search-bench``
(docs/SEARCH.md).

The shared result type and objectives live in
:mod:`repro.search.common`; ``GeneticSearchResult``,
``codesize_objective`` and ``dynamic_count_objective`` are re-exported
here for backward compatibility.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.interactions import InteractionAnalysis
from repro.ir.function import Function
from repro.machine.target import Target
from repro.opt import PHASE_IDS
from repro.search.common import (  # noqa: F401  (re-exports)
    GeneticSearchResult,
    SearchResult,
    SearchStrategy,
    codesize_objective,
    dynamic_count_objective,
)


class GeneticSearcher(SearchStrategy):
    """Search phase sequences with a generational GA.

    Chromosomes are fixed-length phase-id strings; applying one means
    attempting each phase in order (dormant attempts are no-ops, as in
    the paper's GA experiments).
    """

    name = "ga"

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        population_size: int = 16,
        generations: int = 20,
        mutation_rate: float = 0.15,
        elite: int = 2,
        seed: int = 2006,
        interactions: Optional[InteractionAnalysis] = None,
        target: Optional[Target] = None,
    ):
        super().__init__(
            func,
            objective,
            sequence_length=sequence_length,
            seed=seed,
            target=target,
        )
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.interactions = interactions

    # ------------------------------------------------------------------
    # Chromosome construction
    # ------------------------------------------------------------------

    def _sample_phase(self, previous: Optional[str]) -> str:
        """Next gene: uniform, or weighted by enabling probabilities."""
        if self.interactions is None:
            return self.rng.choice(PHASE_IDS)
        if previous is None:
            weights = [
                max(self.interactions.start.get(pid, 0.0), 0.02)
                for pid in PHASE_IDS
            ]
        else:
            weights = [
                max(
                    self.interactions.enabling.get(pid, {}).get(previous, 0.0),
                    0.02,
                )
                for pid in PHASE_IDS
            ]
        return self.rng.choices(PHASE_IDS, weights=weights, k=1)[0]

    def _random_sequence(self) -> Tuple[str, ...]:
        sequence: List[str] = []
        previous: Optional[str] = None
        for _ in range(self.sequence_length):
            gene = self._sample_phase(previous)
            sequence.append(gene)
            previous = gene
        return tuple(sequence)

    # ------------------------------------------------------------------
    # GA operators
    # ------------------------------------------------------------------

    def _crossover(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
        point = self.rng.randrange(1, self.sequence_length)
        return a[:point] + b[point:]

    def _mutate(self, sequence: Tuple[str, ...]) -> Tuple[str, ...]:
        genes = list(sequence)
        for i in range(len(genes)):
            if self.rng.random() < self.mutation_rate:
                previous = genes[i - 1] if i > 0 else None
                genes[i] = self._sample_phase(previous)
        return tuple(genes)

    def _tournament(self, scored) -> Tuple[str, ...]:
        a, b = self.rng.sample(scored, 2)
        return a[1] if a[0] <= b[0] else b[1]

    # ------------------------------------------------------------------

    def run(self) -> SearchResult:
        population = [self._random_sequence() for _ in range(self.population_size)]
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = population[0]
        best_function = self.base.clone()
        history: List[float] = []

        for _generation in range(self.generations):
            scored = []
            for sequence in population:
                fitness, func = self._evaluate(sequence)
                scored.append((fitness, sequence))
                if fitness < best_fitness:
                    best_fitness = fitness
                    best_sequence = sequence
                    best_function = func
            history.append(best_fitness)
            scored.sort(key=lambda pair: (pair[0], pair[1]))
            next_population = [seq for (_f, seq) in scored[: self.elite]]
            while len(next_population) < self.population_size:
                parent_a = self._tournament(scored)
                parent_b = self._tournament(scored)
                child = self._crossover(parent_a, parent_b)
                next_population.append(self._mutate(child))
            population = next_population

        return self._result(best_sequence, best_fitness, best_function, history)
