"""Genetic algorithm search for effective phase sequences.

The paper's related work ([3], [4], [14]) searches the attempted space
with genetic algorithms instead of enumerating it; its section 7
proposes two improvements that this module implements:

- **redundancy detection by fingerprinting** ([14], also section 4.2):
  sequences producing an already-seen function instance are not
  re-evaluated — the fitness cache is keyed by the instance
  fingerprint, not the sequence text;
- **interaction-guided mutation** (section 7): instead of uniform
  random phases, mutations sample the next phase from the measured
  enabling probabilities given the preceding gene, so the search
  spends its budget on sequences whose phases can actually be active.

With the space enumerated exhaustively (this repository's main
result), the GA's answer can be *checked against the true optimum* —
see ``tests/search/test_genetic.py`` and the ablation bench.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fingerprint import fingerprint_function
from repro.core.interactions import InteractionAnalysis
from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.opt import PHASE_IDS, apply_phase, phase_by_id


def codesize_objective(func: Function) -> float:
    """Static instruction count (the paper's code-size criterion)."""
    return float(func.num_instructions())


def dynamic_count_objective(run: Callable[[Function], int]):
    """Wrap a measurement callback into an objective."""

    def objective(func: Function) -> float:
        return float(run(func))

    return objective


class GeneticSearchResult:
    """Outcome of one GA search."""

    __slots__ = (
        "best_sequence",
        "best_fitness",
        "best_function",
        "evaluations",
        "cache_hits",
        "history",
    )

    def __init__(self, best_sequence, best_fitness, best_function, evaluations, cache_hits, history):
        self.best_sequence = best_sequence
        self.best_fitness = best_fitness
        self.best_function = best_function
        #: objective evaluations actually performed
        self.evaluations = evaluations
        #: evaluations avoided by the fingerprint cache
        self.cache_hits = cache_hits
        #: best fitness after each generation
        self.history = history

    def __repr__(self):
        return (
            f"<GeneticSearchResult fitness={self.best_fitness} "
            f"seq={''.join(self.best_sequence)} evals={self.evaluations}>"
        )


class GeneticSearcher:
    """Search phase sequences with a generational GA.

    Chromosomes are fixed-length phase-id strings; applying one means
    attempting each phase in order (dormant attempts are no-ops, as in
    the paper's GA experiments).
    """

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        population_size: int = 16,
        generations: int = 20,
        mutation_rate: float = 0.15,
        elite: int = 2,
        seed: int = 2006,
        interactions: Optional[InteractionAnalysis] = None,
        target: Optional[Target] = None,
    ):
        self.base = func.clone()
        self.objective = objective
        self.sequence_length = sequence_length
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.rng = random.Random(seed)
        self.interactions = interactions
        self.target = target or DEFAULT_TARGET
        self._fitness_by_instance: Dict[object, float] = {}
        self.evaluations = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Chromosome construction
    # ------------------------------------------------------------------

    def _sample_phase(self, previous: Optional[str]) -> str:
        """Next gene: uniform, or weighted by enabling probabilities."""
        if self.interactions is None:
            return self.rng.choice(PHASE_IDS)
        if previous is None:
            weights = [
                max(self.interactions.start.get(pid, 0.0), 0.02)
                for pid in PHASE_IDS
            ]
        else:
            weights = [
                max(
                    self.interactions.enabling.get(pid, {}).get(previous, 0.0),
                    0.02,
                )
                for pid in PHASE_IDS
            ]
        return self.rng.choices(PHASE_IDS, weights=weights, k=1)[0]

    def _random_sequence(self) -> Tuple[str, ...]:
        sequence: List[str] = []
        previous: Optional[str] = None
        for _ in range(self.sequence_length):
            gene = self._sample_phase(previous)
            sequence.append(gene)
            previous = gene
        return tuple(sequence)

    # ------------------------------------------------------------------
    # Evaluation (fingerprint-cached)
    # ------------------------------------------------------------------

    def _apply(self, sequence: Sequence[str]) -> Function:
        func = self.base.clone()
        for phase_id in sequence:
            apply_phase(func, phase_by_id(phase_id), self.target)
        return func

    def _evaluate(self, sequence: Sequence[str]) -> Tuple[float, Function]:
        func = self._apply(sequence)
        key = fingerprint_function(func).key
        cached = self._fitness_by_instance.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached, func
        fitness = self.objective(func)
        self._fitness_by_instance[key] = fitness
        self.evaluations += 1
        return fitness, func

    # ------------------------------------------------------------------
    # GA operators
    # ------------------------------------------------------------------

    def _crossover(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
        point = self.rng.randrange(1, self.sequence_length)
        return a[:point] + b[point:]

    def _mutate(self, sequence: Tuple[str, ...]) -> Tuple[str, ...]:
        genes = list(sequence)
        for i in range(len(genes)):
            if self.rng.random() < self.mutation_rate:
                previous = genes[i - 1] if i > 0 else None
                genes[i] = self._sample_phase(previous)
        return tuple(genes)

    def _tournament(self, scored) -> Tuple[str, ...]:
        a, b = self.rng.sample(scored, 2)
        return a[1] if a[0] <= b[0] else b[1]

    # ------------------------------------------------------------------

    def run(self) -> GeneticSearchResult:
        population = [self._random_sequence() for _ in range(self.population_size)]
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = population[0]
        best_function = self.base.clone()
        history: List[float] = []

        for _generation in range(self.generations):
            scored = []
            for sequence in population:
                fitness, func = self._evaluate(sequence)
                scored.append((fitness, sequence))
                if fitness < best_fitness:
                    best_fitness = fitness
                    best_sequence = sequence
                    best_function = func
            history.append(best_fitness)
            scored.sort(key=lambda pair: (pair[0], pair[1]))
            next_population = [seq for (_f, seq) in scored[: self.elite]]
            while len(next_population) < self.population_size:
                parent_a = self._tournament(scored)
                parent_b = self._tournament(scored)
                child = self._crossover(parent_a, parent_b)
                next_population.append(self._mutate(child))
            population = next_population

        return GeneticSearchResult(
            best_sequence,
            best_fitness,
            best_function,
            self.evaluations,
            self.cache_hits,
            history,
        )
