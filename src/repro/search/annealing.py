"""Simulated annealing over fixed-length phase sequences.

The related work's observation that the space "contains enough local
minima" [9] cuts both ways: a pure descent gets stuck where an
annealer escapes.  The neighbor move is the hill climber's (one
position replaced), acceptance follows Metropolis on the *relative*
fitness change (objectives here range from tens of instructions to
hundreds of thousands of dynamic instructions, so the temperature is
scale-free), and the temperature cools geometrically.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.ir.function import Function
from repro.machine.target import Target
from repro.opt import PHASE_IDS
from repro.search.common import SearchResult, SearchStrategy, codesize_objective


class SimulatedAnnealer(SearchStrategy):
    """Metropolis search with a geometric cooling schedule."""

    name = "anneal"

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        steps: int = 120,
        start_temperature: float = 0.10,
        cooling: float = 0.97,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        super().__init__(
            func,
            objective,
            sequence_length=sequence_length,
            seed=seed,
            target=target,
        )
        self.steps = steps
        self.start_temperature = start_temperature
        self.cooling = cooling

    def _neighbor(self, sequence: Tuple[str, ...]) -> Tuple[str, ...]:
        position = self.rng.randrange(self.sequence_length)
        alternatives = [pid for pid in PHASE_IDS if pid != sequence[position]]
        replacement = self.rng.choice(alternatives)
        return sequence[:position] + (replacement,) + sequence[position + 1 :]

    def run(self) -> SearchResult:
        current = self._random_sequence()
        current_fitness, current_function = self._evaluate(current)
        best_sequence, best_fitness = current, current_fitness
        best_function = current_function
        history: List[float] = [best_fitness]
        temperature = self.start_temperature
        for _ in range(self.steps):
            candidate = self._neighbor(current)
            fitness, func = self._evaluate(candidate)
            delta = (fitness - current_fitness) / max(current_fitness, 1.0)
            if delta <= 0 or (
                temperature > 1e-12
                and self.rng.random() < math.exp(-delta / temperature)
            ):
                current, current_fitness = candidate, fitness
                if fitness < best_fitness:
                    best_sequence, best_fitness = candidate, fitness
                    best_function = func
            history.append(best_fitness)
            temperature *= self.cooling
        return self._result(best_sequence, best_fitness, best_function, history)
