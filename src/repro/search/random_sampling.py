"""Uniform random sampling — the null hypothesis of the strategy zoo.

Figure 5 of the paper shows the leaf codesize distribution is heavily
concentrated near the optimum for many functions; when that holds,
plain random sampling is hard to beat and every smarter strategy must
justify its machinery against it.  The sampler draws fixed-length
uniform sequences, prices them through the shared fingerprint cache,
and keeps the best.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.ir.function import Function
from repro.machine.target import Target
from repro.search.common import SearchResult, SearchStrategy, codesize_objective


class RandomSampler(SearchStrategy):
    """Evaluate *samples* independent uniform random sequences."""

    name = "random"

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        samples: int = 120,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        super().__init__(
            func,
            objective,
            sequence_length=sequence_length,
            seed=seed,
            target=target,
        )
        self.samples = samples

    def run(self) -> SearchResult:
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = ()
        best_function = self.base.clone()
        history: List[float] = []
        for _ in range(self.samples):
            sequence = self._random_sequence()
            fitness, func = self._evaluate(sequence)
            if fitness < best_fitness:
                best_fitness = fitness
                best_sequence = sequence
                best_function = func
            history.append(best_fitness)
        return self._result(best_sequence, best_fitness, best_function, history)
