"""Oracle harness: score every search strategy against exhaustion.

The exhaustive enumerations of sections 4-5 are normally the *product*
of this repo; here they are the *measuring instrument*.  For a seed
function whose space fits in memory, the true optimum over every
enumerated instance is known, so a heuristic search can be scored on
exactly the questions the paper's section 7 leaves open: how close
does it get (distance-to-optimal), how often does it land on the
optimum (probability-of-optimal), and what does it spend to get there
(attempted-phase budget — the same currency as Table 3's ``Attempt``
column)?

The harness enumerates each seed function's full space (or loads it
from a :class:`~repro.parallel.store.SpaceStore`, rebuilding the
instances with :func:`~repro.core.dag.materialize_instances`), prices
every instance with the multi-objective
:class:`~repro.search.cost.CostModel` (one VM execution per distinct
control flow), extracts single-objective optima and the leaf Pareto
frontier, then runs every registered strategy for several independent
trials and writes a JSON leaderboard.

A structural invariant checked here and in CI: a strategy applies
phase sequences starting from the enumeration root, so every instance
it visits is *in* the enumerated space, and the exhaustive optimum can
never be beaten.  ``beats_oracle`` must stay ``False`` everywhere —
a ``True`` would mean the enumeration or the search is broken.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.dag import SpaceDAG, materialize_instances
from repro.core.dynamic import DynamicCountOracle
from repro.core.enumeration import EnumerationConfig, enumerate_space, _node_key
from repro.core.fingerprint import fingerprint_function
from repro.core.interactions import InteractionAnalysis, analyze_interactions
from repro.ir.function import Function, Program
from repro.observability import tracer as _obs
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS, compile_benchmark
from repro.search.annealing import SimulatedAnnealer
from repro.search.bandit import BanditSearcher
from repro.search.common import SearchResult, SearchStrategy
from repro.search.cost import (
    OBJECTIVES,
    PARETO_OBJECTIVES,
    CostModel,
    CostVector,
    pareto_frontier,
)
from repro.search.genetic import GeneticSearcher
from repro.search.hillclimb import HillClimber
from repro.search.policy import TableDrivenPolicy
from repro.search.random_sampling import RandomSampler

SCHEMA_VERSION = 1

#: default leaderboard location (CI's search-smoke job asserts on it)
DEFAULT_OUT = os.path.join("benchmarks", "results", "search.json")


class SeedFunction(NamedTuple):
    """One scored function: a bundled benchmark and a function name."""

    benchmark: str
    function: str

    @property
    def label(self) -> str:
        return f"{self.benchmark}.{self.function}"


#: one study function per paper benchmark (Table 2's six categories),
#: each chosen so its full space enumerates in well under a minute.
#: sha.rol is the frontier showcase: its four leaves include a genuine
#: code-size/register-pressure trade-off (see docs/SEARCH.md).
SEED_FUNCTIONS: Tuple[SeedFunction, ...] = (
    SeedFunction("bitcount", "ntbl_bitcount"),
    SeedFunction("dijkstra", "next_rand"),
    SeedFunction("fft", "fcos"),
    SeedFunction("jpeg", "descale"),
    SeedFunction("sha", "rol"),
    SeedFunction("stringsearch", "set_pattern"),
)

#: the CI subset: the two cheapest spaces that still exercise a
#: multi-point Pareto frontier (sha.rol) and a multi-leaf space
QUICK_FUNCTIONS: Tuple[SeedFunction, ...] = (
    SeedFunction("sha", "rol"),
    SeedFunction("jpeg", "descale"),
)


def _build_ga(func, objective, seed, interactions):
    return GeneticSearcher(
        func,
        objective,
        population_size=12,
        generations=10,
        seed=seed,
        interactions=interactions,
    )


def _build_hillclimb(func, objective, seed, interactions):
    return HillClimber(func, objective, restarts=3, max_steps=40, seed=seed)


def _build_random(func, objective, seed, interactions):
    return RandomSampler(func, objective, samples=120, seed=seed)


def _build_bandit_eps(func, objective, seed, interactions):
    return BanditSearcher(func, objective, episodes=120, policy="epsilon", seed=seed)


def _build_bandit_ucb(func, objective, seed, interactions):
    return BanditSearcher(func, objective, episodes=120, policy="ucb", seed=seed)


def _build_anneal(func, objective, seed, interactions):
    return SimulatedAnnealer(func, objective, steps=120, seed=seed)


def _build_policy(func, objective, seed, interactions):
    return TableDrivenPolicy(func, interactions, objective, rollouts=24, seed=seed)


#: strategy name -> builder(func, objective, seed, interactions).
#: Budgets are roughly matched (~120 sequence evaluations each) so the
#: leaderboard compares search quality, not raw budget; the policy
#: strategy is adaptive and typically spends far less.
STRATEGY_BUILDERS: Dict[str, Callable[..., SearchStrategy]] = {
    "ga": _build_ga,
    "hillclimb": _build_hillclimb,
    "random": _build_random,
    "bandit-eps": _build_bandit_eps,
    "bandit-ucb": _build_bandit_ucb,
    "anneal": _build_anneal,
    "policy": _build_policy,
}


class HarnessConfig(NamedTuple):
    """Knobs of one ``repro search-bench`` run."""

    functions: Tuple[SeedFunction, ...] = SEED_FUNCTIONS
    strategies: Tuple[str, ...] = tuple(STRATEGY_BUILDERS)
    trials: int = 3
    seed: int = 2006
    objective: str = "dynamic_count"
    max_nodes: int = 20_000
    time_limit: Optional[float] = None
    store: Optional[str] = None
    quick: bool = False


def quick_config(**overrides) -> HarnessConfig:
    """The CI configuration: two functions, two trials."""
    settings = dict(functions=QUICK_FUNCTIONS, trials=2, quick=True)
    settings.update(overrides)
    return HarnessConfig(**settings)


# ----------------------------------------------------------------------
# Space preparation
# ----------------------------------------------------------------------


def _enumeration_config(config: HarnessConfig) -> EnumerationConfig:
    # keep_functions stays off so store-loaded and freshly enumerated
    # spaces go through the same materialize_instances path (and the
    # same store signature).
    return EnumerationConfig(
        max_nodes=config.max_nodes,
        time_limit=config.time_limit,
    )


def _prepare_space(seed_func: SeedFunction, config: HarnessConfig):
    """Enumerate (or load) one seed function's space, instances attached.

    Returns ``(program, root_func, dag, space_info)``.
    """
    from repro.parallel.store import SpaceStore

    program = compile_benchmark(seed_func.benchmark)
    func = program.functions.get(seed_func.function)
    if func is None:
        raise ValueError(
            f"benchmark {seed_func.benchmark!r} has no function "
            f"{seed_func.function!r}"
        )
    implicit_cleanup(func)
    enum_config = _enumeration_config(config)
    fingerprint = fingerprint_function(
        func, keep_text=enum_config.exact, remap=enum_config.remap
    )
    root_key = _node_key(fingerprint, func)

    store = SpaceStore(config.store) if config.store else None
    result = None
    from_store = False
    if store is not None:
        result = store.get(seed_func.function, root_key, enum_config)
        from_store = result is not None
    if result is None:
        result = enumerate_space(func, enum_config)
        if not result.completed:
            raise ValueError(
                f"{seed_func.label}: space not fully enumerated "
                f"({result.abort_reason}); the exhaustive optimum would be "
                "a lie — raise --max-nodes or pick a smaller function"
            )
        if store is not None:
            store.put(seed_func.function, root_key, enum_config, result)
    if not result.completed:
        raise ValueError(
            f"{seed_func.label}: stored space is incomplete; "
            "refusing to score against a truncated optimum"
        )
    materialized = materialize_instances(result.dag, func)
    space_info = {
        "nodes": len(result.dag),
        "leaves": len(result.dag.leaves()),
        "levels": result.dag.depth(),
        "control_flows": result.dag.distinct_control_flows(),
        "attempted_phases": result.attempted_phases,
        "from_store": from_store,
        "materialized_edges": materialized,
    }
    return program, func, result, space_info


def _optima(prices: Dict[int, CostVector]) -> Dict[str, Dict[str, int]]:
    """Per-objective minimum over *prices* (deterministic tie-break)."""
    return {
        name: dict(
            zip(("node", "value"), CostModel.optimum(prices, name))
        )
        for name in OBJECTIVES
    }


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


def _score_strategy(
    name: str,
    builder: Callable[..., SearchStrategy],
    func: Function,
    objective: Callable[[Function], float],
    interactions: InteractionAnalysis,
    optimal_value: int,
    config: HarnessConfig,
) -> Dict[str, object]:
    trials: List[Dict[str, object]] = []
    hits = 0
    for trial in range(config.trials):
        trial_seed = config.seed + trial
        strategy = builder(func, objective, trial_seed, interactions)
        result: SearchResult = strategy.run()
        fitness = int(result.best_fitness)
        if fitness == optimal_value:
            hits += 1
        trials.append(
            {
                "seed": trial_seed,
                "fitness": fitness,
                "sequence": list(result.best_sequence),
                "evaluations": result.evaluations,
                "cache_hits": result.cache_hits,
                "attempted_phases": result.attempted_phases,
            }
        )
    best = min(trial["fitness"] for trial in trials)
    mean = sum(trial["fitness"] for trial in trials) / len(trials)
    scale = max(float(optimal_value), 1.0)
    return {
        "trials": trials,
        "best_fitness": best,
        "mean_fitness": mean,
        "best_distance": best - optimal_value,
        "mean_distance": mean - optimal_value,
        "mean_ratio": mean / scale,
        "p_optimal": hits / len(trials),
        "mean_attempted": sum(t["attempted_phases"] for t in trials) / len(trials),
        "beats_oracle": best < optimal_value,
    }


def run_search_bench(config: HarnessConfig = HarnessConfig()) -> Dict[str, object]:
    """Run the full harness; returns the leaderboard dict."""
    unknown = [name for name in config.strategies if name not in STRATEGY_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown strategies {unknown}; "
            f"registered: {', '.join(STRATEGY_BUILDERS)}"
        )
    if config.objective not in OBJECTIVES:
        raise ValueError(
            f"bad objective {config.objective!r}; expected one of {OBJECTIVES}"
        )
    tracer = _obs.ACTIVE
    if tracer is not None:
        tracer.emit(
            "search_start",
            functions=len(config.functions),
            strategies=len(config.strategies),
        )
    started = time.monotonic()
    functions: Dict[str, Dict[str, object]] = {}
    for seed_func in config.functions:
        program, func, enum_result, space_info = _prepare_space(seed_func, config)
        dag = enum_result.dag
        entry = PROGRAMS[seed_func.benchmark].entry
        oracle = DynamicCountOracle(
            program, seed_func.function, lambda vm: vm.run(entry, ())
        )
        model = CostModel(oracle)
        space_prices = model.price_space(dag)
        leaf_prices = model.price_leaves(dag)
        space_info["oracle_executions"] = model.executions
        frontier = pareto_frontier(
            leaf_prices,
            keys={nid: dag.nodes[nid].key for nid in leaf_prices},
        )
        optimal = _optima(space_prices)
        optimal_value = optimal[config.objective]["value"]
        if tracer is not None:
            tracer.emit(
                "search_space",
                function=seed_func.label,
                nodes=space_info["nodes"],
                leaves=space_info["leaves"],
                pareto=len(frontier),
            )
        interactions = analyze_interactions([enum_result])

        def objective(candidate: Function) -> float:
            return float(getattr(model.vector_for(candidate), config.objective))

        strategies: Dict[str, Dict[str, object]] = {}
        for name in config.strategies:
            scored = _score_strategy(
                name,
                STRATEGY_BUILDERS[name],
                func,
                objective,
                interactions,
                optimal_value,
                config,
            )
            strategies[name] = scored
            if tracer is not None:
                tracer.emit(
                    "search_strategy",
                    function=seed_func.label,
                    strategy=name,
                    fitness=scored["best_fitness"],
                    distance=scored["best_distance"],
                    attempted=scored["mean_attempted"],
                )
        functions[seed_func.label] = {
            "benchmark": seed_func.benchmark,
            "function": seed_func.function,
            "space": space_info,
            "optimal": optimal,
            "optimal_leaf": _optima(leaf_prices),
            "pareto": {
                "objectives": list(PARETO_OBJECTIVES),
                "points": [
                    {
                        "node": node_id,
                        "values": dict(zip(PARETO_OBJECTIVES, values)),
                        "is_leaf": dag.nodes[node_id].is_leaf(),
                    }
                    for node_id, values in frontier
                ],
            },
            "strategies": strategies,
        }
    leaderboard = {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro search-bench",
        "quick": config.quick,
        "objective": config.objective,
        "pareto_objectives": list(PARETO_OBJECTIVES),
        "trials": config.trials,
        "seed": config.seed,
        "elapsed": round(time.monotonic() - started, 3),
        "functions": functions,
        "ranking": _ranking(functions, config.strategies),
    }
    if tracer is not None:
        tracer.emit(
            "search_done",
            functions=len(functions),
            strategies=len(config.strategies),
        )
    return leaderboard


def _ranking(
    functions: Dict[str, Dict[str, object]], strategies: Sequence[str]
) -> List[Dict[str, object]]:
    """Cross-function ranking: mean of per-function mean ratios.

    The ratio (mean fitness / exhaustive optimum, >= 1.0) normalizes
    across functions whose objectives differ by orders of magnitude;
    ties break on attempted-phase budget, then name.
    """
    rows = []
    for name in strategies:
        ratios = [
            entry["strategies"][name]["mean_ratio"]
            for entry in functions.values()
        ]
        p_optimal = [
            entry["strategies"][name]["p_optimal"]
            for entry in functions.values()
        ]
        attempted = [
            entry["strategies"][name]["mean_attempted"]
            for entry in functions.values()
        ]
        count = max(len(ratios), 1)
        rows.append(
            {
                "strategy": name,
                "mean_ratio": sum(ratios) / count,
                "p_optimal": sum(p_optimal) / count,
                "mean_attempted": sum(attempted) / count,
                "beats_oracle": any(
                    entry["strategies"][name]["beats_oracle"]
                    for entry in functions.values()
                ),
            }
        )
    rows.sort(
        key=lambda row: (
            row["mean_ratio"],
            -row["p_optimal"],
            row["mean_attempted"],
            row["strategy"],
        )
    )
    return rows


# ----------------------------------------------------------------------
# Rendering / persistence
# ----------------------------------------------------------------------


def format_leaderboard(leaderboard: Dict[str, object]) -> str:
    """Human-readable leaderboard (the ``repro search-bench`` output)."""
    lines: List[str] = []
    objective = leaderboard["objective"]
    lines.append(
        f"search-bench: objective={objective} trials={leaderboard['trials']} "
        f"seed={leaderboard['seed']}"
    )
    for label, entry in leaderboard["functions"].items():
        space = entry["space"]
        optimal = entry["optimal"][objective]
        lines.append(
            f"\n{label}: {space['nodes']} instances, {space['leaves']} leaves, "
            f"{space['control_flows']} control flows, "
            f"{space['oracle_executions']} executions"
            f"{' (from store)' if space['from_store'] else ''}"
        )
        lines.append(
            f"  exhaustive optimum: {objective}={optimal['value']} "
            f"(node {optimal['node']})"
        )
        points = entry["pareto"]["points"]
        lines.append(
            f"  pareto frontier ({' x '.join(entry['pareto']['objectives'])}): "
            f"{len(points)} point(s)"
        )
        for point in points:
            values = ", ".join(
                f"{name}={value}" for name, value in point["values"].items()
            )
            lines.append(f"    node {point['node']}: {values}")
        lines.append(
            f"  {'strategy':<12} {'best':>10} {'mean':>12} {'dist':>8} "
            f"{'p(opt)':>7} {'attempted':>10}"
        )
        for name, scored in entry["strategies"].items():
            lines.append(
                f"  {name:<12} {scored['best_fitness']:>10} "
                f"{scored['mean_fitness']:>12.1f} {scored['best_distance']:>8} "
                f"{scored['p_optimal']:>7.2f} {scored['mean_attempted']:>10.1f}"
            )
    lines.append("\nranking (mean fitness / exhaustive optimum, lower is better):")
    for position, row in enumerate(leaderboard["ranking"], start=1):
        lines.append(
            f"  {position}. {row['strategy']:<12} ratio={row['mean_ratio']:.4f} "
            f"p(opt)={row['p_optimal']:.2f} "
            f"attempted={row['mean_attempted']:.1f}"
        )
    return "\n".join(lines)


def write_leaderboard(
    leaderboard: Dict[str, object], path: str = DEFAULT_OUT
) -> str:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(leaderboard, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
