"""Shared search-strategy interface, result type, and objectives.

Every non-exhaustive search in :mod:`repro.search` — the GA, the hill
climber, the bandits, simulated annealing, random sampling, and the
table-driven probabilistic policy — answers the same question the
paper's related work ([3], [4], [5], [9], [14]) asks: *how close to
the true optimum does a budgeted search get?*  With the space
enumerated exhaustively (this repository's main result) that question
has an exact answer, so all strategies share one result type and one
budget currency:

- :class:`SearchResult` — the best sequence/fitness/function found,
  plus the accounting the oracle harness scores: objective
  ``evaluations`` actually performed, evaluations avoided by the
  fingerprint cache, and ``attempted_phases`` (every phase
  application, active or dormant — the same unit as Table 3's
  "Attempt" column, so a strategy's budget is directly comparable to
  the exhaustive enumeration's);
- :class:`SearchStrategy` — the common machinery: a cloned base
  instance, a seeded RNG, fingerprint-cached evaluation (sequences
  that produce an already-seen instance are not re-priced, the
  section 4.2 redundancy detection applied to searching), and
  attempted-phase accounting.

:class:`SearchResult` was extracted from the GA-centric
``search/genetic.py`` (where it was ``GeneticSearchResult``); the old
name is re-exported there and here for backward compatibility.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fingerprint import fingerprint_function
from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.opt import PHASE_IDS, apply_phase, phase_by_id


def codesize_objective(func: Function) -> float:
    """Static instruction count (the paper's code-size criterion)."""
    return float(func.num_instructions())


def dynamic_count_objective(run: Callable[[Function], int]):
    """Wrap a measurement callback into an objective."""

    def objective(func: Function) -> float:
        return float(run(func))

    return objective


class SearchResult:
    """Outcome of one search run, whatever the strategy.

    The first six fields (and their positional order) are the legacy
    ``GeneticSearchResult`` contract; ``strategy`` and
    ``attempted_phases`` are the search-lab additions and keyword-only.
    """

    __slots__ = (
        "best_sequence",
        "best_fitness",
        "best_function",
        "evaluations",
        "cache_hits",
        "history",
        "strategy",
        "attempted_phases",
    )

    def __init__(
        self,
        best_sequence,
        best_fitness,
        best_function,
        evaluations,
        cache_hits,
        history,
        *,
        strategy: str = "?",
        attempted_phases: int = 0,
    ):
        self.best_sequence = best_sequence
        self.best_fitness = best_fitness
        self.best_function = best_function
        #: objective evaluations actually performed
        self.evaluations = evaluations
        #: evaluations avoided by the fingerprint cache
        self.cache_hits = cache_hits
        #: best fitness after each generation / restart / episode
        self.history = history
        #: which strategy produced this result
        self.strategy = strategy
        #: phase applications attempted (active or dormant) — the
        #: Table 3 "Attempt" budget this search consumed
        self.attempted_phases = attempted_phases

    def to_dict(self) -> Dict[str, object]:
        """The deterministic, JSON-able view (no Function object)."""
        return {
            "strategy": self.strategy,
            "sequence": "".join(self.best_sequence),
            "fitness": self.best_fitness,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "attempted_phases": self.attempted_phases,
            "history": list(self.history),
        }

    def __repr__(self):
        return (
            f"<SearchResult [{self.strategy}] fitness={self.best_fitness} "
            f"seq={''.join(self.best_sequence)} evals={self.evaluations} "
            f"attempted={self.attempted_phases}>"
        )


#: backward-compatible alias (the pre-extraction name)
GeneticSearchResult = SearchResult


class SearchStrategy:
    """Base class for phase-order searches.

    Subclasses implement :meth:`run` returning a :class:`SearchResult`
    built through :meth:`_result`, and price candidates through
    :meth:`_evaluate` (sequence) or :meth:`_score` (materialized
    function), which maintain the fingerprint cache and the
    evaluation / attempted-phase counters.

    Fixed ``seed`` ⇒ bit-identical results: every subclass draws all
    randomness from ``self.rng`` and breaks ties deterministically.
    """

    #: registry/leaderboard name; subclasses override
    name = "strategy"

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        self.base = func.clone()
        self.objective = objective
        self.sequence_length = sequence_length
        self.seed = seed
        self.rng = random.Random(seed)
        self.target = target or DEFAULT_TARGET
        self._fitness_by_instance: Dict[object, float] = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.attempted_phases = 0

    # ------------------------------------------------------------------
    # Evaluation (fingerprint-cached, budget-counted)
    # ------------------------------------------------------------------

    def _apply(self, sequence: Sequence[str]) -> Function:
        """Apply *sequence* to a fresh clone; counts every attempt."""
        func = self.base.clone()
        for phase_id in sequence:
            self.attempted_phases += 1
            apply_phase(func, phase_by_id(phase_id), self.target)
        return func

    def _score(self, func: Function) -> float:
        """Objective value of *func*, cached by instance fingerprint."""
        key = fingerprint_function(func).key
        cached = self._fitness_by_instance.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        fitness = self.objective(func)
        self._fitness_by_instance[key] = fitness
        self.evaluations += 1
        return fitness

    def _evaluate(self, sequence: Sequence[str]) -> Tuple[float, Function]:
        func = self._apply(sequence)
        return self._score(func), func

    def _random_sequence(self) -> Tuple[str, ...]:
        return tuple(
            self.rng.choice(PHASE_IDS) for _ in range(self.sequence_length)
        )

    # ------------------------------------------------------------------

    def _result(
        self,
        best_sequence: Tuple[str, ...],
        best_fitness: float,
        best_function: Function,
        history: List[float],
    ) -> SearchResult:
        return SearchResult(
            best_sequence,
            best_fitness,
            best_function,
            self.evaluations,
            self.cache_hits,
            history,
            strategy=self.name,
            attempted_phases=self.attempted_phases,
        )

    def run(self) -> SearchResult:
        raise NotImplementedError
