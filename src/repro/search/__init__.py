"""Non-exhaustive phase order search (the paper's related work [14]
and its section 7 future-work idea of probability-guided searching)."""

from repro.search.genetic import (
    GeneticSearcher,
    GeneticSearchResult,
    codesize_objective,
    dynamic_count_objective,
)
from repro.search.hillclimb import HillClimber

__all__ = [
    "GeneticSearcher",
    "GeneticSearchResult",
    "HillClimber",
    "codesize_objective",
    "dynamic_count_objective",
]
