"""The search lab: non-exhaustive phase order search, benchmarked.

The paper's related work [14] searches phase orderings with a genetic
algorithm; its section 7 suggests probability-guided searching.  This
package grows both into a strategy zoo behind one
:class:`~repro.search.common.SearchStrategy` interface, prices
instances multi-objectively with :mod:`repro.search.cost`, and — the
part only an exhaustive-enumeration repo can do — scores every
strategy against the *known* optimum of the fully enumerated space
with :mod:`repro.search.harness` (``repro search-bench``).  See
docs/SEARCH.md.
"""

from repro.search.annealing import SimulatedAnnealer
from repro.search.bandit import POLICIES as BANDIT_POLICIES
from repro.search.bandit import BanditSearcher
from repro.search.common import (
    GeneticSearchResult,
    SearchResult,
    SearchStrategy,
    codesize_objective,
    dynamic_count_objective,
)
from repro.search.cost import (
    OBJECTIVES,
    PARETO_OBJECTIVES,
    CostModel,
    CostVector,
    instruction_cycles,
    instruction_energy,
    pareto_frontier,
    register_pressure,
)
from repro.search.genetic import GeneticSearcher
from repro.search.harness import (
    DEFAULT_OUT,
    QUICK_FUNCTIONS,
    SEED_FUNCTIONS,
    STRATEGY_BUILDERS,
    HarnessConfig,
    SeedFunction,
    format_leaderboard,
    quick_config,
    run_search_bench,
    write_leaderboard,
)
from repro.search.hillclimb import HillClimber
from repro.search.policy import TableDrivenPolicy
from repro.search.random_sampling import RandomSampler

__all__ = [
    "BANDIT_POLICIES",
    "BanditSearcher",
    "CostModel",
    "CostVector",
    "DEFAULT_OUT",
    "GeneticSearchResult",
    "GeneticSearcher",
    "HarnessConfig",
    "HillClimber",
    "OBJECTIVES",
    "PARETO_OBJECTIVES",
    "QUICK_FUNCTIONS",
    "RandomSampler",
    "SEED_FUNCTIONS",
    "STRATEGY_BUILDERS",
    "SearchResult",
    "SearchStrategy",
    "SeedFunction",
    "SimulatedAnnealer",
    "TableDrivenPolicy",
    "codesize_objective",
    "dynamic_count_objective",
    "format_leaderboard",
    "instruction_cycles",
    "instruction_energy",
    "pareto_frontier",
    "quick_config",
    "register_pressure",
    "run_search_bench",
    "write_leaderboard",
]
