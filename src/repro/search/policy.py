"""Table-driven probabilistic policy — Figure 8, generalized.

The paper's section 6 probabilistic compiler keeps a running
probability of each phase being active (seeded from Table 4's St
column, updated from the measured enabling/disabling tables) and
always applies the arg-max phase.  That is *one deterministic rollout*
of a policy.  This strategy generalizes it into a search: the first
rollout is exactly Figure 8's greedy trajectory, and the remaining
budget is spent on stochastic rollouts that *sample* the next phase
proportionally to the running probabilities, exploring orderings the
greedy trajectory never sees while still concentrating on phases the
interaction tables say can be active.

Unlike the fixed-length strategies, rollouts are adaptive: a rollout
ends when no phase's probability exceeds the threshold, so the
attempted-phase budget measures what the policy actually spent.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.interactions import InteractionAnalysis
from repro.ir.function import Function
from repro.machine.target import Target
from repro.opt import PHASE_IDS, apply_phase, phase_by_id
from repro.search.common import SearchResult, SearchStrategy, codesize_objective


class TableDrivenPolicy(SearchStrategy):
    """Search with rollouts of the Figure 8 probability dynamics."""

    name = "policy"

    def __init__(
        self,
        func: Function,
        interactions: InteractionAnalysis,
        objective: Callable[[Function], float] = codesize_objective,
        rollouts: int = 24,
        max_steps: int = 40,
        threshold: float = 0.0,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        super().__init__(func, objective, seed=seed, target=target)
        self.interactions = interactions
        self.rollouts = rollouts
        self.max_steps = max_steps
        self.threshold = threshold

    # ------------------------------------------------------------------

    def _select(self, probability, phase_ids, stochastic: bool) -> Optional[str]:
        """The next phase to attempt, or None when the rollout is done."""
        candidates = [
            pid for pid in phase_ids if probability[pid] > self.threshold
        ]
        if not candidates:
            return None
        if not stochastic:
            return max(candidates, key=lambda pid: (probability[pid], pid))
        weights = [probability[pid] for pid in candidates]
        return self.rng.choices(candidates, weights=weights, k=1)[0]

    def _rollout(self, stochastic: bool) -> Tuple[Tuple[str, ...], Function]:
        enabling = self.interactions.enabling
        disabling = self.interactions.disabling
        phase_ids: Sequence[str] = self.interactions.phase_ids or PHASE_IDS
        probability = {
            pid: self.interactions.start.get(pid, 0.0) for pid in phase_ids
        }
        func = self.base.clone()
        applied: List[str] = []
        for _ in range(self.max_steps):
            best = self._select(probability, phase_ids, stochastic)
            if best is None:
                break
            self.attempted_phases += 1
            applied.append(best)
            was_active = apply_phase(func, phase_by_id(best), self.target)
            if was_active:
                # Figure 8's update rule:
                #   p[i] += (1 - p[i]) * e[i][j] - p[i] * d[i][j]
                for pid in phase_ids:
                    if pid == best:
                        continue
                    enable = enabling.get(pid, {}).get(best, 0.0)
                    disable = disabling.get(pid, {}).get(best, 0.0)
                    p = probability[pid]
                    probability[pid] = p + (1.0 - p) * enable - p * disable
            probability[best] = 0.0
        return tuple(applied), func

    # ------------------------------------------------------------------

    def run(self) -> SearchResult:
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = ()
        best_function = self.base.clone()
        history: List[float] = []
        for index in range(self.rollouts):
            # rollout 0 is exactly the Figure 8 greedy trajectory
            sequence, func = self._rollout(stochastic=index > 0)
            fitness = self._score(func)
            if fitness < best_fitness:
                best_fitness = fitness
                best_sequence = sequence
                best_function = func
            history.append(best_fitness)
        return self._result(best_sequence, best_fitness, best_function, history)
