"""Bandit search: each sequence position is a multi-armed bandit.

Learned phase-ordering approaches (AutoPhase, arXiv 2003.00671;
POSET-RL in PAPERS.md) frame phase selection as reinforcement
learning.  This is the tabular core of that idea, small enough to be
scored against the exhaustive oracle: position ``i`` of the sequence
is a bandit whose arms are the phases, an episode builds one sequence
by consulting every position's arm statistics, and the episode's
reward — the relative improvement of the final instance over the
unoptimized one — updates every arm that was pulled.

Two classic policies are provided:

- ``epsilon`` — epsilon-greedy: explore uniformly with probability
  ``epsilon``, otherwise exploit the best mean reward;
- ``ucb`` — UCB1: always pull the arm maximizing
  ``mean + c * sqrt(ln(t) / n)``, after pulling every arm once.

Ties break deterministically on phase id, so a fixed seed yields a
bit-identical :class:`~repro.search.common.SearchResult`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.machine.target import Target
from repro.opt import PHASE_IDS
from repro.search.common import SearchResult, SearchStrategy, codesize_objective

POLICIES = ("epsilon", "ucb")


class BanditSearcher(SearchStrategy):
    """Per-position bandit construction of phase sequences."""

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        episodes: int = 120,
        policy: str = "epsilon",
        epsilon: float = 0.15,
        exploration: float = 1.2,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"bad bandit policy {policy!r}; expected one of {POLICIES}"
            )
        super().__init__(
            func,
            objective,
            sequence_length=sequence_length,
            seed=seed,
            target=target,
        )
        self.episodes = episodes
        self.policy = policy
        self.epsilon = epsilon
        self.exploration = exploration
        self.name = f"bandit-{'eps' if policy == 'epsilon' else 'ucb'}"
        #: per-position arm statistics: pulls and mean reward
        self._pulls: List[Dict[str, int]] = [
            {pid: 0 for pid in PHASE_IDS} for _ in range(sequence_length)
        ]
        self._means: List[Dict[str, float]] = [
            {pid: 0.0 for pid in PHASE_IDS} for _ in range(sequence_length)
        ]

    # ------------------------------------------------------------------

    def _pick_epsilon(self, position: int) -> str:
        if self.rng.random() < self.epsilon:
            return self.rng.choice(PHASE_IDS)
        means = self._means[position]
        return max(PHASE_IDS, key=lambda pid: (means[pid], pid))

    def _pick_ucb(self, position: int) -> str:
        pulls = self._pulls[position]
        for pid in PHASE_IDS:  # pull every arm once, in phase order
            if pulls[pid] == 0:
                return pid
        total = sum(pulls.values())
        means = self._means[position]

        def ucb(pid: str) -> float:
            return means[pid] + self.exploration * math.sqrt(
                math.log(total) / pulls[pid]
            )

        return max(PHASE_IDS, key=lambda pid: (ucb(pid), pid))

    def _build_sequence(self) -> Tuple[str, ...]:
        pick = self._pick_epsilon if self.policy == "epsilon" else self._pick_ucb
        return tuple(pick(position) for position in range(self.sequence_length))

    def _update(self, sequence: Tuple[str, ...], reward: float) -> None:
        for position, pid in enumerate(sequence):
            pulls = self._pulls[position]
            means = self._means[position]
            pulls[pid] += 1
            means[pid] += (reward - means[pid]) / pulls[pid]

    # ------------------------------------------------------------------

    def run(self) -> SearchResult:
        baseline = self._score(self.base.clone())
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = ()
        best_function = self.base.clone()
        history: List[float] = []
        for _ in range(self.episodes):
            sequence = self._build_sequence()
            fitness, func = self._evaluate(sequence)
            reward = (baseline - fitness) / max(baseline, 1.0)
            self._update(sequence, reward)
            if fitness < best_fitness:
                best_fitness = fitness
                best_sequence = sequence
                best_function = func
            history.append(best_fitness)
        return self._result(best_sequence, best_fitness, best_function, history)
