"""Hill-climbing phase order search (related work [5], [9]).

The paper's related work reports that the phase order space "contains
enough local minima that biased sampling techniques, such as hill
climbers and genetic algorithms, should find good solutions" [9].  This
steepest-descent hill climber over fixed-length sequences provides the
baseline: neighbors differ in exactly one position, evaluation is
fingerprint-cached like the GA's, and restarts escape local minima.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.fingerprint import fingerprint_function
from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.opt import PHASE_IDS, apply_phase, phase_by_id
from repro.search.genetic import GeneticSearchResult, codesize_objective


class HillClimber:
    """Steepest-descent search with random restarts."""

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        restarts: int = 4,
        max_steps: int = 40,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        self.base = func.clone()
        self.objective = objective
        self.sequence_length = sequence_length
        self.restarts = restarts
        self.max_steps = max_steps
        self.rng = random.Random(seed)
        self.target = target or DEFAULT_TARGET
        self._fitness_by_instance: Dict[object, float] = {}
        self.evaluations = 0
        self.cache_hits = 0

    def _evaluate(self, sequence: Tuple[str, ...]) -> Tuple[float, Function]:
        func = self.base.clone()
        for phase_id in sequence:
            apply_phase(func, phase_by_id(phase_id), self.target)
        key = fingerprint_function(func).key
        cached = self._fitness_by_instance.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached, func
        fitness = self.objective(func)
        self._fitness_by_instance[key] = fitness
        self.evaluations += 1
        return fitness, func

    def _neighbors(self, sequence: Tuple[str, ...]):
        for position in range(len(sequence)):
            for phase_id in PHASE_IDS:
                if phase_id != sequence[position]:
                    yield (
                        sequence[:position] + (phase_id,) + sequence[position + 1 :]
                    )

    def run(self) -> GeneticSearchResult:
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = ()
        best_function = self.base.clone()
        history: List[float] = []
        for _restart in range(self.restarts):
            current = tuple(
                self.rng.choice(PHASE_IDS) for _ in range(self.sequence_length)
            )
            current_fitness, current_function = self._evaluate(current)
            for _step in range(self.max_steps):
                candidates = [
                    (self._evaluate(neighbor)[0], neighbor)
                    for neighbor in self._neighbors(current)
                ]
                neighbor_fitness, neighbor = min(
                    candidates, key=lambda pair: (pair[0], pair[1])
                )
                if neighbor_fitness >= current_fitness:
                    break  # local minimum
                current, current_fitness = neighbor, neighbor_fitness
            if current_fitness < best_fitness:
                best_fitness = current_fitness
                best_sequence = current
                best_function = self._evaluate(current)[1]
            history.append(best_fitness)
        return GeneticSearchResult(
            best_sequence,
            best_fitness,
            best_function,
            self.evaluations,
            self.cache_hits,
            history,
        )
