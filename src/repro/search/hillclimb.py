"""Hill-climbing phase order search (related work [5], [9]).

The paper's related work reports that the phase order space "contains
enough local minima that biased sampling techniques, such as hill
climbers and genetic algorithms, should find good solutions" [9].  This
steepest-descent hill climber over fixed-length sequences provides the
baseline: neighbors differ in exactly one position, evaluation is
fingerprint-cached like the GA's, and restarts escape local minima.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.ir.function import Function
from repro.machine.target import Target
from repro.opt import PHASE_IDS
from repro.search.common import (  # noqa: F401  (GeneticSearchResult kept importable here)
    GeneticSearchResult,
    SearchResult,
    SearchStrategy,
    codesize_objective,
)


class HillClimber(SearchStrategy):
    """Steepest-descent search with random restarts."""

    name = "hillclimb"

    def __init__(
        self,
        func: Function,
        objective: Callable[[Function], float] = codesize_objective,
        sequence_length: int = 12,
        restarts: int = 4,
        max_steps: int = 40,
        seed: int = 2006,
        target: Optional[Target] = None,
    ):
        super().__init__(
            func,
            objective,
            sequence_length=sequence_length,
            seed=seed,
            target=target,
        )
        self.restarts = restarts
        self.max_steps = max_steps

    def _neighbors(self, sequence: Tuple[str, ...]):
        for position in range(len(sequence)):
            for phase_id in PHASE_IDS:
                if phase_id != sequence[position]:
                    yield (
                        sequence[:position] + (phase_id,) + sequence[position + 1 :]
                    )

    def run(self) -> SearchResult:
        best_fitness = float("inf")
        best_sequence: Tuple[str, ...] = ()
        best_function = self.base.clone()
        history: List[float] = []
        for _restart in range(self.restarts):
            current = self._random_sequence()
            current_fitness, current_function = self._evaluate(current)
            for _step in range(self.max_steps):
                candidates = [
                    (self._evaluate(neighbor)[0], neighbor)
                    for neighbor in self._neighbors(current)
                ]
                neighbor_fitness, neighbor = min(
                    candidates, key=lambda pair: (pair[0], pair[1])
                )
                if neighbor_fitness >= current_fitness:
                    break  # local minimum
                current, current_fitness = neighbor, neighbor_fitness
            if current_fitness < best_fitness:
                best_fitness = current_fitness
                best_sequence = current
                best_function = self._evaluate(current)[1]
            history.append(best_fitness)
        return self._result(best_sequence, best_fitness, best_function, history)
