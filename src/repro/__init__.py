"""Exhaustive optimization phase order space exploration (CGO 2006).

This package reproduces Kulkarni, Whalley, Tyson & Davidson, "Exhaustive
Optimization Phase Order Space Exploration" (CGO 2006).  It contains a
from-scratch VPO-like compiler backend operating on RTLs (register
transfer lists), a mini-C frontend, fifteen interacting optimization
phases, an exhaustive phase-order space enumerator with the paper's two
pruning techniques, phase interaction analysis, and the probabilistic
batch compiler of Figure 8.

Typical usage::

    from repro import compile_source, enumerate_space, EnumerationConfig

    program = compile_source("int square(int x) { return x * x; }")
    result = enumerate_space(program.function("square"))
    print(result.completed)
"""

from repro.frontend import compile_source
from repro.machine import Target
from repro.core.enumeration import (
    EnumerationConfig,
    EnumerationResult,
    enumerate_space,
)
from repro.core.dag import SpaceDAG, materialize_instances
from repro.core.fingerprint import fingerprint_function
from repro.core.interactions import InteractionAnalysis, analyze_interactions
from repro.core.batch import BatchCompiler, BATCH_ORDER
from repro.core.probabilistic import ProbabilisticCompiler
from repro.core.stats import FunctionSpaceStats, collect_function_stats
from repro.core.dynamic import DynamicCountOracle, MissingFunctionError
from repro.opt import PHASES, PHASE_IDS, phase_by_id
from repro.robustness import (
    FaultInjector,
    GuardedPhaseRunner,
    QuarantineLog,
    QuarantineRecord,
)
from repro.ir.validate import IRValidationError, check_ir, validate_ir
from repro.search import (
    BanditSearcher,
    CostModel,
    CostVector,
    GeneticSearcher,
    HillClimber,
    RandomSampler,
    SearchResult,
    SearchStrategy,
    SimulatedAnnealer,
    TableDrivenPolicy,
    pareto_frontier,
    run_search_bench,
)
from repro.vm import Interpreter, ExecutionResult

__all__ = [
    "compile_source",
    "Target",
    "EnumerationConfig",
    "EnumerationResult",
    "enumerate_space",
    "SpaceDAG",
    "materialize_instances",
    "fingerprint_function",
    "InteractionAnalysis",
    "analyze_interactions",
    "BatchCompiler",
    "BATCH_ORDER",
    "ProbabilisticCompiler",
    "FunctionSpaceStats",
    "collect_function_stats",
    "DynamicCountOracle",
    "MissingFunctionError",
    "BanditSearcher",
    "CostModel",
    "CostVector",
    "GeneticSearcher",
    "HillClimber",
    "RandomSampler",
    "SearchResult",
    "SearchStrategy",
    "SimulatedAnnealer",
    "TableDrivenPolicy",
    "pareto_frontier",
    "run_search_bench",
    "PHASES",
    "PHASE_IDS",
    "phase_by_id",
    "GuardedPhaseRunner",
    "FaultInjector",
    "QuarantineLog",
    "QuarantineRecord",
    "IRValidationError",
    "check_ir",
    "validate_ir",
    "Interpreter",
    "ExecutionResult",
]

__version__ = "1.0.0"
