"""The per-run-dir ``RunManifest``: what ran, where, and under what.

Every run dir gets a ``manifest.json`` describing the run well enough
to interpret its telemetry later — or on another machine: the tool and
argv, a digest of the space-shaping configuration, the seeds, every
``REPRO_*`` environment toggle in effect, host facts, and (once the
run finishes) wall and CPU time.

The manifest is written at run *start* — a crashed run still leaves
one — and finalized in place at the end.  Writes are atomic
(temp file + ``os.replace``), the same discipline as checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import tempfile
from datetime import datetime, timezone
from typing import Dict, Optional

from repro.observability.events import SCHEMA_VERSION

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


def config_digest(signature: Optional[Dict[str, object]]) -> Optional[str]:
    """Stable short digest of a config-signature dict (None for None)."""
    if signature is None:
        return None
    return hashlib.sha256(
        json.dumps(signature, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]


def env_toggles() -> Dict[str, str]:
    """Every ``REPRO_*`` environment variable currently set."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def host_facts() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def build_manifest(
    tool: str,
    config: Optional[Dict[str, object]] = None,
    seeds: Optional[Dict[str, object]] = None,
    argv: Optional[list] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A fresh manifest dict for a run that is starting now."""
    manifest: Dict[str, object] = {
        "manifest_version": MANIFEST_VERSION,
        "schema_version": SCHEMA_VERSION,
        "tool": tool,
        "argv": list(argv) if argv is not None else None,
        "started_at": datetime.now(timezone.utc).isoformat(),
        "config": config,
        "config_digest": config_digest(config),
        "seeds": dict(seeds) if seeds else {},
        "env": env_toggles(),
        "host": host_facts(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def manifest_path(run_dir: str) -> str:
    return os.path.join(run_dir, MANIFEST_NAME)


def write_manifest(run_dir: str, manifest: Dict[str, object]) -> str:
    """Atomically write *manifest* into *run_dir*; returns the path."""
    os.makedirs(run_dir, exist_ok=True)
    path = manifest_path(run_dir)
    fd, tmp = tempfile.mkstemp(
        prefix=MANIFEST_NAME + ".", dir=run_dir, text=True
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_manifest(run_dir: str) -> Optional[Dict[str, object]]:
    """The run dir's manifest, or None when absent/unreadable."""
    path = manifest_path(run_dir)
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def finalize_manifest(
    run_dir: str, wall: float, cpu: float, ok: bool = True
) -> Optional[str]:
    """Stamp end-of-run facts into an existing manifest (atomic)."""
    manifest = load_manifest(run_dir)
    if manifest is None:
        return None
    manifest.update(
        ended_at=datetime.now(timezone.utc).isoformat(),
        wall_s=round(wall, 3),
        cpu_s=round(cpu, 3),
        ok=bool(ok),
    )
    return write_manifest(run_dir, manifest)
