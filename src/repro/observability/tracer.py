"""The run tracer: the one object producers emit observability into.

A :class:`Tracer` bundles the JSONL :class:`~repro.observability.events.EventStream`
of a run dir, the run's :mod:`~repro.observability.manifest`, and the
hot-path aggregation counters (per-phase attempted/active/dormant,
AnalysisCache hits/misses).  Producers find it through the module
global :data:`ACTIVE`:

    from repro.observability import tracer as obs
    tr = obs.ACTIVE
    if tr is not None:
        tr.phase_outcome(phase.id, active)

which is the whole zero-cost-when-off story: with no tracer installed
the hot paths pay one global read and one ``is None`` test — no
allocation, no I/O, no branching on configuration objects.  Install a
tracer (``install()`` or the ``tracing(...)`` context manager) and the
same sites start counting and journaling.

Tracing is observational only: it never touches node keys, dormant
sets, or any enumeration decision, which is what keeps traced and
untraced runs bit-identical (see ``tests/observability``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.observability import manifest as manifest_mod
from repro.observability.events import JOURNAL_NAME, EventStream

#: the installed tracer, or None (tracing off).  Hot paths read this
#: directly; everything else should go through :func:`active`.
ACTIVE: Optional["Tracer"] = None

#: per-phase outcome classes the tracer counts
OUTCOMES = ("active", "dormant", "quarantined")


class Tracer:
    """Event journal + manifest + aggregation counters for one run."""

    def __init__(
        self,
        run_dir: Optional[str] = None,
        jsonl_path: Optional[str] = None,
        manifest: Optional[Dict[str, object]] = None,
    ):
        import os

        self.run_dir = run_dir
        if run_dir is not None and jsonl_path is None:
            os.makedirs(run_dir, exist_ok=True)
            jsonl_path = os.path.join(run_dir, JOURNAL_NAME)
        self.stream = EventStream(jsonl_path)
        if run_dir is not None and manifest is not None:
            manifest_mod.write_manifest(run_dir, manifest)
        self._subscribers: List[Callable[..., None]] = []
        #: phase id -> {"active": n, "dormant": n, "quarantined": n}
        self.phase_counts: Dict[str, Dict[str, int]] = {}
        self.analysis_hits = 0
        self.analysis_misses = 0
        self._wall0 = time.monotonic()
        self._cpu0 = time.process_time()
        self._closed = False

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def emit(self, name: str, **fields) -> None:
        """Append one schema-validated event; fan out to subscribers."""
        self.stream.emit(name, **fields)
        for subscriber in self._subscribers:
            subscriber(name, **fields)

    def subscribe(self, callback: Callable[..., None]) -> None:
        """Register ``callback(name, **fields)`` for every emitted event."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Hot-path counters (no I/O; flushed as events at span boundaries)
    # ------------------------------------------------------------------

    def phase_outcome(self, phase_id: str, outcome: str) -> None:
        """Count one phase attempt's outcome (see :data:`OUTCOMES`)."""
        counts = self.phase_counts.get(phase_id)
        if counts is None:
            counts = dict.fromkeys(OUTCOMES, 0)
            self.phase_counts[phase_id] = counts
        counts[outcome] += 1

    def analysis_event(self, hit: bool) -> None:
        if hit:
            self.analysis_hits += 1
        else:
            self.analysis_misses += 1

    def snapshot_phases(self) -> Dict[str, Dict[str, int]]:
        """A copy of the per-phase counters, for later diffing."""
        return {
            phase_id: dict(counts)
            for phase_id, counts in self.phase_counts.items()
        }

    def phases_since(
        self, snapshot: Dict[str, Dict[str, int]]
    ) -> Dict[str, Dict[str, int]]:
        """Per-phase counter deltas since *snapshot* (zero rows omitted)."""
        delta: Dict[str, Dict[str, int]] = {}
        for phase_id, counts in self.phase_counts.items():
            before = snapshot.get(phase_id, {})
            row = {
                outcome: counts[outcome] - before.get(outcome, 0)
                for outcome in OUTCOMES
            }
            if any(row.values()):
                delta[phase_id] = row
        return delta

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, ok: bool = True) -> None:
        """Flush run-level counter events, finalize the manifest."""
        if self._closed:
            return
        self._closed = True
        if self.analysis_hits or self.analysis_misses:
            self.emit(
                "analysis_cache_stats",
                hits=self.analysis_hits,
                misses=self.analysis_misses,
            )
        wall = time.monotonic() - self._wall0
        self.emit("run_end", wall=round(wall, 3), ok=bool(ok))
        if self.run_dir is not None:
            manifest_mod.finalize_manifest(
                self.run_dir, wall, time.process_time() - self._cpu0, ok=ok
            )
        self.stream.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(ok=exc_type is None)


# ----------------------------------------------------------------------
# Global installation
# ----------------------------------------------------------------------


def install(tracer: Tracer) -> Optional[Tracer]:
    """Make *tracer* the active tracer; returns the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    return previous


def uninstall() -> Optional[Tracer]:
    """Deactivate tracing; returns the tracer that was active."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


def active() -> Optional[Tracer]:
    return ACTIVE


@contextmanager
def tracing(
    run_dir: Optional[str] = None,
    jsonl_path: Optional[str] = None,
    manifest: Optional[Dict[str, object]] = None,
    tracer: Optional[Tracer] = None,
):
    """Install a tracer for the enclosed block; close it on exit.

    Pass an existing *tracer* to install it without transferring
    ownership (it is not closed on exit); otherwise one is built from
    *run_dir*/*jsonl_path* and closed when the block ends.
    """
    owned = tracer is None
    if tracer is None:
        tracer = Tracer(run_dir=run_dir, jsonl_path=jsonl_path, manifest=manifest)
    previous = install(tracer)
    try:
        yield tracer
    except BaseException:
        if owned:
            tracer.close(ok=False)
        raise
    else:
        if owned:
            tracer.close(ok=True)
    finally:
        global ACTIVE
        ACTIVE = previous
