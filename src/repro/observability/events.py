"""Schema-versioned JSONL event stream shared by serial and parallel runs.

One run produces one ``events.jsonl`` journal: one JSON object per
line, ``{"t": seconds since stream start, "event": name, ...fields}``.
The vocabulary is closed — every event name and its required fields
are declared in :data:`EVENT_SCHEMA` — so a journal written by any
component (serial enumerator, parallel coordinator, batch compiler,
guard) can be validated and replayed by any consumer (``repro
report``, the live :class:`~repro.parallel.telemetry.ProgressReporter`,
tests).

Design rules:

- **append-only, atomic lines** — a crash mid-write loses at most the
  last line; :func:`read_journal` tolerates a truncated tail;
- **explicit encoding** — journals are always UTF-8, independent of
  the platform locale;
- **closed vocabulary** — :meth:`EventStream.emit` rejects unknown
  event names and missing required fields at the producer, so schema
  drift fails loudly in tests instead of silently in reports.

The schema is versioned (:data:`SCHEMA_VERSION`); the version is
stamped into the :mod:`~repro.observability.manifest` of every run dir
rather than into each record.
"""

from __future__ import annotations

import json
import time
from typing import Dict, FrozenSet, List, Optional, TextIO, Tuple

#: bump when an event is removed, renamed, or a required field changes
SCHEMA_VERSION = 1

#: event name -> required fields (extra fields are always allowed)
EVENT_SCHEMA: Dict[str, FrozenSet[str]] = {
    # run-level markers
    "run_start": frozenset({"tool"}),
    "run_end": frozenset({"wall"}),
    # parallel service lifecycle
    "job_start": frozenset({"functions", "jobs"}),
    "job_done": frozenset({"functions"}),
    "job_restored": frozenset({"function"}),
    "cache_hit": frozenset({"function"}),
    "level_start": frozenset({"function", "level"}),
    "shard_dispatch": frozenset({"shard"}),
    "shard_resumed": frozenset({"shard"}),
    "shard_done": frozenset({"shard"}),
    "shard_error": frozenset({"shard"}),
    "lease_reclaim": frozenset({"shard"}),
    "worker_dead": frozenset({"worker"}),
    "lease_timeout": frozenset({"worker"}),
    "function_done": frozenset({"function"}),
    # serial enumeration spans
    "enum_start": frozenset({"function"}),
    "level_done": frozenset({"function", "level"}),
    "enum_done": frozenset({"function", "instances", "completed"}),
    # `repro profile`: one profiled enumeration's throughput summary
    "profile_run": frozenset({"function", "engine", "wall", "edges"}),
    # attempted / active / dormant accounting
    "phase_stats": frozenset({"phases"}),
    # caches
    "memo_loaded": frozenset({"entries"}),
    "memo_saved": frozenset({"entries"}),
    "memo_stats": frozenset({"hits", "misses"}),
    "analysis_cache_stats": frozenset({"hits", "misses"}),
    # robustness
    "quarantine": frozenset({"phase", "kind"}),
    # static analysis (per-function sanitizer/contract/transval counters)
    "sanitize_stats": frozenset({"function", "edges"}),
    # semantic collapse (per-function merge/split counters; extra
    # fields break candidates down by proof outcome — docs/COLLAPSE.md)
    "collapse_stats": frozenset({"function", "candidates", "merged"}),
    "fault_injected": frozenset({"phase"}),
    "checkpoint_write": frozenset({"path"}),
    "checkpoint_resume": frozenset({"path"}),
    # compilers (Table 7 accounting)
    "batch_compile": frozenset({"function", "attempted", "active"}),
    "prob_compile": frozenset({"function", "attempted", "active"}),
    # enumeration service (``repro serve``; see docs/SERVICE.md).  Every
    # request-scoped event carries the request id, which is also the
    # X-Request-Id response header — one grep joins a client-visible
    # response to its full server-side history.
    "server_start": frozenset({"port"}),
    "server_drain": frozenset({"in_flight"}),
    "server_stop": frozenset({"served"}),
    "request_admitted": frozenset({"request", "kind"}),
    "request_shed": frozenset({"request", "reason"}),
    "request_coalesced": frozenset({"request", "into"}),
    "request_retry": frozenset({"request", "attempt"}),
    "request_done": frozenset({"request", "status"}),
    "breaker_open": frozenset({"key", "failures"}),
    "breaker_probe": frozenset({"key"}),
    "breaker_close": frozenset({"key"}),
    # frontend (``repro lint`` on mini-C sources, ``repro fuzz``): one
    # lint_source per linted translation unit, one fuzz_program per
    # generated program that failed, one fuzz_run per whole stream
    "lint_source": frozenset({"target", "diagnostics"}),
    "fuzz_program": frozenset({"index", "kind"}),
    "fuzz_run": frozenset({"count", "seed", "failures"}),
    # search lab (``repro search-bench``; see docs/SEARCH.md): one
    # search_space per scored seed function, one search_strategy per
    # (function, strategy) pair with its distance to the exhaustive
    # optimum and attempted-phase budget
    "search_start": frozenset({"functions", "strategies"}),
    "search_space": frozenset({"function", "nodes", "leaves", "pareto"}),
    "search_strategy": frozenset(
        {"function", "strategy", "fitness", "distance", "attempted"}
    ),
    "search_done": frozenset({"functions", "strategies"}),
}

#: journal filename inside a run dir
JOURNAL_NAME = "events.jsonl"


class EventSchemaError(ValueError):
    """An emitted event does not conform to :data:`EVENT_SCHEMA`."""


def validate_event(name: str, fields: Dict[str, object]) -> None:
    """Raise :class:`EventSchemaError` unless (*name*, *fields*) conforms."""
    required = EVENT_SCHEMA.get(name)
    if required is None:
        raise EventSchemaError(
            f"unknown event {name!r}; schema v{SCHEMA_VERSION} events: "
            f"{', '.join(sorted(EVENT_SCHEMA))}"
        )
    missing = required - fields.keys()
    if missing:
        raise EventSchemaError(
            f"event {name!r} is missing required field(s) "
            f"{', '.join(sorted(missing))}"
        )


def validate_record(record: object) -> List[str]:
    """All schema violations of one parsed journal record (empty = valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    name = record.get("event")
    if not isinstance(name, str):
        errors.append(f"missing/invalid 'event' field: {name!r}")
        return errors
    t = record.get("t")
    if not isinstance(t, (int, float)) or t < 0:
        errors.append(f"{name}: missing/invalid 't' field: {t!r}")
    fields = {k: v for k, v in record.items() if k not in ("t", "event")}
    try:
        validate_event(name, fields)
    except EventSchemaError as error:
        errors.append(str(error))
    return errors


class EventStream:
    """Appends schema-validated events to a JSONL journal.

    The stream is the single producer-side writer; consumers (the live
    reporter, ``repro report``) never write.  ``path=None`` gives a
    null stream: emit() validates and returns the record but writes
    nothing, which keeps producer call sites branch-free.
    """

    def __init__(self, path: Optional[str] = None, stream: Optional[TextIO] = None):
        self.path = path
        if stream is not None:
            self._log: Optional[TextIO] = stream
            self._owns = False
        elif path is not None:
            self._log = open(path, "a", encoding="utf-8")
            self._owns = True
        else:
            self._log = None
            self._owns = False
        self._start = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def emit(self, name: str, **fields) -> Dict[str, object]:
        """Validate, stamp, and append one event; returns the record."""
        validate_event(name, fields)
        record: Dict[str, object] = {"t": round(self.elapsed(), 3), "event": name}
        record.update(fields)
        if self._log is not None:
            self._log.write(json.dumps(record, sort_keys=True) + "\n")
            self._log.flush()
        return record

    def close(self) -> None:
        if self._log is not None and self._owns:
            self._log.close()
        self._log = None

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse a JSONL journal; returns ``(records, errors)``.

    Malformed lines (e.g. a truncated tail after a crash) are reported
    as errors, never raised — a journal is evidence, not a contract.
    """
    records: List[Dict[str, object]] = []
    errors: List[str] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                errors.append(f"line {lineno}: malformed JSON")
                continue
            records.append(record)
    return records, errors


def validate_journal(path: str) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse and schema-check a journal; returns ``(records, errors)``."""
    records, errors = read_journal(path)
    for index, record in enumerate(records, start=1):
        for error in validate_record(record):
            errors.append(f"record {index}: {error}")
    return records, errors
