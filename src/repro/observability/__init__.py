"""Unified observability: event journal, run manifest, tracer, report.

One vocabulary serves every run mode.  Producers (serial enumerator,
parallel coordinator, compilers, guard, caches) emit through the
module-global tracer in :mod:`repro.observability.tracer`; consumers
(the live progress reporter, ``repro report``, tests) read the JSONL
journal back through :mod:`repro.observability.events`.
"""

from repro.observability.events import (
    EVENT_SCHEMA,
    JOURNAL_NAME,
    SCHEMA_VERSION,
    EventSchemaError,
    EventStream,
    read_journal,
    validate_event,
    validate_journal,
    validate_record,
)
from repro.observability.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    build_manifest,
    config_digest,
    finalize_manifest,
    load_manifest,
    write_manifest,
)
from repro.observability.tracer import (
    OUTCOMES,
    Tracer,
    active,
    install,
    tracing,
    uninstall,
)

__all__ = [
    "EVENT_SCHEMA",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "OUTCOMES",
    "SCHEMA_VERSION",
    "EventSchemaError",
    "EventStream",
    "Tracer",
    "active",
    "build_manifest",
    "config_digest",
    "finalize_manifest",
    "install",
    "load_manifest",
    "read_journal",
    "tracing",
    "uninstall",
    "validate_event",
    "validate_journal",
    "validate_record",
    "write_manifest",
]
