"""``repro report`` — a human summary of any run dir's telemetry.

Reads the run dir's ``manifest.json`` and ``events.jsonl`` (serial or
``--jobs N`` — the journal vocabulary is shared), schema-validates
every record, aggregates the accounting the paper cares about —
attempted/active/dormant phase outcomes, memo and analysis-cache hit
rates, quarantine counts, checkpoint/resume markers — and renders a
compact text report (or the raw summary dict as JSON).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.observability import manifest as manifest_mod
from repro.observability.events import (
    EVENT_SCHEMA,
    JOURNAL_NAME,
    SCHEMA_VERSION,
    read_journal,
    validate_record,
)


class ReportError(RuntimeError):
    """The run dir has no telemetry to report on."""


def _function_row(functions: Dict[str, Dict], label: str) -> Dict:
    row = functions.get(label)
    if row is None:
        row = {
            "instances": None,
            "levels": None,
            "completed": None,
            "reason": None,
            "wall": None,
            "cached": False,
            "resumed": False,
            "active": 0,
            "dormant": 0,
            "quarantined": 0,
        }
        functions[label] = row
    return row


def summarize_run(run_dir: str) -> Dict[str, object]:
    """Aggregate a run dir's manifest + journal into one summary dict."""
    journal = os.path.join(run_dir, JOURNAL_NAME)
    manifest = manifest_mod.load_manifest(run_dir)
    if not os.path.exists(journal):
        if manifest is None:
            raise ReportError(
                f"{run_dir}: no {JOURNAL_NAME} or "
                f"{manifest_mod.MANIFEST_NAME} found — not a run dir?"
            )
        records: List[Dict] = []
        errors: List[str] = []
    else:
        records, errors = read_journal(journal)

    # Forward compatibility (the journal may have been written by a
    # newer build): an event *kind* this schema does not know is a
    # warning counter, never a schema error and never a silent drop —
    # but a known event with missing fields is still a violation.
    unknown_events: Dict[str, int] = {}
    for index, record in enumerate(records, start=1):
        name = record.get("event") if isinstance(record, dict) else None
        if isinstance(name, str) and name not in EVENT_SCHEMA:
            unknown_events[name] = unknown_events.get(name, 0) + 1
            continue
        for error in validate_record(record):
            errors.append(f"record {index}: {error}")

    functions: Dict[str, Dict] = {}
    totals = {
        "events": len(records),
        "schema_errors": len(errors),
        "unknown_events": sum(unknown_events.values()),
        "unknown_event_names": sorted(unknown_events),
        "quarantine": {},
        "quarantine_total": 0,
        "faults_injected": 0,
        "checkpoints_written": 0,
        "resumes": 0,
        "lease_reclaims": 0,
        "worker_deaths": 0,
        "lease_timeouts": 0,
        "shards_done": 0,
        "store_cache_hits": 0,
    }
    memo = {"hits": 0, "misses": 0, "entries": None, "seen": False}
    analysis = {"hits": 0, "misses": 0, "seen": False}
    sanitize = {
        "edges": 0,
        "findings": 0,
        "contract_violations": 0,
        "proved": 0,
        "tested": 0,
        "unverified": 0,
        "refuted": 0,
        "mode": None,
        "seen": False,
    }
    collapse = {
        "candidates": 0,
        "merged": 0,
        "merged_proved": 0,
        "merged_tested": 0,
        "split_unproven": 0,
        "split_cycle": 0,
        "split_size": 0,
        "refuted": 0,
        "uncanonical": 0,
        "classes": 0,
        "seen": False,
    }
    compiles: List[Dict] = []
    search = {
        "functions": 0,
        "strategies": 0,
        "spaces": [],
        "results": [],
        "seen": False,
    }
    service = {
        "admitted": 0,
        "coalesced": 0,
        "shed": {},
        "shed_total": 0,
        "retries": 0,
        "done": {},
        "breaker_opens": 0,
        "drains": 0,
        "seen": False,
    }

    for record in records:
        name = record.get("event")
        label = record.get("function")
        if name in ("enum_start",):
            _function_row(functions, label)
        elif name in ("enum_done", "function_done"):
            row = _function_row(functions, label)
            row["instances"] = record.get("instances", row["instances"])
            row["levels"] = record.get("levels", row["levels"])
            row["completed"] = record.get("completed", row["completed"])
            row["reason"] = record.get("reason", row["reason"])
            row["wall"] = record.get("wall", row["wall"])
        elif name == "cache_hit":
            row = _function_row(functions, label)
            row["cached"] = True
            row["completed"] = True
            totals["store_cache_hits"] += 1
        elif name in ("job_restored", "checkpoint_resume"):
            if label is not None:
                _function_row(functions, label)["resumed"] = True
            totals["resumes"] += 1
        elif name == "checkpoint_write":
            totals["checkpoints_written"] += 1
        elif name == "phase_stats":
            row = _function_row(functions, label) if label else None
            for counts in record.get("phases", {}).values():
                if row is not None:
                    row["active"] += counts.get("active", 0)
                    row["dormant"] += counts.get("dormant", 0)
                    row["quarantined"] += counts.get("quarantined", 0)
        elif name == "quarantine":
            kind = record.get("kind", "?")
            totals["quarantine"][kind] = totals["quarantine"].get(kind, 0) + 1
            totals["quarantine_total"] += 1
        elif name == "fault_injected":
            totals["faults_injected"] += 1
        elif name in ("memo_stats", "memo_saved"):
            memo["hits"] += record.get("hits", 0)
            memo["misses"] += record.get("misses", 0)
            if record.get("entries") is not None:
                memo["entries"] = record["entries"]
            memo["seen"] = True
        elif name == "memo_loaded":
            memo["entries"] = record.get("entries")
            memo["seen"] = True
        elif name == "sanitize_stats":
            for key in (
                "edges",
                "findings",
                "contract_violations",
                "proved",
                "tested",
                "unverified",
                "refuted",
            ):
                sanitize[key] += record.get(key, 0)
            if record.get("mode") is not None:
                sanitize["mode"] = record["mode"]
            sanitize["seen"] = True
        elif name == "collapse_stats":
            for key in (
                "candidates",
                "merged",
                "merged_proved",
                "merged_tested",
                "split_unproven",
                "split_cycle",
                "split_size",
                "refuted",
                "uncanonical",
                "classes",
            ):
                collapse[key] += record.get(key, 0)
            collapse["seen"] = True
        elif name == "analysis_cache_stats":
            analysis["hits"] += record.get("hits", 0)
            analysis["misses"] += record.get("misses", 0)
            analysis["seen"] = True
        elif name == "lease_reclaim":
            totals["lease_reclaims"] += 1
        elif name == "worker_dead":
            totals["worker_deaths"] += 1
        elif name == "lease_timeout":
            totals["lease_timeouts"] += 1
        elif name == "shard_done":
            totals["shards_done"] += 1
        elif name in ("batch_compile", "prob_compile"):
            compiles.append(record)
        elif name in ("server_start", "server_stop"):
            service["seen"] = True
        elif name == "server_drain":
            service["seen"] = True
            service["drains"] += 1
        elif name == "request_admitted":
            service["seen"] = True
            service["admitted"] += 1
        elif name == "request_coalesced":
            service["seen"] = True
            service["coalesced"] += 1
        elif name == "request_shed":
            service["seen"] = True
            reason = record.get("reason", "?")
            service["shed"][reason] = service["shed"].get(reason, 0) + 1
            service["shed_total"] += 1
        elif name == "request_retry":
            service["seen"] = True
            service["retries"] += 1
        elif name == "request_done":
            service["seen"] = True
            status = str(record.get("status", "?"))
            service["done"][status] = service["done"].get(status, 0) + 1
        elif name == "breaker_open":
            service["seen"] = True
            service["breaker_opens"] += 1
        elif name in ("search_start", "search_done"):
            search["seen"] = True
            search["functions"] = max(
                search["functions"], record.get("functions", 0)
            )
            search["strategies"] = max(
                search["strategies"], record.get("strategies", 0)
            )
        elif name == "search_space":
            search["seen"] = True
            search["spaces"].append(record)
        elif name == "search_strategy":
            search["seen"] = True
            search["results"].append(record)

    for row in functions.values():
        row["attempted"] = row["active"] + row["dormant"]

    return {
        "run_dir": run_dir,
        "schema_version": SCHEMA_VERSION,
        "manifest": manifest,
        "functions": functions,
        "totals": totals,
        "memo": memo if memo["seen"] else None,
        "analysis_cache": analysis if analysis["seen"] else None,
        "sanitize": sanitize if sanitize["seen"] else None,
        "collapse": collapse if collapse["seen"] else None,
        "compiles": compiles,
        "search": search if search["seen"] else None,
        "service": service if service["seen"] else None,
        "errors": errors[:20],
    }


def _rate(hits: int, misses: int) -> str:
    total = hits + misses
    if not total:
        return "n/a"
    return f"{100.0 * hits / total:.1f}%"


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "?"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}{suffix}"
    return f"{value}{suffix}"


def render_report(summary: Dict[str, object]) -> str:
    """The human-readable report for one :func:`summarize_run` summary."""
    lines: List[str] = []
    manifest = summary.get("manifest")
    totals: Dict = summary["totals"]
    lines.append(f"Run report — {summary['run_dir']}")
    if manifest:
        lines.append(
            f"  tool: {manifest.get('tool', '?')}"
            f"   started: {manifest.get('started_at', '?')}"
        )
        host = manifest.get("host") or {}
        lines.append(
            f"  host: {host.get('hostname', '?')}"
            f" ({host.get('platform', '?')}, python {host.get('python', '?')},"
            f" {host.get('cpu_count', '?')} cpus)"
        )
        lines.append(
            f"  config digest: {manifest.get('config_digest') or 'n/a'}"
            f"   seeds: {manifest.get('seeds') or '{}'}"
        )
        if manifest.get("env"):
            toggles = " ".join(
                f"{key}={value}" for key, value in manifest["env"].items()
            )
            lines.append(f"  env toggles: {toggles}")
        if manifest.get("wall_s") is not None:
            lines.append(
                f"  wall: {manifest['wall_s']}s   cpu: {manifest.get('cpu_s', '?')}s"
                f"   ok: {_fmt(manifest.get('ok'))}"
            )
    lines.append(
        f"  events: {totals['events']} (schema v{summary['schema_version']}, "
        f"{totals['schema_errors']} invalid)"
    )
    if totals.get("unknown_events"):
        names = ", ".join(totals.get("unknown_event_names", []))
        lines.append(
            f"  warning: {totals['unknown_events']} event(s) of unknown "
            f"kind(s) [{names}] — journal written by a newer schema?"
        )
    functions: Dict[str, Dict] = summary["functions"]
    if functions:
        lines.append("")
        header = (
            f"  {'function':<20} {'instances':>9} {'levels':>6} "
            f"{'attempted':>9} {'active':>7} {'dormant':>8} {'quar':>5} "
            f"{'wall':>8}  status"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for label in sorted(functions):
            row = functions[label]
            if row["cached"]:
                status = "cached"
            elif row["completed"] is True:
                status = "complete"
            elif row["completed"] is False:
                status = f"aborted({row['reason']})"
            else:
                status = "?"
            if row["resumed"]:
                status += ", resumed"
            lines.append(
                f"  {label:<20} {_fmt(row['instances']):>9} "
                f"{_fmt(row['levels']):>6} {row['attempted']:>9} "
                f"{row['active']:>7} {row['dormant']:>8} "
                f"{row['quarantined']:>5} {_fmt(row['wall'], 's'):>8}  {status}"
            )
    compiles: List[Dict] = summary.get("compiles") or []
    if compiles:
        lines.append("")
        for record in compiles:
            kind = "batch" if record["event"] == "batch_compile" else "probabilistic"
            lines.append(
                f"  {kind} compile {record.get('function', '?')}: "
                f"{record.get('attempted')} attempted, "
                f"{record.get('active')} active, "
                f"{record.get('quarantined', 0)} quarantined, "
                f"size {record.get('code_size', '?')}"
            )
    search = summary.get("search")
    if search:
        lines.append("")
        lines.append(
            f"  search lab: {search['functions']} function(s) x "
            f"{search['strategies']} strategies"
        )
        by_function: Dict[str, List[Dict]] = {}
        for record in search["results"]:
            by_function.setdefault(record.get("function", "?"), []).append(record)
        for record in search["spaces"]:
            label = record.get("function", "?")
            lines.append(
                f"    {label}: {record.get('nodes')} instances, "
                f"{record.get('leaves')} leaves, "
                f"{record.get('pareto')} pareto point(s)"
            )
            for result in by_function.get(label, []):
                lines.append(
                    f"      {result.get('strategy', '?'):<12} "
                    f"fitness {result.get('fitness')} "
                    f"(distance {result.get('distance')}, "
                    f"{_fmt(result.get('attempted'))} attempted)"
                )
    lines.append("")
    memo = summary.get("memo")
    if memo:
        entries = memo["entries"]
        lines.append(
            f"  memo: {memo['hits']} hits / {memo['misses']} misses "
            f"({_rate(memo['hits'], memo['misses'])} hit rate"
            + (f", {entries} entries)" if entries is not None else ")")
        )
    analysis = summary.get("analysis_cache")
    if analysis:
        lines.append(
            f"  analysis cache: {analysis['hits']} hits / "
            f"{analysis['misses']} misses "
            f"({_rate(analysis['hits'], analysis['misses'])} hit rate)"
        )
    sanitize = summary.get("sanitize")
    if sanitize:
        verdicts = ""
        if sanitize["mode"] == "full":
            verdicts = (
                f" — verdicts: {sanitize['proved']} proved, "
                f"{sanitize['tested']} tested, "
                f"{sanitize['unverified']} unverified, "
                f"{sanitize['refuted']} refuted"
            )
        lines.append(
            f"  sanitizer ({sanitize['mode'] or '?'}): "
            f"{sanitize['edges']} edges checked, "
            f"{sanitize['findings']} findings, "
            f"{sanitize['contract_violations']} contract violations"
            + verdicts
        )
    collapse = summary.get("collapse")
    if collapse:
        lines.append(
            f"  collapse (semantic): {collapse['merged']} merged "
            f"({collapse['merged_proved']} proved, "
            f"{collapse['merged_tested']} tested) of "
            f"{collapse['candidates']} candidates — "
            f"{collapse['split_unproven']} unproven, "
            f"{collapse['split_cycle']} cycle-split, "
            f"{collapse['split_size']} size-split, "
            f"{collapse['refuted']} refuted, "
            f"{collapse['classes']} semantic class(es)"
        )
    quarantine: Dict[str, int] = totals["quarantine"]
    if totals["quarantine_total"] or totals["faults_injected"]:
        by_kind = ", ".join(
            f"{kind} {count}" for kind, count in sorted(quarantine.items())
        )
        lines.append(
            f"  quarantine: {totals['quarantine_total']} total"
            + (f" ({by_kind})" if by_kind else "")
            + f"; faults injected: {totals['faults_injected']}"
        )
    else:
        lines.append("  quarantine: 0")
    lines.append(
        f"  store cache hits: {totals['store_cache_hits']}   "
        f"checkpoints written: {totals['checkpoints_written']}   "
        f"resumes: {totals['resumes']}"
    )
    if (
        totals["shards_done"]
        or totals["lease_reclaims"]
        or totals["worker_deaths"]
        or totals["lease_timeouts"]
    ):
        lines.append(
            f"  shards done: {totals['shards_done']}   "
            f"leases reclaimed: {totals['lease_reclaims']}   "
            f"workers died: {totals['worker_deaths']}   "
            f"lease timeouts: {totals['lease_timeouts']}"
        )
    service = summary.get("service")
    if service:
        done = ", ".join(
            f"{status}: {count}"
            for status, count in sorted(service["done"].items())
        )
        lines.append(
            f"  service: {service['admitted']} admitted "
            f"({service['coalesced']} coalesced), "
            f"{service['shed_total']} shed, "
            f"{service['retries']} executor retries, "
            f"{service['breaker_opens']} breaker opens, "
            f"{service['drains']} drain(s)"
        )
        if done:
            lines.append(f"  service responses: {done}")
        if service["shed"]:
            shed = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(service["shed"].items())
            )
            lines.append(f"  service shed by reason: {shed}")
    errors: List[str] = summary.get("errors") or []
    if errors:
        lines.append("")
        lines.append("  schema violations (first 20):")
        for error in errors:
            lines.append(f"    - {error}")
    return "\n".join(lines)
