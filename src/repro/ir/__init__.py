"""RTL intermediate representation (register transfer lists).

The IR mirrors VPO's single low-level representation: a function is an
ordered list of basic blocks (positional order is semantic — a block
without a control transfer falls through to the next positional block),
each holding a list of immutable RTL instructions.
"""

from repro.ir.operands import (
    BinOp,
    Const,
    Expr,
    Mem,
    Reg,
    Sym,
    UnOp,
)
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Instruction,
    Jump,
    Return,
    INVERTED_RELOP,
)
from repro.ir.function import BasicBlock, Function, GlobalVar, Program
from repro.ir.cfg import (
    CFG,
    build_cfg,
    validate_function,
)
from repro.ir.printer import format_expr, format_instruction, format_function
from repro.ir.validate import IRValidationError, check_ir, validate_ir

__all__ = [
    "Expr",
    "Reg",
    "Const",
    "Sym",
    "Mem",
    "BinOp",
    "UnOp",
    "Instruction",
    "Assign",
    "Compare",
    "CondBranch",
    "Jump",
    "Call",
    "Return",
    "INVERTED_RELOP",
    "BasicBlock",
    "Function",
    "GlobalVar",
    "Program",
    "CFG",
    "build_cfg",
    "validate_function",
    "IRValidationError",
    "check_ir",
    "validate_ir",
    "format_expr",
    "format_instruction",
    "format_function",
]
