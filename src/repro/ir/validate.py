"""Deep IR well-formedness validation.

Historically this module implemented its own checks; they are now
delegated to the IR sanitizer (:mod:`repro.staticanalysis.sanitize`),
which subsumes them with a per-check diagnostic catalogue
(docs/STATIC_ANALYSIS.md).  The surface here is unchanged — the guard
and a large body of tests call :func:`check_ir`/:func:`validate_ir` —
and the checks cover:

- **CFG consistency** — every branch target is a block label, blocks
  are uniquely labeled, the last block does not fall off the function
  (CFG001–CFG008; with a *program*, a branch into another function's
  label namespace is also rejected).
- **Machine legality** — the VPO invariant: every RTL is a legal
  instruction of the target at all times (MACH001/MACH002).
- **Register discipline under the legality flags** — after the
  compulsory register assignment no pseudo register may remain, and
  every hardware register index must be within the target's register
  file (MACH003–MACH005).
- **No dangling registers** — a register that can be read before any
  definition reaches it (CC001).
- **Frame consistency** — stack slots must not overlap and must lie
  inside ``frame_size`` (FRAME001/FRAME002).

The guarded phase runner (:mod:`repro.robustness.guard`) calls
:func:`validate_ir` after every phase application when validation is
enabled; tests and debugging sessions can call it directly.  The
deeper dataflow checks (use-before-def, frame-reference bounds) run
only in the sanitizer's ``full`` mode — see
:func:`repro.staticanalysis.sanitize.sanitize_function`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.function import Function, Program
from repro.machine.target import Target


class IRValidationError(ValueError):
    """A function instance violates an IR well-formedness invariant."""

    def __init__(self, function_name: str, problems: List[str]):
        self.function_name = function_name
        self.problems = list(problems)
        super().__init__(
            f"{function_name}: " + "; ".join(self.problems)
        )


def check_ir(
    func: Function,
    target: Optional[Target] = None,
    program: Optional[Program] = None,
) -> List[str]:
    """Collect every invariant violation in *func* (empty = valid).

    With a *target*, machine legality is checked too; with a
    *program*, branches are checked against the whole program's label
    namespace (a branch resolving into another function is an error).
    """
    # Imported lazily: the sanitizer builds on repro.ir and
    # repro.analysis, so a module-level import would be circular.
    from repro.staticanalysis import sanitize as sanitize_mod

    structural = sanitize_mod.structural_findings(func, program)
    if structural:
        # Structural breakage makes the later passes meaningless.
        return [f"{structural[0].where}: {structural[0].detail}"]

    findings = []
    if target is not None:
        findings.extend(sanitize_mod.machine_findings(func, target))
    else:
        findings.extend(sanitize_mod.register_discipline_findings(func))
    findings.extend(sanitize_mod.frame_layout_findings(func))
    findings.extend(sanitize_mod.dangling_entry_findings(func))
    if program is not None:
        findings.extend(sanitize_mod.call_findings(func, program))
    return [f"{finding.where}: {finding.detail}" for finding in findings]


def validate_ir(
    func: Function,
    target: Optional[Target] = None,
    program: Optional[Program] = None,
) -> None:
    """Raise :class:`IRValidationError` when *func* is malformed."""
    problems = check_ir(func, target, program)
    if problems:
        raise IRValidationError(func.name, problems)
