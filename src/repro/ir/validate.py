"""Deep IR well-formedness validation.

:func:`repro.ir.cfg.validate_function` checks the structural invariants
(transfers at block ends, branch targets exist).  This module layers the
semantic invariants the optimizer must preserve on top, so a buggy or
sabotaged phase application can be caught at runtime before its output
poisons the enumerated space:

- **CFG consistency** — every branch target is a block label, blocks are
  uniquely labeled, the last block does not fall off the function.
- **Machine legality** — the VPO invariant: every RTL is a legal
  instruction of the target at all times.
- **Register discipline under the legality flags** — after the
  compulsory register assignment (``reg_assigned``) no pseudo register
  may remain, and every hardware register index must be within the
  target's register file.
- **No dangling registers** — a register that can be read before any
  definition reaches it (computed as liveness into the entry block,
  minus the frame/stack pointers and the argument registers).
- **Frame consistency** — stack slots must not overlap and must lie
  inside ``frame_size``.

The guarded phase runner (:mod:`repro.robustness.guard`) calls
:func:`validate_ir` after every phase application when validation is
enabled; tests and debugging sessions can call it directly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.liveness import compute_liveness
from repro.ir.cfg import validate_function
from repro.ir.function import Function
from repro.ir.operands import Reg
from repro.machine.target import NUM_HW_REGS, Target

#: hardware registers that may legitimately be live into the entry
#: block: the four argument registers, the frame pointer, and the
#: stack pointer.
_ENTRY_LIVE_OK = frozenset(
    [Reg(i, pseudo=False) for i in range(4)]
    + [Reg(13, pseudo=False), Reg(14, pseudo=False)]
)


class IRValidationError(ValueError):
    """A function instance violates an IR well-formedness invariant."""

    def __init__(self, function_name: str, problems: List[str]):
        self.function_name = function_name
        self.problems = list(problems)
        super().__init__(
            f"{function_name}: " + "; ".join(self.problems)
        )


def check_ir(func: Function, target: Optional[Target] = None) -> List[str]:
    """Collect every invariant violation in *func* (empty = valid)."""
    problems: List[str] = []

    try:
        validate_function(func)
    except ValueError as error:
        # Structural breakage makes the later passes meaningless.
        return [str(error)]

    if target is not None:
        for block in func.blocks:
            for inst in block.insts:
                if not target.is_legal(inst):
                    problems.append(
                        f"{block.label}: illegal machine instruction {inst!r}"
                    )

    problems.extend(_check_registers(func))
    problems.extend(_check_frame(func))
    problems.extend(_check_dangling(func))
    return problems


def validate_ir(func: Function, target: Optional[Target] = None) -> None:
    """Raise :class:`IRValidationError` when *func* is malformed."""
    problems = check_ir(func, target)
    if problems:
        raise IRValidationError(func.name, problems)


# ----------------------------------------------------------------------
# Individual invariant checks
# ----------------------------------------------------------------------


def _check_registers(func: Function) -> List[str]:
    problems: List[str] = []
    for block in func.blocks:
        for inst in block.insts:
            for reg in set(inst.defs()) | set(inst.uses()):
                if reg.pseudo:
                    if func.reg_assigned:
                        problems.append(
                            f"{block.label}: pseudo register {reg!r} after "
                            "register assignment"
                        )
                    elif reg.index >= func.next_pseudo:
                        problems.append(
                            f"{block.label}: pseudo register {reg!r} was "
                            f"never allocated (next_pseudo={func.next_pseudo})"
                        )
                elif not 0 <= reg.index < NUM_HW_REGS:
                    problems.append(
                        f"{block.label}: hardware register {reg!r} outside "
                        f"the register file (0..{NUM_HW_REGS - 1})"
                    )
    return problems


def _check_frame(func: Function) -> List[str]:
    problems: List[str] = []
    extents = sorted(
        (slot.offset, slot.offset + slot.words * 4, slot.name)
        for slot in func.frame.values()
    )
    previous_end = 0
    previous_name = None
    for start, end, name in extents:
        if start < 0 or end > func.frame_size:
            problems.append(
                f"frame slot {name!r} [{start}, {end}) outside the frame "
                f"(size {func.frame_size})"
            )
        if start < previous_end:
            problems.append(
                f"frame slots {previous_name!r} and {name!r} overlap"
            )
        previous_end = end
        previous_name = name
    return problems


def _check_dangling(func: Function) -> List[str]:
    """Registers that may be read before any definition reaches them."""
    liveness = compute_liveness(func)
    entry_live = liveness.live_in.get(func.entry.label, frozenset())
    dangling = [
        reg
        for reg in entry_live
        if reg.pseudo or reg not in _ENTRY_LIVE_OK
    ]
    if not dangling:
        return []
    names = ", ".join(repr(reg) for reg in sorted(dangling, key=lambda r: (r.pseudo, r.index)))
    return [f"dangling registers live into the entry block: {names}"]
