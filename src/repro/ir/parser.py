"""Parser for the VPO-style textual RTL form.

Round-trips :func:`repro.ir.printer.format_function`: any function the
printer renders can be parsed back into an identical structure.  Useful
for writing tests compactly and for loading dumped instances.

The printed expression grammar is intentionally shallow — the VPO
invariant keeps every RTL a legal machine instruction, so a source
expression is at most ``operand op operand`` with the right operand
possibly a parenthesized shifted form::

    function := block*
    block    := LABEL ':' instruction*
    instr    := 'RET;' | 'CALL' name ',' int ';'
              | 'PC=' label ';' | 'PC=IC' relop '0,' label ';'
              | 'IC=' expr '?' expr ';' | lvalue '=' expr ';'
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Expr, Mem, Reg, Sym, UnOp


class RTLParseError(Exception):
    """Malformed textual RTL."""


_TOKEN_RE = re.compile(
    r"""
    (?P<reg>[rt]\[\d+\])
  | (?P<mem>M\[)
  | (?P<sym>(?:HI|LO)\[[A-Za-z_][A-Za-z0-9_]*\])
  | (?P<float>\d+\.\d*(?:e[+-]?\d+)?|\d+e[+-]?\d+|inf|nan)
  | (?P<int>\d+)
  | (?P<conv>\((?:f|i)\))
  | (?P<op>>>l|<<|>>|\+f|-f|\*f|/f|[-+*/%&|^~()?=;:,\]])
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_BINOP_BY_SYMBOL = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "lsl",
    ">>l": "lsr",
    ">>": "asr",
    "+f": "fadd",
    "-f": "fsub",
    "*f": "fmul",
    "/f": "fdiv",
}

_RELOP_BY_SYMBOL = {
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
}

# relops appear only inside "PC=IC<relop>0,label;" — tokenize that
# region separately because "<" would otherwise clash with "<<".
_BRANCH_RE = re.compile(
    r"^PC=IC(?P<relop><=|>=|==|!=|<|>)0,(?P<target>[A-Za-z_][A-Za-z0-9_]*);$"
)
_JUMP_RE = re.compile(r"^PC=(?P<target>[A-Za-z_][A-Za-z0-9_]*);$")
_CALL_RE = re.compile(r"^CALL\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*),(?P<nargs>\d+);$")
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_][A-Za-z0-9_]*):$")


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise RTLParseError(f"bad RTL at ...{text[position:position+20]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group()))
    return tokens


class _ExprParser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise RTLParseError("unexpected end of RTL expression")
        self.pos += 1
        return token

    def expect(self, text: str) -> None:
        kind, value = self.take()
        if value != text:
            raise RTLParseError(f"expected {text!r}, found {value!r}")

    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        left = self.parse_operand()
        token = self.peek()
        if token is not None and token[0] == "op" and token[1] in _BINOP_BY_SYMBOL:
            symbol = self.take()[1]
            right = self.parse_operand(allow_parenthesized=True)
            return BinOp(_BINOP_BY_SYMBOL[symbol], left, right)
        return left

    def parse_operand(self, allow_parenthesized: bool = False) -> Expr:
        kind, text = self.take()
        if kind == "reg":
            return Reg(int(text[2:-1]), pseudo=text[0] == "t")
        if kind == "int":
            return Const(int(text))
        if kind == "float":
            return Const(float(text))
        if kind == "sym":
            part = "hi" if text.startswith("HI") else "lo"
            return Sym(text[3:-1], part)
        if kind == "mem":
            addr = self.parse_expr()
            self.expect("]")
            return Mem(addr)
        if kind == "conv":
            op = "itof" if text == "(f)" else "ftoi"
            return UnOp(op, self.parse_operand())
        if kind == "op" and text == "~":
            return UnOp("not", self.parse_operand())
        if kind == "op" and text == "-":
            # negative literal ("-3") or unary negate ("-t[1]")
            nxt = self.peek()
            if nxt is not None and nxt[0] in ("int", "float"):
                literal_kind, literal = self.take()
                if literal_kind == "int":
                    return Const(-int(literal))
                return Const(-float(literal))
            return UnOp("neg", self.parse_operand())
        if kind == "op" and text == "-f":
            return UnOp("fneg", self.parse_operand())
        if kind == "op" and text == "(" and allow_parenthesized:
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise RTLParseError(f"unexpected token {text!r} in RTL expression")


def parse_instruction(line: str):
    """Parse one printed RTL instruction."""
    line = line.strip()
    if line == "RET;":
        return Return()
    match = _CALL_RE.match(line)
    if match:
        return Call(match.group("name"), int(match.group("nargs")))
    match = _BRANCH_RE.match(line)
    if match:
        return CondBranch(_RELOP_BY_SYMBOL[match.group("relop")], match.group("target"))
    match = _JUMP_RE.match(line)
    if match:
        return Jump(match.group("target"))
    if not line.endswith(";"):
        raise RTLParseError(f"missing semicolon: {line!r}")
    body = line[:-1]
    if body.startswith("IC="):
        tokens = _tokenize(body[3:])
        parser = _ExprParser(tokens)
        left = parser.parse_expr()
        parser.expect("?")
        right = parser.parse_expr()
        if parser.peek() is not None:
            raise RTLParseError(f"trailing tokens in {line!r}")
        return Compare(left, right)
    # assignment: lvalue=expr
    tokens = _tokenize(body)
    parser = _ExprParser(tokens)
    dst = parser.parse_operand()
    if not isinstance(dst, (Reg, Mem)):
        raise RTLParseError(f"bad destination in {line!r}")
    parser.expect("=")
    src = parser.parse_expr()
    if parser.peek() is not None:
        raise RTLParseError(f"trailing tokens in {line!r}")
    return Assign(dst, src)


def parse_function(text: str, name: str = "parsed") -> Function:
    """Parse a whole printed function back into IR."""
    func = Function(name)
    current: Optional[BasicBlock] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            current = BasicBlock(match.group("label"))
            func.blocks.append(current)
            continue
        if current is None:
            raise RTLParseError("instruction before any block label")
        current.insts.append(parse_instruction(line))
    if not func.blocks:
        raise RTLParseError("no blocks found")
    return func
