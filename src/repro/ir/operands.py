"""RTL operand expressions.

All expression nodes are immutable and hashable, so phases may freely
share subtrees between instructions and functions; cloning a function
never copies expressions.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

Number = Union[int, float]


class Expr:
    """Base class for RTL operand expressions."""

    __slots__ = ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all sub-expressions, pre-order."""
        yield self

    def registers(self) -> Iterator["Reg"]:
        """Yield every register appearing in the expression."""
        for node in self.walk():
            if isinstance(node, Reg):
                yield node

    def reads_memory(self) -> bool:
        return any(isinstance(node, Mem) for node in self.walk())


class Reg(Expr):
    """A register: hardware (``r[n]``) or pseudo (``t[n]``)."""

    __slots__ = ("index", "pseudo", "_hash")

    def __init__(self, index: int, pseudo: bool = True):
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "pseudo", pseudo)
        object.__setattr__(self, "_hash", hash((Reg, index, pseudo)))

    def __setattr__(self, name, value):
        raise AttributeError("Reg is immutable")

    def __eq__(self, other):
        return (
            type(other) is Reg
            and other.index == self.index
            and other.pseudo == self.pseudo
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"t[{self.index}]" if self.pseudo else f"r[{self.index}]"


class Const(Expr):
    """An integer or float literal."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: Number):
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((Const, value, type(value))))

    def __setattr__(self, name, value):
        raise AttributeError("Const is immutable")

    def __eq__(self, other):
        return (
            type(other) is Const
            and other.value == self.value
            and type(other.value) is type(self.value)
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return repr(self.value)


class Sym(Expr):
    """Half of the address of a global symbol (``HI[name]``/``LO[name]``)."""

    __slots__ = ("name", "part", "_hash")

    def __init__(self, name: str, part: str):
        if part not in ("hi", "lo"):
            raise ValueError(f"bad symbol part: {part!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "part", part)
        object.__setattr__(self, "_hash", hash((Sym, name, part)))

    def __setattr__(self, name, value):
        raise AttributeError("Sym is immutable")

    def __eq__(self, other):
        return (
            type(other) is Sym and other.name == self.name and other.part == self.part
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"{self.part.upper()}[{self.name}]"


class Mem(Expr):
    """A memory reference ``M[addr]`` (word sized)."""

    __slots__ = ("addr", "_hash")

    def __init__(self, addr: Expr):
        object.__setattr__(self, "addr", addr)
        object.__setattr__(self, "_hash", hash((Mem, addr)))

    def __setattr__(self, name, value):
        raise AttributeError("Mem is immutable")

    def __eq__(self, other):
        return type(other) is Mem and other.addr == self.addr

    def __hash__(self):
        return self._hash

    def walk(self):
        yield self
        yield from self.addr.walk()

    def __repr__(self):
        return f"M[{self.addr!r}]"


class BinOp(Expr):
    """A binary operation over two sub-expressions."""

    __slots__ = ("op", "left", "right", "_hash")

    def __init__(self, op: str, left: Expr, right: Expr):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "_hash", hash((BinOp, op, left, right)))

    def __setattr__(self, name, value):
        raise AttributeError("BinOp is immutable")

    def __eq__(self, other):
        return (
            type(other) is BinOp
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return self._hash

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    """A unary operation."""

    __slots__ = ("op", "operand", "_hash")

    def __init__(self, op: str, operand: Expr):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "_hash", hash((UnOp, op, operand)))

    def __setattr__(self, name, value):
        raise AttributeError("UnOp is immutable")

    def __eq__(self, other):
        return (
            type(other) is UnOp
            and other.op == self.op
            and other.operand == self.operand
        )

    def __hash__(self):
        return self._hash

    def walk(self):
        yield self
        yield from self.operand.walk()

    def __repr__(self):
        return f"({self.op} {self.operand!r})"


# ----------------------------------------------------------------------
# Expression helpers shared by phases
# ----------------------------------------------------------------------

COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


def substitute(expr: Expr, mapping: dict) -> Expr:
    """Return *expr* with sub-expressions replaced per *mapping*.

    *mapping* maps expression nodes (typically registers) to replacement
    expressions.  Matching is by equality, applied top-down: a node that
    matches is replaced without descending into it.
    """
    replacement = mapping.get(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, BinOp):
        left = substitute(expr.left, mapping)
        right = substitute(expr.right, mapping)
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnOp):
        operand = substitute(expr.operand, mapping)
        if operand is expr.operand:
            return expr
        return UnOp(expr.op, operand)
    if isinstance(expr, Mem):
        addr = substitute(expr.addr, mapping)
        if addr is expr.addr:
            return expr
        return Mem(addr)
    return expr


def _mask32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def fold_binop(op: str, left: Number, right: Number):
    """Constant-fold one binary operation; return None when impossible."""
    try:
        if op == "add":
            return _mask32(left + right)
        if op == "sub":
            return _mask32(left - right)
        if op == "mul":
            return _mask32(left * right)
        if op == "div":
            if right == 0:
                return None
            return _mask32(int(left / right))  # C-style truncation
        if op == "rem":
            if right == 0:
                return None
            return _mask32(left - int(left / right) * right)
        if op == "and":
            return _mask32(left & right)
        if op == "or":
            return _mask32(left | right)
        if op == "xor":
            return _mask32(left ^ right)
        if op == "lsl":
            if not 0 <= right < 32:
                return None
            return _mask32(left << right)
        if op == "lsr":
            if not 0 <= right < 32:
                return None
            return _mask32((left & 0xFFFFFFFF) >> right)
        if op == "asr":
            if not 0 <= right < 32:
                return None
            return _mask32(left >> right)
        if op == "fadd":
            return float(left) + float(right)
        if op == "fsub":
            return float(left) - float(right)
        if op == "fmul":
            return float(left) * float(right)
        if op == "fdiv":
            if right == 0:
                return None
            return float(left) / float(right)
    except TypeError:
        return None
    return None


def fold_unop(op: str, value: Number):
    """Constant-fold one unary operation; return None when impossible."""
    if op == "neg":
        return _mask32(-value)
    if op == "not":
        return _mask32(~int(value))
    if op == "fneg":
        return -float(value)
    if op == "itof":
        return float(value)
    if op == "ftoi":
        return _mask32(int(value))
    return None


def fold(expr: Expr) -> Expr:
    """Recursively constant-fold *expr*, returning a simplified tree."""
    if isinstance(expr, BinOp):
        left = fold(expr.left)
        right = fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            value = fold_binop(expr.op, left.value, right.value)
            if value is not None:
                return Const(value)
        # Algebraic identities on the folded children.
        if isinstance(right, Const) and not isinstance(right.value, float):
            if right.value == 0 and expr.op in ("add", "sub", "or", "xor", "lsl", "lsr", "asr"):
                return left
            if right.value == 1 and expr.op in ("mul", "div"):
                return left
            if right.value == 0 and expr.op == "mul":
                return Const(0)
        if isinstance(left, Const) and not isinstance(left.value, float):
            if left.value == 0 and expr.op == "add":
                return right
            if left.value == 1 and expr.op == "mul":
                return right
            if left.value == 0 and expr.op == "mul":
                return Const(0)
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnOp):
        operand = fold(expr.operand)
        if isinstance(operand, Const):
            value = fold_unop(expr.op, operand.value)
            if value is not None:
                return Const(value)
        if operand is expr.operand:
            return expr
        return UnOp(expr.op, operand)
    if isinstance(expr, Mem):
        addr = fold(expr.addr)
        if addr is expr.addr:
            return expr
        return Mem(addr)
    return expr
