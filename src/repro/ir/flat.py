"""Flat array-of-tables IR: the enumeration hot-path representation.

The object IR (``repro.ir.function``) is the authoring and lint
surface: small immutable instruction/operand trees that are pleasant
to build, print, and verify.  It is also what makes cold expansion
slow — every phase attempt walks thousands of tiny Python objects,
allocating frozensets and tuples as it goes.

This module keeps the object IR as the source of truth for *meaning*
and adds a flat, integer-keyed view for *speed*:

- Every distinct :class:`Reg`, block label, and :class:`Instruction`
  is interned once into a global append-only pool and identified by a
  small int.  Interning is hash-consing: two structurally equal
  instructions anywhere in the enumeration share one id, so per-
  instruction facts are computed once per *distinct* instruction, not
  once per occurrence.
- A :class:`FlatFunction` is just parallel lists of ints: a label id
  per block and a list of instruction ids per block, plus the same
  scalar metadata a :class:`Function` carries (legality flags, frame,
  counters).  Cloning copies a handful of small int lists —
  clone-as-array-slice, no per-instruction object churn.
- Per-id side tables precomputed at intern time (def/use bitmasks
  over register ids, kind and effect flags, branch targets, memory
  reference lists, render templates) are what the flat phase kernels
  and analyses consume instead of re-deriving facts from the object
  tree on every attempt.
- Fingerprinting renders each instruction from its precomputed
  template (literal text chunks interleaved with register/label
  slots), reproducing ``fingerprint_function``'s remapped byte stream
  exactly — flat and object engines hash identical bytes, which is
  what keeps their DAGs bit-identical.

Converters are lossless both ways.  ``from_flat`` is intentionally
trivial (the intern pool holds the real instruction objects), which
is what makes the dispatch fallback viable: a phase without a flat
kernel round-trips through the object IR at the cost of two list
comprehensions, not a parse.

The pools are process-global and append-only.  They never shrink
during enumeration; :func:`reset_flat_caches` exists for tests and
long-lived services that recycle workers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.crc import crc32
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Instruction,
    Jump,
    Return,
)
from repro.ir.operands import Mem, Reg
from repro.ir.printer import format_instruction

# ----------------------------------------------------------------------
# Instruction kinds and effect flags
# ----------------------------------------------------------------------

K_ASSIGN = 0  # Assign to a register
K_STORE = 1  # Assign to memory
K_COMPARE = 2
K_CONDBR = 3
K_JUMP = 4
K_CALL = 5
K_RET = 6

F_TRANSFER = 1
F_SETS_CC = 2
F_USES_CC = 4
F_READS_MEM = 8
F_WRITES_MEM = 16

# ----------------------------------------------------------------------
# Register interning
# ----------------------------------------------------------------------

# Hardware registers are seeded first so rid == hardware index for
# r0..r15; every pseudo register therefore has rid >= NUM_SEEDED_HW.
NUM_SEEDED_HW = 16

_REG_IDS: Dict[Reg, int] = {}
REG_OBJS: List[Reg] = []


def reg_id(reg: Reg) -> int:
    rid = _REG_IDS.get(reg)
    if rid is None:
        rid = len(REG_OBJS)
        _REG_IDS[reg] = rid
        REG_OBJS.append(reg)
    return rid


def _seed_hw_regs() -> None:
    for i in range(NUM_SEEDED_HW):
        reg_id(Reg(i, pseudo=False))


_seed_hw_regs()


def iter_rids(mask: int) -> Iterator[int]:
    """Yield the register ids set in *mask*, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(regs) -> int:
    mask = 0
    for reg in regs:
        mask |= 1 << reg_id(reg)
    return mask


def regs_of_mask(mask: int) -> List[Reg]:
    return [REG_OBJS[rid] for rid in iter_rids(mask)]


# ----------------------------------------------------------------------
# Label interning
# ----------------------------------------------------------------------

_LABEL_IDS: Dict[str, int] = {}
LABEL_STRS: List[str] = []


def label_id(label: str) -> int:
    lid = _LABEL_IDS.get(label)
    if lid is None:
        lid = len(LABEL_STRS)
        _LABEL_IDS[label] = lid
        LABEL_STRS.append(label)
    return lid


# ----------------------------------------------------------------------
# Instruction interning and per-id side tables
# ----------------------------------------------------------------------

_INST_IDS: Dict[Instruction, int] = {}
INST_OBJS: List[Instruction] = []

KIND: List[int] = []
FLAGS: List[int] = []
DEF_MASK: List[int] = []
USE_MASK: List[int] = []
#: rid of the single register defined by a plain register assignment
#: (defuse.defined_reg), or -1.
DEF_RID: List[int] = []
#: branch target label id for Jump/CondBranch, or -1.
TARGET_LID: List[int] = []
#: relop string for CondBranch, else "".
RELOP: List[str] = []
#: fingerprint render template: literal str chunks interleaved with
#: int slots — rid (>= 0) for a register, ~lid (< 0) for a label.
TEMPLATE: List[Tuple] = []
#: framerefs._mem_exprs flattened: tuple of (Mem expr, is_write).
MEM_REFS: List[Tuple] = []

_REG_SENTINEL = "\x00"
_LABEL_SENTINEL = "\x01"


def _build_template(inst: Instruction) -> Tuple:
    regs: List[Reg] = []
    labels: List[str] = []

    def reg_namer(reg: Reg) -> str:
        regs.append(reg)
        return _REG_SENTINEL

    def label_namer(label: str) -> str:
        labels.append(label)
        return _LABEL_SENTINEL

    text = format_instruction(inst, reg_namer, label_namer)
    parts: List = []
    literal: List[str] = []
    ri = li = 0
    for ch in text:
        if ch == _REG_SENTINEL:
            if literal:
                parts.append("".join(literal))
                literal = []
            parts.append(reg_id(regs[ri]))
            ri += 1
        elif ch == _LABEL_SENTINEL:
            if literal:
                parts.append("".join(literal))
                literal = []
            parts.append(~label_id(labels[li]))
            li += 1
        else:
            literal.append(ch)
    if literal:
        parts.append("".join(literal))
    return tuple(parts)


def _classify(inst: Instruction) -> Tuple[int, int]:
    if type(inst) is Assign:
        kind = K_STORE if isinstance(inst.dst, Mem) else K_ASSIGN
    elif type(inst) is Compare:
        kind = K_COMPARE
    elif type(inst) is CondBranch:
        kind = K_CONDBR
    elif type(inst) is Jump:
        kind = K_JUMP
    elif type(inst) is Call:
        kind = K_CALL
    elif type(inst) is Return:
        kind = K_RET
    else:  # pragma: no cover - closed instruction set
        raise TypeError(f"cannot intern {inst!r}")
    flags = 0
    if inst.is_transfer:
        flags |= F_TRANSFER
    if inst.sets_cc():
        flags |= F_SETS_CC
    if inst.uses_cc():
        flags |= F_USES_CC
    if inst.reads_memory():
        flags |= F_READS_MEM
    if inst.writes_memory():
        flags |= F_WRITES_MEM
    return kind, flags


def _mem_refs(inst: Instruction) -> Tuple:
    from repro.analysis.framerefs import _mem_exprs

    return tuple(_mem_exprs(inst))


def intern_inst(inst: Instruction) -> int:
    iid = _INST_IDS.get(inst)
    if iid is not None:
        return iid
    iid = len(INST_OBJS)
    _INST_IDS[inst] = iid
    INST_OBJS.append(inst)
    kind, flags = _classify(inst)
    KIND.append(kind)
    FLAGS.append(flags)
    DEF_MASK.append(mask_of(inst.defs()))
    USE_MASK.append(mask_of(inst.uses()))
    DEF_RID.append(reg_id(inst.dst) if kind == K_ASSIGN else -1)
    if kind == K_CONDBR:
        TARGET_LID.append(label_id(inst.target))
        RELOP.append(inst.relop)
    elif kind == K_JUMP:
        TARGET_LID.append(label_id(inst.target))
        RELOP.append("")
    else:
        TARGET_LID.append(-1)
        RELOP.append("")
    TEMPLATE.append(_build_template(inst))
    MEM_REFS.append(_mem_refs(inst))
    return iid


# ----------------------------------------------------------------------
# Block interning (content keys for analyses and fingerprint caching)
# ----------------------------------------------------------------------

_BLOCK_IDS: Dict[Tuple[int, ...], int] = {}
BLOCK_TUPLES: List[Tuple[int, ...]] = []


def block_id(insts: Tuple[int, ...]) -> int:
    bid = _BLOCK_IDS.get(insts)
    if bid is None:
        bid = len(BLOCK_TUPLES)
        _BLOCK_IDS[insts] = bid
        BLOCK_TUPLES.append(insts)
    return bid


# ----------------------------------------------------------------------
# FlatFunction
# ----------------------------------------------------------------------


class FlatFunction:
    """A function instance as parallel int lists (see module docstring).

    Mirrors the mutable surface of :class:`Function`: ``blocks[i]`` is
    a mutable list of instruction ids and ``labels[i]`` the matching
    label id.  Scalar metadata and legality flags carry over verbatim,
    so ``to_flat``/``from_flat`` round-trip losslessly.
    """

    __slots__ = (
        "name",
        "returns_value",
        "params",
        "labels",
        "blocks",
        "frame",
        "frame_size",
        "next_pseudo",
        "next_label",
        "reg_assigned",
        "sel_applied",
        "alloc_applied",
        "unrolled",
        "mem_facts",
        "_analyses",
        "_scalar_slots",
        "_content_key",
    )

    def __init__(self, name: str, returns_value: bool = False):
        self.name = name
        self.returns_value = returns_value
        self.params: List[str] = []
        self.labels: List[int] = []
        self.blocks: List[List[int]] = []
        self.frame: Dict = {}
        self.frame_size = 0
        self.next_pseudo = 0
        self.next_label = 0
        self.reg_assigned = False
        self.sel_applied = False
        self.alloc_applied = False
        self.unrolled: set = set()
        self.mem_facts = None  # source-level facts; see Function.mem_facts
        # Lazily-populated flat analyses (repro.analysis.flat); shared
        # with clones and rebound (never mutated) on invalidation,
        # exactly like Function._analyses.
        self._analyses = None
        # Memoized scalar_slot_offsets; reset where frame slots are
        # added (spill slots in opt.flat.assign).
        self._scalar_slots: Optional[frozenset] = None
        # Memoized content_key; dropped with the analyses on mutation
        # (the same invariant guards both: a phase that changes the
        # code must call invalidate_analyses before anyone reads it).
        self._content_key: Optional[Tuple] = None

    def invalidate_analyses(self) -> None:
        self._analyses = None
        self._content_key = None

    def clone(self) -> "FlatFunction":
        # bypass __init__: every slot is assigned below anyway, and
        # enumeration clones once per attempted edge
        other = FlatFunction.__new__(FlatFunction)
        other.name = self.name
        other.returns_value = self.returns_value
        other.params = self.params
        other.labels = list(self.labels)
        other.blocks = [list(block) for block in self.blocks]
        other.frame = self.frame  # copy-on-write: _spill copies first
        other.frame_size = self.frame_size
        other.next_pseudo = self.next_pseudo
        other.next_label = self.next_label
        other.reg_assigned = self.reg_assigned
        other.sel_applied = self.sel_applied
        other.alloc_applied = self.alloc_applied
        other.unrolled = self.unrolled  # never mutated in place on flat
        other.mem_facts = self.mem_facts  # plain data, never mutated
        other._analyses = self._analyses
        other._scalar_slots = self._scalar_slots
        other._content_key = self._content_key
        return other

    # -- construction helpers mirroring Function ----------------------

    def new_rid(self) -> int:
        """Allocate a fresh pseudo register; returns its rid."""
        if self.reg_assigned:
            raise RuntimeError(
                "cannot create pseudo registers after register assignment"
            )
        rid = reg_id(Reg(self.next_pseudo, pseudo=True))
        self.next_pseudo += 1
        return rid

    def new_lid(self) -> int:
        lid = label_id(f"L{self.next_label}")
        self.next_label += 1
        return lid

    # -- queries -------------------------------------------------------

    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def block_index(self, lid: int) -> int:
        return self.labels.index(lid)

    def scalar_slot_offsets(self) -> frozenset:
        offsets = self._scalar_slots
        if offsets is None:
            offsets = frozenset(
                slot.offset for slot in self.frame.values() if not slot.is_array
            )
            self._scalar_slots = offsets
        return offsets

    def content_key(self) -> Tuple:
        """Exact-content identity: labels plus interned block tuples.

        Pure-function results keyed by this (fingerprints, analyses)
        may be shared globally: equal keys mean equal code.
        """
        key = self._content_key
        if key is None:
            key = (
                tuple(self.labels),
                tuple(block_id(tuple(block)) for block in self.blocks),
            )
            self._content_key = key
        return key

    def __repr__(self):
        return f"<FlatFunction {self.name}: {len(self.blocks)} blocks>"


def to_flat(func: Function) -> FlatFunction:
    flat = FlatFunction(func.name, func.returns_value)
    flat.params = list(func.params)
    flat.labels = [label_id(block.label) for block in func.blocks]
    flat.blocks = [
        [intern_inst(inst) for inst in block.insts] for block in func.blocks
    ]
    flat.frame = dict(func.frame)
    flat.frame_size = func.frame_size
    flat.next_pseudo = func.next_pseudo
    flat.next_label = func.next_label
    flat.reg_assigned = func.reg_assigned
    flat.sel_applied = func.sel_applied
    flat.alloc_applied = func.alloc_applied
    flat.unrolled = set(func.unrolled)
    flat.mem_facts = func.mem_facts
    return flat


def from_flat(flat: FlatFunction) -> Function:
    func = Function(flat.name, flat.returns_value)
    func.params = list(flat.params)
    insts = INST_OBJS
    labels = LABEL_STRS
    func.blocks = [
        BasicBlock(labels[lid], [insts[iid] for iid in block])
        for lid, block in zip(flat.labels, flat.blocks)
    ]
    func.frame = dict(flat.frame)
    func.frame_size = flat.frame_size
    func.next_pseudo = flat.next_pseudo
    func.next_label = flat.next_label
    func.reg_assigned = flat.reg_assigned
    func.sel_applied = flat.sel_applied
    func.alloc_applied = flat.alloc_applied
    func.unrolled = set(flat.unrolled)
    func.mem_facts = flat.mem_facts
    return func


# ----------------------------------------------------------------------
# Fingerprinting (bit-identical to core.fingerprint on the object IR)
# ----------------------------------------------------------------------

from repro.core.fingerprint import Fingerprint  # noqa: E402  (cycle-free)

_FP_CACHE: Dict[Tuple, Fingerprint] = {}
_FP_CACHE_MAX = 1 << 18


def flat_fingerprint(flat: FlatFunction, keep_text: bool = False) -> Fingerprint:
    """Remapped fingerprint of *flat*; same bytes as the object path.

    Results are cached by exact content: the fingerprint is a pure
    function of the code, and enumeration re-fingerprints identical
    candidate bodies every time independent phase orders converge —
    exactly the merges the DAG exists to catch.
    """
    key = flat.content_key()
    if not keep_text:
        cached = _FP_CACHE.get(key)
        if cached is not None:
            return cached

    reg_names: Dict[int, str] = {}
    label_names: Dict[int, str] = {}
    lines: List[str] = []
    append = lines.append
    templates = TEMPLATE
    num_insts = 0
    for lid, block in zip(flat.labels, flat.blocks):
        name = label_names.get(lid)
        if name is None:
            name = f"L{len(label_names) + 1:02d}"
            label_names[lid] = name
        append(name + ":")
        num_insts += len(block)
        for iid in block:
            parts: List[str] = []
            for part in templates[iid]:
                if type(part) is str:
                    parts.append(part)
                elif part >= 0:
                    rname = reg_names.get(part)
                    if rname is None:
                        rname = f"r[{len(reg_names) + 1}]"
                        reg_names[part] = rname
                    parts.append(rname)
                else:
                    lname = label_names.get(~part)
                    if lname is None:
                        lname = f"L{len(label_names) + 1:02d}"
                        label_names[~part] = lname
                    parts.append(lname)
            append("".join(parts))
    text = "\n".join(lines)
    data = text.encode("utf-8")

    cf_names: Dict[int, str] = {}
    cf_lines: List[str] = []
    for lid, block in zip(flat.labels, flat.blocks):
        name = cf_names.get(lid)
        if name is None:
            name = f"L{len(cf_names) + 1:02d}"
            cf_names[lid] = name
        cf_lines.append(name + ":")
        if block:
            last = block[-1]
            kind = KIND[last]
            if kind == K_JUMP or kind == K_CONDBR:
                target = TARGET_LID[last]
                tname = cf_names.get(target)
                if tname is None:
                    tname = f"L{len(cf_names) + 1:02d}"
                    cf_names[target] = tname
                if kind == K_JUMP:
                    cf_lines.append(f"j {tname}")
                else:
                    cf_lines.append(f"b{RELOP[last]} {tname}")
            elif kind == K_RET:
                cf_lines.append("ret")
    cf_data = "\n".join(cf_lines).encode("utf-8")

    result = Fingerprint(
        num_insts=num_insts,
        byte_sum=sum(data) & 0xFFFFFFFF,
        crc=crc32(data),
        cf_crc=crc32(cf_data),
        text=text if keep_text else None,
    )
    if not keep_text:
        if len(_FP_CACHE) >= _FP_CACHE_MAX:
            _FP_CACHE.clear()
        _FP_CACHE[key] = result
    return result


def reset_flat_caches() -> None:
    """Drop derived caches (fingerprints); intern pools stay valid."""
    _FP_CACHE.clear()


def flat_pool_stats() -> Dict[str, int]:
    """Sizes of the global intern pools (observability/diagnostics)."""
    return {
        "regs": len(REG_OBJS),
        "labels": len(LABEL_STRS),
        "instructions": len(INST_OBJS),
        "blocks": len(BLOCK_TUPLES),
        "fingerprints": len(_FP_CACHE),
    }
