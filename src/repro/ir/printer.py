"""VPO-style textual rendering of RTL.

The printed form is both the human-readable dump and the byte stream
fingerprinting hashes (section 4.2.1 of the paper).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Instruction,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Expr, Mem, Reg, Sym, UnOp

_BINOP_SYMBOL = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "rem": "%",
    "and": "&",
    "or": "|",
    "xor": "^",
    "lsl": "<<",
    "lsr": ">>l",
    "asr": ">>",
    "fadd": "+f",
    "fsub": "-f",
    "fmul": "*f",
    "fdiv": "/f",
}

_UNOP_SYMBOL = {
    "neg": "-",
    "not": "~",
    "fneg": "-f",
    "itof": "(f)",
    "ftoi": "(i)",
}

_RELOP_SYMBOL = {
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
}

RegNamer = Callable[[Reg], str]
LabelNamer = Callable[[str], str]


def _default_reg_namer(reg: Reg) -> str:
    return f"t[{reg.index}]" if reg.pseudo else f"r[{reg.index}]"


def format_expr(
    expr: Expr,
    reg_namer: Optional[RegNamer] = None,
) -> str:
    """Render an expression; *reg_namer* customizes register spelling."""
    namer = reg_namer or _default_reg_namer
    if isinstance(expr, Reg):
        return namer(expr)
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Sym):
        return f"{expr.part.upper()}[{expr.name}]"
    if isinstance(expr, Mem):
        return f"M[{format_expr(expr.addr, namer)}]"
    if isinstance(expr, BinOp):
        left = format_expr(expr.left, namer)
        right = format_expr(expr.right, namer)
        symbol = _BINOP_SYMBOL[expr.op]
        if isinstance(expr.right, BinOp):
            right = f"({right})"
        return f"{left}{symbol}{right}"
    if isinstance(expr, UnOp):
        operand = format_expr(expr.operand, namer)
        return f"{_UNOP_SYMBOL[expr.op]}{operand}"
    raise TypeError(f"cannot format {expr!r}")


def format_instruction(
    inst: Instruction,
    reg_namer: Optional[RegNamer] = None,
    label_namer: Optional[LabelNamer] = None,
) -> str:
    """Render one instruction in VPO RTL syntax."""
    namer = reg_namer or _default_reg_namer
    labeler = label_namer or (lambda label: label)
    if isinstance(inst, Assign):
        return f"{format_expr(inst.dst, namer)}={format_expr(inst.src, namer)};"
    if isinstance(inst, Compare):
        return f"IC={format_expr(inst.left, namer)}?{format_expr(inst.right, namer)};"
    if isinstance(inst, CondBranch):
        return f"PC=IC{_RELOP_SYMBOL[inst.relop]}0,{labeler(inst.target)};"
    if isinstance(inst, Jump):
        return f"PC={labeler(inst.target)};"
    if isinstance(inst, Call):
        return f"CALL {inst.name},{inst.nargs};"
    if isinstance(inst, Return):
        return "RET;"
    raise TypeError(f"cannot format {inst!r}")


def format_function(func: Function) -> str:
    """Render a whole function: one label line per block, one RTL per line."""
    lines = []
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for inst in block.insts:
            lines.append(f"    {format_instruction(inst)}")
    return "\n".join(lines)
