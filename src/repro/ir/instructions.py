"""RTL instructions.

Instructions are immutable; phases build new instructions instead of
mutating them, which makes cloning a function cheap (instruction objects
are shared between clones).

Control transfers (:class:`Jump`, :class:`CondBranch`, :class:`Return`)
may appear only as the last instruction of a basic block.  A block whose
last instruction is not a transfer falls through to the next positional
block.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple, Union

from repro.ir.operands import Const, Expr, Mem, Reg, Sym, BinOp, UnOp

RELOPS = ("lt", "le", "gt", "ge", "eq", "ne")

INVERTED_RELOP = {
    "lt": "ge",
    "le": "gt",
    "gt": "le",
    "ge": "lt",
    "eq": "ne",
    "ne": "eq",
}

SWAPPED_RELOP = {
    "lt": "gt",
    "le": "ge",
    "gt": "lt",
    "ge": "le",
    "eq": "eq",
    "ne": "ne",
}


class Instruction:
    """Base class for RTL instructions."""

    __slots__ = ()

    is_transfer = False

    def defs(self) -> FrozenSet[Reg]:
        """Registers whose value this instruction (re)defines."""
        return frozenset()

    def uses(self) -> FrozenSet[Reg]:
        """Registers whose value this instruction reads."""
        return frozenset()

    def sets_cc(self) -> bool:
        return False

    def uses_cc(self) -> bool:
        return False

    def reads_memory(self) -> bool:
        return False

    def writes_memory(self) -> bool:
        return False


class Assign(Instruction):
    """``dst = src`` where dst is a register or a memory reference."""

    __slots__ = ("dst", "src", "_hash", "_defs", "_uses")

    def __init__(self, dst: Union[Reg, Mem], src: Expr):
        if not isinstance(dst, (Reg, Mem)):
            raise TypeError(f"bad assignment destination: {dst!r}")
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "_hash", hash((Assign, dst, src)))
        object.__setattr__(self, "_defs", None)
        object.__setattr__(self, "_uses", None)

    def __setattr__(self, name, value):
        raise AttributeError("Assign is immutable")

    def __eq__(self, other):
        return type(other) is Assign and other.dst == self.dst and other.src == self.src

    def __hash__(self):
        return self._hash

    def defs(self):
        cached = self._defs
        if cached is None:
            if isinstance(self.dst, Reg):
                cached = frozenset((self.dst,))
            else:
                cached = frozenset()
            object.__setattr__(self, "_defs", cached)
        return cached

    def uses(self):
        cached = self._uses
        if cached is None:
            regs = set(self.src.registers())
            if isinstance(self.dst, Mem):
                regs.update(self.dst.addr.registers())
            cached = frozenset(regs)
            object.__setattr__(self, "_uses", cached)
        return cached

    def reads_memory(self):
        return self.src.reads_memory()

    def writes_memory(self):
        return isinstance(self.dst, Mem)

    def __repr__(self):
        return f"{self.dst!r}={self.src!r};"


class Compare(Instruction):
    """``IC = left ? right`` — set the condition code."""

    __slots__ = ("left", "right", "_hash", "_uses")

    def __init__(self, left: Expr, right: Expr):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "_hash", hash((Compare, left, right)))
        object.__setattr__(self, "_uses", None)

    def __setattr__(self, name, value):
        raise AttributeError("Compare is immutable")

    def __eq__(self, other):
        return (
            type(other) is Compare
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return self._hash

    def uses(self):
        cached = self._uses
        if cached is None:
            regs = set(self.left.registers())
            regs.update(self.right.registers())
            cached = frozenset(regs)
            object.__setattr__(self, "_uses", cached)
        return cached

    def sets_cc(self):
        return True

    def reads_memory(self):
        return self.left.reads_memory() or self.right.reads_memory()

    def __repr__(self):
        return f"IC={self.left!r}?{self.right!r};"


class CondBranch(Instruction):
    """``PC = IC relop 0, target`` — branch when the condition holds."""

    __slots__ = ("relop", "target", "_hash")

    is_transfer = True

    def __init__(self, relop: str, target: str):
        if relop not in RELOPS:
            raise ValueError(f"bad relop: {relop!r}")
        object.__setattr__(self, "relop", relop)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "_hash", hash((CondBranch, relop, target)))

    def __setattr__(self, name, value):
        raise AttributeError("CondBranch is immutable")

    def __eq__(self, other):
        return (
            type(other) is CondBranch
            and other.relop == self.relop
            and other.target == self.target
        )

    def __hash__(self):
        return self._hash

    def uses_cc(self):
        return True

    def __repr__(self):
        return f"PC=IC {self.relop} 0,{self.target};"


class Jump(Instruction):
    """``PC = target`` — unconditional jump."""

    __slots__ = ("target", "_hash")

    is_transfer = True

    def __init__(self, target: str):
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "_hash", hash((Jump, target)))

    def __setattr__(self, name, value):
        raise AttributeError("Jump is immutable")

    def __eq__(self, other):
        return type(other) is Jump and other.target == self.target

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"PC={self.target};"


class Call(Instruction):
    """Call a named function; arguments are in r0..r3 by convention.

    A call uses the argument registers and clobbers all caller-saved
    registers (r0..r3); the return value, if any, is left in r0.
    """

    __slots__ = ("name", "nargs", "_hash")

    def __init__(self, name: str, nargs: int):
        if nargs > 4:
            raise ValueError("at most 4 register arguments are supported")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "nargs", nargs)
        object.__setattr__(self, "_hash", hash((Call, name, nargs)))

    def __setattr__(self, name, value):
        raise AttributeError("Call is immutable")

    def __eq__(self, other):
        return (
            type(other) is Call and other.name == self.name and other.nargs == self.nargs
        )

    def __hash__(self):
        return self._hash

    _CLOBBERS = frozenset(Reg(i, pseudo=False) for i in range(4))
    _ARG_SETS = tuple(
        frozenset(Reg(i, pseudo=False) for i in range(n)) for n in range(5)
    )

    def defs(self):
        return self._CLOBBERS

    def uses(self):
        return self._ARG_SETS[self.nargs]

    def reads_memory(self):
        return True

    def writes_memory(self):
        return True

    def __repr__(self):
        return f"CALL {self.name},{self.nargs};"


class Return(Instruction):
    """Return from the function (the value, if any, is in r0)."""

    __slots__ = ("_hash",)

    is_transfer = True

    def __init__(self):
        object.__setattr__(self, "_hash", hash((Return,)))

    def __setattr__(self, name, value):
        raise AttributeError("Return is immutable")

    def __eq__(self, other):
        return type(other) is Return

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "RET;"
