"""Functions, basic blocks, and programs.

Blocks and functions are mutable containers of immutable instructions.
Positional block order is semantic: a block whose last instruction is
not a control transfer falls through to the next positional block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction, Return
from repro.ir.operands import Reg


class BasicBlock:
    """A labeled basic block: a straight-line run of instructions."""

    __slots__ = ("label", "insts")

    def __init__(self, label: str, insts: Optional[List[Instruction]] = None):
        self.label = label
        self.insts = list(insts) if insts is not None else []

    def terminator(self) -> Optional[Instruction]:
        """The control transfer ending this block, or None (fallthrough)."""
        if self.insts and self.insts[-1].is_transfer:
            return self.insts[-1]
        return None

    def body(self) -> List[Instruction]:
        """The instructions excluding the trailing control transfer."""
        if self.insts and self.insts[-1].is_transfer:
            return self.insts[:-1]
        return list(self.insts)

    def clone(self) -> "BasicBlock":
        return BasicBlock(self.label, list(self.insts))

    def __repr__(self):
        return f"<BasicBlock {self.label}: {len(self.insts)} insts>"


class LocalSlot:
    """A stack-frame slot for a local scalar, array, or parameter."""

    __slots__ = ("name", "offset", "words", "typ", "is_array", "is_param")

    def __init__(
        self,
        name: str,
        offset: int,
        words: int,
        typ: str,
        is_array: bool,
        is_param: bool = False,
    ):
        self.name = name
        self.offset = offset
        self.words = words
        self.typ = typ
        self.is_array = is_array
        self.is_param = is_param

    def __repr__(self):
        kind = "array" if self.is_array else "scalar"
        return f"<LocalSlot {self.name} fp+{self.offset} {self.typ} {kind}>"


class Function:
    """A function in RTL form plus its compilation-state flags.

    The three booleans record the legality state the enumeration
    tracks per node (paper section 3):

    - ``reg_assigned`` — the compulsory register assignment has run;
      evaluation order determination (o) is illegal afterwards.
    - ``sel_applied``  — instruction selection (s) has been active;
      register allocation (k) is illegal until then.
    - ``alloc_applied`` — register allocation (k) has been active;
      loop unrolling (g) and loop transformations (l) are illegal
      until then.
    """

    def __init__(self, name: str, returns_value: bool = False):
        self.name = name
        self.blocks: List[BasicBlock] = []
        self.returns_value = returns_value
        self.params: List[str] = []
        self.frame: Dict[str, LocalSlot] = {}
        self.frame_size = 0
        self.next_pseudo = 0
        self.next_label = 0
        self.reg_assigned = False
        self.sel_applied = False
        self.alloc_applied = False
        # Source-level memory facts from the frontend (None when the
        # function was built by hand): {"frame_private": [offsets]} —
        # slots whose address provably never escapes.  Consumed by the
        # translation-validation alias oracle.
        self.mem_facts = None
        # Headers of loops already unrolled (loop unrolling applies to
        # each loop at most once, as VPO's does).
        self.unrolled: set = set()
        # Lazily-populated dataflow analyses (repro.analysis.cache).
        # Clones share the cache object: content-equal functions have
        # equal analyses, and every mutation commit point replaces the
        # reference via invalidate_analyses(), so a sibling's view is
        # never clobbered.
        self._analyses = None

    def invalidate_analyses(self) -> None:
        """Drop cached analyses after a mutation.

        Rebinds instead of clearing: the cache object may be shared
        with clones whose contents it still describes.
        """
        self._analyses = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def new_reg(self) -> Reg:
        """Allocate a fresh pseudo register (pre register assignment)."""
        if self.reg_assigned:
            raise RuntimeError(
                "cannot create pseudo registers after register assignment"
            )
        reg = Reg(self.next_pseudo, pseudo=True)
        self.next_pseudo += 1
        return reg

    def new_label(self) -> str:
        label = f"L{self.next_label}"
        self.next_label += 1
        return label

    def add_block(self, label: Optional[str] = None) -> BasicBlock:
        block = BasicBlock(label if label is not None else self.new_label())
        self.blocks.append(block)
        return block

    def add_local(
        self, name: str, words: int, typ: str, is_array: bool, is_param: bool = False
    ) -> LocalSlot:
        if name in self.frame:
            raise ValueError(f"duplicate local {name!r} in {self.name}")
        slot = LocalSlot(name, self.frame_size, words, typ, is_array, is_param)
        self.frame[name] = slot
        self.frame_size += words * 4
        return slot

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(f"no block {label!r} in {self.name}")

    def block_map(self) -> Dict[str, BasicBlock]:
        return {block.label: block for block in self.blocks}

    def block_index(self, label: str) -> int:
        for i, block in enumerate(self.blocks):
            if block.label == label:
                return i
        raise KeyError(f"no block {label!r} in {self.name}")

    def instructions(self):
        """Iterate over every instruction in positional order."""
        for block in self.blocks:
            yield from block.insts

    def num_instructions(self) -> int:
        return sum(len(block.insts) for block in self.blocks)

    def scalar_slots(self) -> List[LocalSlot]:
        """Frame slots eligible for register allocation (non-array)."""
        return [slot for slot in self.frame.values() if not slot.is_array]

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def clone(self) -> "Function":
        """Deep-copy the block structure; instructions are shared."""
        other = Function(self.name, self.returns_value)
        other.blocks = [block.clone() for block in self.blocks]
        other.params = list(self.params)
        other.frame = dict(self.frame)  # slots are never mutated
        other.frame_size = self.frame_size
        other.next_pseudo = self.next_pseudo
        other.next_label = self.next_label
        other.reg_assigned = self.reg_assigned
        other.sel_applied = self.sel_applied
        other.alloc_applied = self.alloc_applied
        other.unrolled = set(self.unrolled)
        other.mem_facts = dict(self.mem_facts) if self.mem_facts else self.mem_facts
        other._analyses = self._analyses
        return other

    def __repr__(self):
        return f"<Function {self.name}: {len(self.blocks)} blocks>"


class GlobalVar:
    """A global scalar or array, laid out in the program data segment."""

    __slots__ = ("name", "words", "typ", "init", "is_array", "address")

    def __init__(
        self,
        name: str,
        words: int,
        typ: str,
        init: Optional[Sequence] = None,
        is_array: bool = False,
    ):
        self.name = name
        self.words = words
        self.typ = typ
        self.init = list(init) if init is not None else []
        self.is_array = is_array
        self.address = 0  # assigned by Program.layout()

    def __repr__(self):
        return f"<GlobalVar {self.name} @{self.address} ({self.words} words)>"


DATA_SEGMENT_BASE = 0x10000


class Program:
    """A compiled program: globals plus a set of functions."""

    def __init__(self):
        self.globals: Dict[str, GlobalVar] = {}
        self.functions: Dict[str, Function] = {}

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        self._layout()
        return var

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    def _layout(self):
        address = DATA_SEGMENT_BASE
        for var in self.globals.values():
            var.address = address
            address += var.words * 4

    def __repr__(self):
        return (
            f"<Program {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
