"""Control-flow graph construction and IR validation."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump, Return


class CFG:
    """Successor/predecessor maps over a function's basic blocks.

    The CFG is a snapshot: phases that restructure blocks rebuild it.
    """

    __slots__ = ("succs", "preds", "order")

    def __init__(self, succs: Dict[str, List[str]], order: List[str]):
        self.succs = succs
        self.order = order
        self.preds: Dict[str, List[str]] = {label: [] for label in succs}
        for label, targets in succs.items():
            for target in targets:
                self.preds[target].append(label)

    def reachable(self, entry: str) -> Set[str]:
        """Labels reachable from *entry*."""
        seen = {entry}
        stack = [entry]
        while stack:
            label = stack.pop()
            for succ in self.succs.get(label, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reverse_postorder(self, entry: str) -> List[str]:
        """Blocks in reverse postorder from *entry* (reachable only)."""
        seen: Set[str] = set()
        postorder: List[str] = []

        def visit(label: str):
            stack = [(label, iter(self.succs.get(label, ())))]
            seen.add(label)
            while stack:
                current, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs.get(succ, ()))))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        visit(entry)
        return list(reversed(postorder))


def build_cfg(func: Function) -> CFG:
    """Build the CFG of *func* from terminators and positional order."""
    succs: Dict[str, List[str]] = {}
    blocks = func.blocks
    for i, block in enumerate(blocks):
        term = block.terminator()
        targets: List[str] = []
        if isinstance(term, Jump):
            targets = [term.target]
        elif isinstance(term, CondBranch):
            targets = [term.target]
            if i + 1 < len(blocks):
                fallthrough = blocks[i + 1].label
                if fallthrough != term.target:
                    targets.append(fallthrough)
        elif isinstance(term, Return):
            targets = []
        else:
            if i + 1 < len(blocks):
                targets = [blocks[i + 1].label]
        succs[block.label] = targets
    return CFG(succs, [block.label for block in blocks])


def validate_function(func: Function) -> None:
    """Check structural IR invariants; raise ValueError on violation."""
    if not func.blocks:
        raise ValueError(f"{func.name}: function has no blocks")
    labels = [block.label for block in func.blocks]
    if len(set(labels)) != len(labels):
        raise ValueError(f"{func.name}: duplicate block labels")
    label_set = set(labels)
    for i, block in enumerate(func.blocks):
        for j, inst in enumerate(block.insts):
            if inst.is_transfer and j != len(block.insts) - 1:
                raise ValueError(
                    f"{func.name}/{block.label}: transfer not at block end"
                )
        term = block.terminator()
        if isinstance(term, (Jump, CondBranch)) and term.target not in label_set:
            raise ValueError(
                f"{func.name}/{block.label}: branch to unknown label {term.target}"
            )
        falls_through = not isinstance(term, (Jump, Return))
        if falls_through and i == len(func.blocks) - 1:
            raise ValueError(
                f"{func.name}/{block.label}: last block falls off the function"
            )
