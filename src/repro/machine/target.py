"""ARM-like target machine description.

The backend follows the VPO invariant: every RTL in the program is a
legal machine instruction at all times.  The :class:`Target` class is
the single authority on legality — instruction selection asks it before
committing a combined RTL, and the naive code generator only emits RTLs
it accepts.

Register file (sixteen general purpose registers):

========  =====================================================
r0..r3    argument registers; r0 doubles as the return value
r0..r12   allocatable by register assignment / allocation
r13       frame pointer (``fp``)
r14       stack pointer (``sp``)
r15       not modeled (program counter)
========  =====================================================

Calls clobber r0..r3 (caller-saved); r4..r12 are preserved across
calls by the runtime, so register assignment may keep values in them
across calls.
"""

from __future__ import annotations

from repro.ir.operands import (
    BinOp,
    Const,
    Mem,
    Reg,
    Sym,
    UnOp,
)
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Instruction,
    Jump,
    Return,
)

NUM_HW_REGS = 15
FP = Reg(13, pseudo=False)
SP = Reg(14, pseudo=False)
RV = Reg(0, pseudo=False)
ARG_REGS = tuple(Reg(i, pseudo=False) for i in range(4))
CALL_CLOBBERED = frozenset(range(4))
ALLOCATABLE = tuple(range(13))

# Integer ALU operations that accept an immediate second operand.
_IMM_OPS = frozenset(
    {"add", "sub", "mul", "div", "rem", "and", "or", "xor", "lsl", "lsr", "asr"}
)
_INT_OPS = _IMM_OPS
_FLOAT_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
_SHIFT_OPS = frozenset({"lsl", "lsr", "asr"})
_UNARY_OPS = frozenset({"neg", "not", "fneg", "itof", "ftoi"})

ALU_IMM_LIMIT = 65536
MEM_OFFSET_LIMIT = 4096
CMP_IMM_LIMIT = 65536


class Target:
    """Legality and cost model for the ARM-like target.

    The model is intentionally close to a classic ARM:

    - load/store architecture — memory operands appear only in plain
      loads (``r = M[addr]``) and stores (``M[addr] = r``);
    - addressing modes: register, register+small-constant,
      register+register;
    - ALU operand2 may be a register, a small immediate, or a register
      shifted by a constant (the ARM barrel shifter);
    - a 32-bit symbol address needs a ``HI``/``LO`` instruction pair;
    - multiply accepts a register or a small immediate (the immediate
      form is what strength reduction rewrites into shifts and adds).
    """

    def __init__(
        self,
        alu_imm_limit: int = ALU_IMM_LIMIT,
        mem_offset_limit: int = MEM_OFFSET_LIMIT,
        cmp_imm_limit: int = CMP_IMM_LIMIT,
    ):
        self.alu_imm_limit = alu_imm_limit
        self.mem_offset_limit = mem_offset_limit
        self.cmp_imm_limit = cmp_imm_limit

    # ------------------------------------------------------------------
    # Legality
    # ------------------------------------------------------------------

    def is_legal(self, inst: Instruction) -> bool:
        """Return True when *inst* is a single legal machine instruction."""
        if isinstance(inst, (Jump, Return, Call)):
            return True
        if isinstance(inst, CondBranch):
            return True
        if isinstance(inst, Compare):
            return self._legal_compare(inst)
        if isinstance(inst, Assign):
            return self._legal_assign(inst)
        return False

    def _legal_compare(self, inst: Compare) -> bool:
        if not isinstance(inst.left, Reg):
            return False
        if isinstance(inst.right, Reg):
            return True
        if isinstance(inst.right, Const):
            value = inst.right.value
            if isinstance(value, float):
                return False
            return abs(value) <= self.cmp_imm_limit
        return False

    def _legal_assign(self, inst: Assign) -> bool:
        dst, src = inst.dst, inst.src
        if isinstance(dst, Mem):
            # Store: value must be a register, address must be legal.
            return isinstance(src, Reg) and self._legal_address(dst.addr)
        if not isinstance(dst, Reg):
            return False
        return self._legal_src(src)

    def _legal_src(self, src) -> bool:
        if isinstance(src, Reg):
            return True
        if isinstance(src, Const):
            if isinstance(src.value, float):
                return True  # float literal load (pretend constant pool)
            return abs(src.value) <= self.alu_imm_limit
        if isinstance(src, Sym):
            # Only the HI half may be loaded directly.
            return src.part == "hi"
        if isinstance(src, Mem):
            return self._legal_address(src.addr)
        if isinstance(src, UnOp):
            return src.op in _UNARY_OPS and isinstance(src.operand, Reg)
        if isinstance(src, BinOp):
            return self._legal_binop(src)
        return False

    def _legal_binop(self, src: BinOp) -> bool:
        op = src.op
        if op in _FLOAT_OPS:
            return isinstance(src.left, Reg) and isinstance(src.right, Reg)
        if op not in _INT_OPS:
            return False
        if not isinstance(src.left, Reg):
            return False
        right = src.right
        if isinstance(right, Reg):
            return True
        if isinstance(right, Const):
            if isinstance(right.value, float):
                return False
            return abs(right.value) <= self.alu_imm_limit
        if isinstance(right, Sym):
            # r = r + LO[sym]
            return op == "add" and right.part == "lo"
        if isinstance(right, BinOp):
            # Barrel shifter: reg op (reg shift const).  Shifts cannot
            # themselves take a shifted operand.
            return (
                op not in _SHIFT_OPS
                and op not in ("mul", "div", "rem")
                and right.op in _SHIFT_OPS
                and isinstance(right.left, Reg)
                and isinstance(right.right, Const)
            )
        return False

    def _legal_address(self, addr) -> bool:
        if isinstance(addr, Reg):
            return True
        if isinstance(addr, BinOp) and addr.op == "add":
            left, right = addr.left, addr.right
            if not isinstance(left, Reg):
                return False
            if isinstance(right, Reg):
                return True
            if isinstance(right, Const) and not isinstance(right.value, float):
                return abs(right.value) <= self.mem_offset_limit
        return False

    # ------------------------------------------------------------------
    # Costs (static estimates used by phases when deciding profitability)
    # ------------------------------------------------------------------

    MUL_COST = 4
    DIV_COST = 12
    MEM_COST = 2
    ALU_COST = 1

    def cost(self, inst: Instruction) -> int:
        """Rough cycle estimate of one instruction."""
        if isinstance(inst, Assign):
            if isinstance(inst.dst, Mem) or isinstance(inst.src, Mem):
                return self.MEM_COST
            if isinstance(inst.src, BinOp):
                if inst.src.op in ("mul", "fmul"):
                    return self.MUL_COST
                if inst.src.op in ("div", "rem", "fdiv"):
                    return self.DIV_COST
            return self.ALU_COST
        if isinstance(inst, Call):
            return 2
        return self.ALU_COST


DEFAULT_TARGET = Target()
