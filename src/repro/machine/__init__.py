"""Target machine description (ARM-like load/store architecture)."""

from repro.machine.target import (
    Target,
    FP,
    SP,
    RV,
    NUM_HW_REGS,
    ARG_REGS,
    CALL_CLOBBERED,
    ALLOCATABLE,
)

__all__ = [
    "Target",
    "FP",
    "SP",
    "RV",
    "NUM_HW_REGS",
    "ARG_REGS",
    "CALL_CLOBBERED",
    "ALLOCATABLE",
]
