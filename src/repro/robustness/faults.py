"""Seeded, deterministic fault injection for the guard paths.

The injector sabotages a controllable subset of phase applications so
tests (and chaos runs) can exercise every failure path the
:class:`~repro.robustness.guard.GuardedPhaseRunner` defends against:

``raise``
    the phase application raises :class:`InjectedFault`;
``corrupt``
    the phase application "succeeds" but leaves structurally broken IR
    (a branch to a label that does not exist) for the validator to
    catch;
``hang``
    the phase application sleeps past the guard's per-phase timeout
    (requires a configured timeout; without one the injector falls back
    to ``raise`` so a test can never actually hang).

Determinism: the decision stream is driven either by an explicit set of
1-based application indices (``attempts={3, 7}`` sabotages exactly the
third and seventh guarded application) or by a seeded
:class:`random.Random` at a given *rate*.  Replaying the same seed,
rate, and application stream reproduces the same faults.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.ir.function import Function
from repro.ir.instructions import Jump

#: label used by the ``corrupt`` mode; never produced by the compiler
CORRUPT_LABEL = "__corrupt__"

MODES = ("raise", "corrupt", "hang")


class InjectedFault(RuntimeError):
    """The exception raised by the ``raise`` fault mode."""


class FaultInjector:
    """Decide per phase application whether (and how) to sabotage it."""

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.0,
        modes: Sequence[str] = MODES,
        attempts: Optional[Iterable[int]] = None,
        hang_seconds: Optional[float] = None,
    ):
        for mode in modes:
            if mode not in MODES:
                raise ValueError(f"unknown fault mode {mode!r}; expected {MODES}")
        if not modes:
            raise ValueError("at least one fault mode is required")
        self.seed = seed
        self.rate = rate
        self.modes = tuple(modes)
        #: explicit 1-based guarded-application indices to sabotage;
        #: overrides *rate* when given
        self.attempts: Optional[Set[int]] = (
            set(attempts) if attempts is not None else None
        )
        #: how long a ``hang`` fault sleeps; defaults to double the
        #: guard's timeout at injection time
        self.hang_seconds = hang_seconds
        self._rng = random.Random(seed)
        #: guarded applications seen so far
        self.applications = 0
        #: faults actually injected
        self.injected = 0
        self.injected_by_mode: Dict[str, int] = {mode: 0 for mode in self.modes}

    # ------------------------------------------------------------------

    def should_inject(self) -> bool:
        """Advance the decision stream by one application."""
        self.applications += 1
        if self.attempts is not None:
            return self.applications in self.attempts
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate

    def choose_mode(self, timeout: Optional[float]) -> str:
        """Pick the fault mode for one injection (deterministic)."""
        candidates = [
            mode
            for mode in self.modes
            if mode != "hang" or timeout is not None
        ]
        if not candidates:
            candidates = ["raise"]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self._rng.randrange(len(candidates))]

    def sabotage(
        self, func: Function, phase_id: str, timeout: Optional[float]
    ) -> None:
        """Inflict one fault on *func*; may raise or corrupt in place."""
        mode = self.choose_mode(timeout)
        self.injected += 1
        self.injected_by_mode[mode] = self.injected_by_mode.get(mode, 0) + 1
        if mode == "raise":
            raise InjectedFault(
                f"injected fault #{self.injected} in phase {phase_id}"
            )
        if mode == "hang":
            seconds = (
                self.hang_seconds
                if self.hang_seconds is not None
                else (timeout or 0.0) * 2.0
            )
            time.sleep(seconds)
            # If the guard's alarm did not fire (no timeout configured),
            # degrade into a plain raise so nothing slips through.
            raise InjectedFault(
                f"injected hang #{self.injected} in phase {phase_id} "
                "outlived its sleep"
            )
        # corrupt: redirect the last block's control flow at a label
        # that does not exist — structurally broken, caught by the
        # validator (never by fingerprinting).
        last = func.blocks[-1]
        if last.insts and last.insts[-1].is_transfer:
            last.insts[-1] = Jump(CORRUPT_LABEL)
        else:
            last.insts.append(Jump(CORRUPT_LABEL))

    def __repr__(self):
        how = (
            f"attempts={sorted(self.attempts)}"
            if self.attempts is not None
            else f"rate={self.rate}"
        )
        return (
            f"<FaultInjector seed={self.seed} {how} "
            f"injected={self.injected}/{self.applications}>"
        )
