"""The guarded phase application hot path.

:class:`GuardedPhaseRunner` wraps :func:`repro.opt.apply_phase` with a
set of runtime defenses so one buggy (or sabotaged) phase application
cannot abort a long enumeration or poison the space DAG:

1. **Exception containment** — a phase that raises is caught, the
   pre-phase instance is restored, and the attempt is recorded.
2. **IR validation** — the output of an active phase must pass
   :func:`repro.ir.validate.validate_ir` (structure, machine legality,
   register discipline, frame consistency).
3. **Differential semantics testing** — optionally, the candidate is
   executed in the VM interpreter against recorded input vectors and
   its observable results compared with the unoptimized reference
   (the lightweight equivalence guard of "Beyond the Phase Ordering
   Problem").
4. **Per-phase timeout** — a ``SIGALRM``-based watchdog interrupts a
   phase that runs past ``phase_timeout`` seconds (main thread only;
   elsewhere the watchdog degrades to no timeout).

On any failure the runner restores the instance, appends a
:class:`~repro.robustness.quarantine.QuarantineRecord`, and reports the
phase as dormant, so the caller — enumerator or compiler — simply
continues.  A seeded :class:`~repro.robustness.faults.FaultInjector`
can be attached to exercise each of these paths deterministically.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

from repro.ir.function import Function, Program
from repro.ir.validate import IRValidationError, validate_ir
from repro.machine.target import DEFAULT_TARGET, Target
from repro.observability import tracer as _obs
from repro.opt import Phase, apply_phase
from repro.robustness.faults import FaultInjector, InjectedFault
from repro.robustness.quarantine import QuarantineLog, QuarantineRecord
from repro.vm import Interpreter, VMError


class PhaseTimeout(Exception):
    """A phase application exceeded the guard's time budget."""


def _alarm_available() -> bool:
    """Whether the preemptive SIGALRM watchdog can be armed here:
    signal handlers can only be installed on the main thread, and only
    on platforms that have SIGALRM."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _phase_alarm(seconds: Optional[float]):
    """Interrupt the enclosed block after *seconds* via SIGALRM.

    A no-op when no timeout is configured or the alarm cannot be armed
    (see :func:`_alarm_available`); callers that need a timeout off the
    main thread rely on the runner's cooperative deadline check
    instead.
    """
    if seconds is None or not _alarm_available():
        yield
        return

    def _handler(signum, frame):
        raise PhaseTimeout(f"phase application exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def restore_function(dest: Function, snapshot: Function) -> None:
    """Overwrite *dest* in place with *snapshot*'s state."""
    dest.blocks = snapshot.blocks
    dest.params = snapshot.params
    dest.frame = snapshot.frame
    dest.frame_size = snapshot.frame_size
    dest.next_pseudo = snapshot.next_pseudo
    dest.next_label = snapshot.next_label
    dest.reg_assigned = snapshot.reg_assigned
    dest.sel_applied = snapshot.sel_applied
    dest.alloc_applied = snapshot.alloc_applied
    dest.unrolled = snapshot.unrolled


def default_vectors(func: Function) -> Tuple[Tuple[int, ...], ...]:
    """Small deterministic argument vectors for differential testing."""
    arity = len(func.params)
    if arity == 0:
        return ((),)
    primes = (2, 3, 5, 7)
    return (
        (0,) * arity,
        (1,) * arity,
        tuple(primes[i % len(primes)] for i in range(arity)),
    )


class DifferentialTester:
    """Compare a candidate instance's behaviour against the reference.

    The reference outputs are computed once, lazily, by running the
    unoptimized entry function — snapshotted at construction, so later
    in-place mutation of the program cannot poison the reference; each
    candidate is then spliced into a shallow program copy and executed
    on the same input vectors.  Vectors whose reference execution
    itself fails are skipped (nothing to compare).
    """

    def __init__(
        self,
        program: Program,
        entry: str,
        vectors: Sequence[Sequence[int]],
        fuel: int = 2_000_000,
    ):
        self.program = program
        self.entry = entry
        self.vectors = [tuple(vector) for vector in vectors]
        self.fuel = fuel
        self._pristine_entry: Optional[Function] = (
            program.functions[entry].clone()
            if entry in program.functions
            else None
        )
        self._reference: Optional[List[Tuple[Tuple[int, ...], object]]] = None

    def _compute_reference(self) -> List[Tuple[Tuple[int, ...], object]]:
        if self._reference is None:
            pristine = Program()
            pristine.globals = self.program.globals
            pristine.functions = dict(self.program.functions)
            if self._pristine_entry is not None:
                pristine.functions[self.entry] = self._pristine_entry
            reference = []
            for vector in self.vectors:
                try:
                    value = Interpreter(pristine, fuel=self.fuel).run(
                        self.entry, vector
                    ).value
                except VMError:
                    continue
                reference.append((vector, value))
            self._reference = reference
        return self._reference

    def check(self, candidate: Function) -> Optional[str]:
        """Return a mismatch description, or None when behaviour agrees."""
        spliced = Program()
        spliced.globals = self.program.globals
        spliced.functions = dict(self.program.functions)
        spliced.functions[self.entry] = candidate
        for vector, expected in self._compute_reference():
            try:
                value = Interpreter(spliced, fuel=self.fuel).run(
                    self.entry, vector
                ).value
            except VMError as error:
                return f"args={vector}: candidate crashed: {error}"
            if value != expected:
                return f"args={vector}: expected {expected}, got {value}"
        return None


class GuardedPhaseRunner:
    """Apply phases through the full guard stack.

    Drop-in for :func:`repro.opt.apply_phase`: ``runner.apply(func,
    phase, target)`` mutates *func* on success and returns whether the
    phase was active; on any guard failure *func* is restored and the
    attempt reads as dormant.
    """

    def __init__(
        self,
        target: Optional[Target] = None,
        validate: bool = True,
        difftest: Optional[DifferentialTester] = None,
        phase_timeout: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        quarantine: Optional[QuarantineLog] = None,
        sanitizer=None,
    ):
        self.target = target or DEFAULT_TARGET
        self.validate = validate
        self.difftest = difftest
        self.phase_timeout = phase_timeout
        self.fault_injector = fault_injector
        #: optional :class:`repro.staticanalysis.checker.EdgeChecker`;
        #: runs after validation on every active application
        self.sanitizer = sanitizer
        self.quarantine = quarantine if quarantine is not None else QuarantineLog()
        #: applications that went through the guard (Table-3 "Attempt"
        #: still counts them; this is the guard's own telemetry)
        self.guarded_applications = 0

    # ------------------------------------------------------------------

    def apply(
        self,
        func: Function,
        phase: Phase,
        target: Optional[Target] = None,
        node_key: Optional[str] = None,
        level: Optional[int] = None,
    ) -> bool:
        target = target or self.target
        self.guarded_applications += 1
        snapshot = func.clone()
        injected = (
            self.fault_injector is not None
            and self.fault_injector.should_inject()
        )
        if injected:
            tr = _obs.ACTIVE
            if tr is not None:
                tr.emit(
                    "fault_injected",
                    phase=phase.id,
                    node_key=node_key,
                    level=level,
                )
        started = time.monotonic()
        try:
            with _phase_alarm(self.phase_timeout):
                if injected:
                    # Sabotage instead of the real application: either
                    # raises, hangs into the alarm, or corrupts in
                    # place (and the validation below must catch it).
                    self.fault_injector.sabotage(
                        func, phase.id, self.phase_timeout
                    )
                    active = True
                else:
                    active = apply_phase(func, phase, target)
        except PhaseTimeout as error:
            restore_function(func, snapshot)
            self._record(phase, "timeout", str(error), node_key, level)
            return False
        except InjectedFault as error:
            restore_function(func, snapshot)
            self._record(phase, "exception", str(error), node_key, level)
            return False
        except (KeyboardInterrupt, SystemExit, MemoryError):
            restore_function(func, snapshot)
            raise
        except Exception as error:
            restore_function(func, snapshot)
            self._record(
                phase,
                "exception",
                f"{type(error).__name__}: {error}",
                node_key,
                level,
            )
            return False

        # Cooperative deadline: where the SIGALRM watchdog could not be
        # armed (worker threads; platforms without SIGALRM) the phase
        # ran to completion unsupervised, so enforce the budget after
        # the fact — the instance is restored and the attempt
        # quarantined exactly as a preempted one would be.  This cannot
        # unstick a truly hung phase (nothing cooperative can), but it
        # keeps the timeout *policy* identical on and off the main
        # thread.
        if (
            self.phase_timeout is not None
            and not _alarm_available()
            and time.monotonic() - started > self.phase_timeout
        ):
            restore_function(func, snapshot)
            self._record(
                phase,
                "timeout",
                f"phase application exceeded {self.phase_timeout:g}s "
                "(cooperative deadline; SIGALRM unavailable)",
                node_key,
                level,
            )
            return False

        if not active:
            return False

        # An injected corruption must never survive even with
        # validation switched off — the injection harness depends on
        # the validator catching it.
        if self.validate or injected:
            try:
                validate_ir(func, target)
            except IRValidationError as error:
                diff = self._excerpt(snapshot, func)
                restore_function(func, snapshot)
                self._record(
                    phase, "validation", str(error), node_key, level, diff
                )
                return False

        if self.sanitizer is not None:
            failure = None
            try:
                failure = self.sanitizer.check_edge(snapshot, func, phase)
            except (KeyboardInterrupt, SystemExit, MemoryError):
                restore_function(func, snapshot)
                raise
            except Exception as error:  # checker bug — still contain
                failure = ("sanitizer", f"static checker crashed: {error}")
            if failure is not None:
                kind, detail = failure
                diff = self._excerpt(snapshot, func)
                restore_function(func, snapshot)
                self._record(phase, kind, detail, node_key, level, diff)
                return False

        if self.difftest is not None and func.name == self.difftest.entry:
            mismatch = None
            try:
                mismatch = self.difftest.check(func)
            except (KeyboardInterrupt, SystemExit, MemoryError):
                restore_function(func, snapshot)
                raise
            except Exception as error:  # interpreter bug — still contain
                mismatch = f"differential test crashed: {error}"
            if mismatch is not None:
                diff = self._excerpt(snapshot, func)
                restore_function(func, snapshot)
                self._record(
                    phase, "semantics", mismatch, node_key, level, diff
                )
                return False

        return True

    # ------------------------------------------------------------------

    def _record(
        self,
        phase: Phase,
        kind: str,
        detail: str,
        node_key: Optional[str],
        level: Optional[int],
        diff: Optional[str] = None,
    ) -> None:
        self.quarantine.add(
            QuarantineRecord(
                phase_id=phase.id,
                kind=kind,
                detail=detail,
                node_key=node_key,
                level=level,
                diff=diff,
            )
        )
        tr = _obs.ACTIVE
        if tr is not None:
            # Quarantined attempts read as dormant to the caller (and
            # are counted dormant there); this counter and event record
            # *why* separately, without disturbing that accounting.
            tr.phase_outcome(phase.id, "quarantined")
            tr.emit(
                "quarantine",
                phase=phase.id,
                kind=kind,
                detail=detail[:200],
                node_key=node_key,
                level=level,
            )

    @staticmethod
    def _excerpt(before: Function, after: Function, limit: int = 12) -> str:
        """A short pre/post RTL excerpt for the quarantine record."""
        from repro.ir.printer import format_function

        before_lines = format_function(before).splitlines()[:limit]
        after_lines = format_function(after).splitlines()[:limit]
        return "--- before\n{}\n--- after\n{}".format(
            "\n".join(before_lines), "\n".join(after_lines)
        )
