"""Robustness layer around the phase-application hot path.

Long exhaustive enumerations are the most failure-exposed workload in
this reproduction (the paper budgets a million sequences per level and
hours per function).  This package keeps them alive:

- :class:`GuardedPhaseRunner` contains phase exceptions, validates the
  output IR, optionally differential-tests semantics in the VM, and
  enforces a per-phase timeout — failures are quarantined and read as
  dormant instead of aborting the run;
- :class:`QuarantineLog` / :class:`QuarantineRecord` preserve the
  context of every rejected application;
- :class:`FaultInjector` deterministically sabotages applications
  (raise / corrupt IR / hang) so every guard path is testable;
- :mod:`repro.robustness.retry` is the shared retry vocabulary —
  :func:`retry_call` (exponential backoff, full jitter, deadlines) for
  blocking callers and :class:`RetryBudget` for event-driven ones (the
  coordinator's re-lease/respawn caps, the service client);
- :mod:`repro.core.checkpoint` (a sibling, re-exported by the
  enumerator) persists the space DAG so interrupted runs resume.
"""

from repro.robustness.faults import (
    CORRUPT_LABEL,
    FaultInjector,
    InjectedFault,
    MODES,
)
from repro.robustness.guard import (
    DifferentialTester,
    GuardedPhaseRunner,
    PhaseTimeout,
    default_vectors,
    restore_function,
)
from repro.robustness.quarantine import KINDS, QuarantineLog, QuarantineRecord
from repro.robustness.retry import (
    RetryBudget,
    RetryError,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "GuardedPhaseRunner",
    "DifferentialTester",
    "PhaseTimeout",
    "default_vectors",
    "restore_function",
    "FaultInjector",
    "InjectedFault",
    "CORRUPT_LABEL",
    "MODES",
    "QuarantineLog",
    "QuarantineRecord",
    "KINDS",
    "RetryBudget",
    "RetryError",
    "RetryPolicy",
    "retry_call",
]
