"""Bounded retries with exponential backoff, full jitter, deadlines.

Every retry loop in the system used to be hand-rolled (the parallel
coordinator's shard re-lease counters, the worker respawn cap); the
service client needs a third.  This module is the one implementation
they all share, split into the two shapes retrying actually takes:

:func:`retry_call`
    The blocking loop — call, sleep, call again — for callers that own
    the clock (the HTTP client, tests).  Backoff is exponential with
    *full jitter* (AWS architecture-blog style: each delay is drawn
    uniformly from ``[0, cap]``), which decorrelates a thundering herd
    of clients retrying against one overloaded server.  A deadline
    bounds the whole affair: the loop never sleeps past it, and gives
    up early rather than fire an attempt whose budget is already gone.

:class:`RetryBudget`
    Event-driven accounting for callers that cannot block — the
    coordinator observes failures (a dead worker, a shard error) as
    events in its drive loop and only needs the *bounded* part:
    per-key failure counts with a verdict ("retry" or "give up").

Determinism: all timing is injectable (``sleep``, ``clock``) and the
jitter RNG is an explicit ``random.Random`` so tests — and seeded
chaos runs — replay exactly.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Hashable, Optional, Tuple, Type


class RetryError(RuntimeError):
    """Raised when every allowed attempt failed (or the deadline hit).

    The last underlying failure is chained as ``__cause__`` and kept
    on ``.last_error``; ``.attempts`` counts the calls actually made.
    """

    def __init__(self, message: str, attempts: int, last_error: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class RetryPolicy:
    """The shape of a retry schedule (no state, freely shared)."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.1,
        max_delay: float = 5.0,
        multiplier: float = 2.0,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier

    def cap(self, attempt: int) -> float:
        """Backoff ceiling after the Nth failed attempt (1-based)."""
        return min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter draw: uniform in ``[0, cap(attempt)]``."""
        return rng.uniform(0.0, self.cap(attempt))


def retry_call(
    fn: Callable,
    *,
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    deadline: Optional[float] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
):
    """Call ``fn()`` until it returns, retries run out, or time does.

    *deadline* is an absolute ``clock()`` timestamp (monotonic by
    default).  Two deadline rules keep a bounded caller honest:

    - never sleep past the deadline;
    - never start an attempt after it (the budget is gone — surface
      the last real failure instead of burning it on a doomed call).

    *on_retry* fires before each backoff sleep with ``(attempt, delay,
    error)`` — the hook for logging/telemetry, never for control flow.

    Raises :class:`RetryError` (last failure chained) when it gives up.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else random.Random()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None and clock() >= deadline and last is not None:
            raise RetryError(
                f"deadline exceeded after {attempt - 1} attempts", attempt - 1, last
            ) from last
        try:
            return fn()
        except retry_on as error:
            last = error
            if attempt == policy.max_attempts:
                break
            pause = policy.delay(attempt, rng)
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= 0:
                    break
                pause = min(pause, remaining)
            if on_retry is not None:
                on_retry(attempt, pause, error)
            if pause > 0:
                sleep(pause)
    raise RetryError(
        f"gave up after {policy.max_attempts} attempts: {last!r}",
        policy.max_attempts,
        last,
    ) from last


class RetryBudget:
    """Per-key bounded failure accounting for event-driven retry paths.

    ``record_failure(key)`` returns True while the key still has retry
    budget (i.e. for the first *max_retries* failures) and False once
    it is exhausted — the caller aborts/escalates on False.  A success
    should ``reset`` the key so unrelated later failures start fresh.
    """

    def __init__(self, max_retries: int):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self._failures: Dict[Hashable, int] = {}

    def record_failure(self, key: Hashable) -> bool:
        self._failures[key] = self._failures.get(key, 0) + 1
        return self._failures[key] <= self.max_retries

    def failures(self, key: Hashable) -> int:
        return self._failures.get(key, 0)

    def exhausted(self, key: Hashable) -> bool:
        return self._failures.get(key, 0) > self.max_retries

    def reset(self, key: Hashable) -> None:
        self._failures.pop(key, None)
