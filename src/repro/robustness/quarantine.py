"""Structured records of phase applications the guard rejected.

A *quarantined* application is one the :class:`GuardedPhaseRunner`
refused to let into the space: the phase raised, produced malformed IR,
changed observable semantics, or exceeded its time budget.  The
pre-phase instance is restored and the phase is treated as dormant at
that instance, so enumeration continues — the record preserves enough
context to reproduce and debug the failure offline.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

#: the guard failure classes a record can carry; ``sanitizer`` and
#: ``contract`` come from the static-analysis layer (a transval
#: refutation reuses ``semantics``, the same bucket as the difftester)
KINDS = ("exception", "validation", "semantics", "timeout", "sanitizer", "contract")


class QuarantineRecord:
    """One rejected phase application."""

    __slots__ = ("phase_id", "kind", "detail", "node_key", "level", "diff")

    def __init__(
        self,
        phase_id: str,
        kind: str,
        detail: str,
        node_key: Optional[str] = None,
        level: Optional[int] = None,
        diff: Optional[str] = None,
    ):
        if kind not in KINDS:
            raise ValueError(f"bad quarantine kind {kind!r}; expected {KINDS}")
        self.phase_id = phase_id
        self.kind = kind
        self.detail = detail
        #: printable key of the instance the phase was attempted on
        self.node_key = node_key
        #: enumeration level of that instance (None outside enumeration)
        self.level = level
        #: short pre/post excerpt for validation and semantics failures
        self.diff = diff

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase_id": self.phase_id,
            "kind": self.kind,
            "detail": self.detail,
            "node_key": self.node_key,
            "level": self.level,
            "diff": self.diff,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuarantineRecord":
        return cls(
            phase_id=data["phase_id"],
            kind=data["kind"],
            detail=data["detail"],
            node_key=data.get("node_key"),
            level=data.get("level"),
            diff=data.get("diff"),
        )

    def __repr__(self):
        where = f" at {self.node_key}" if self.node_key else ""
        return f"<QuarantineRecord {self.phase_id} {self.kind}{where}: {self.detail}>"


class QuarantineLog:
    """Accumulates quarantine records across one run."""

    def __init__(self, records: Optional[List[QuarantineRecord]] = None):
        self.records: List[QuarantineRecord] = list(records or [])

    def add(self, record: QuarantineRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QuarantineRecord]:
        return iter(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def by_phase(self) -> Dict[str, int]:
        """Rejected application count per phase id."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.phase_id] = counts.get(record.phase_id, 0) + 1
        return counts

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def to_dicts(self) -> List[Dict[str, object]]:
        return [record.to_dict() for record in self.records]

    @classmethod
    def from_dicts(cls, dicts: List[Dict[str, object]]) -> "QuarantineLog":
        return cls([QuarantineRecord.from_dict(d) for d in dicts])

    def format_report(self) -> str:
        """Human-readable summary printed by the CLI."""
        if not self.records:
            return "quarantine: no phase applications rejected"
        lines = [
            f"quarantine: {len(self.records)} phase application(s) rejected"
        ]
        for kind, count in sorted(self.by_kind().items()):
            lines.append(f"  by kind : {kind}: {count}")
        for phase_id, count in sorted(self.by_phase().items()):
            lines.append(f"  by phase: {phase_id}: {count}")
        for record in self.records[:20]:
            where = f" level={record.level}" if record.level is not None else ""
            lines.append(
                f"    [{record.kind}] phase {record.phase_id}{where}: "
                f"{record.detail}"
            )
        if len(self.records) > 20:
            lines.append(f"    ... and {len(self.records) - 20} more")
        return "\n".join(lines)

    def __repr__(self):
        return f"<QuarantineLog {len(self.records)} records>"
