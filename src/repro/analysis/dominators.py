"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.cfg import build_cfg


class DominatorTree:
    """Immediate-dominator tree over the reachable blocks of a function."""

    __slots__ = ("idom", "entry", "_depth")

    def __init__(self, idom: Dict[str, Optional[str]], entry: str):
        self.idom = idom
        self.entry = entry
        self._depth: Dict[str, int] = {}
        for label in idom:
            self._depth[label] = self._compute_depth(label)

    def _compute_depth(self, label: str) -> int:
        depth = 0
        current: Optional[str] = label
        while current is not None and current != self.entry:
            current = self.idom[current]
            depth += 1
            if depth > len(self.idom) + 1:
                raise RuntimeError("idom cycle")
        return depth

    def dominates(self, a: str, b: str) -> bool:
        """True when *a* dominates *b* (reflexive)."""
        current: Optional[str] = b
        while current is not None:
            if current == a:
                return True
            if current == self.entry:
                return False
            current = self.idom[current]
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, label: str) -> int:
        return self._depth[label]

    def children(self) -> Dict[str, List[str]]:
        tree: Dict[str, List[str]] = {label: [] for label in self.idom}
        for label, parent in self.idom.items():
            if parent is not None:
                tree[parent].append(label)
        return tree


def compute_dominators(func: Function, cfg: Optional[CFG] = None) -> DominatorTree:
    """Compute the dominator tree of *func* (reachable blocks only)."""
    if cfg is None:
        cfg = build_cfg(func)
    entry = func.entry.label
    rpo = cfg.reverse_postorder(entry)
    position = {label: i for i, label in enumerate(rpo)}

    idom: Dict[str, Optional[str]] = {entry: None}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            new_idom: Optional[str] = None
            for pred in cfg.preds.get(label, ()):
                if pred not in position:
                    continue  # unreachable predecessor
                if pred == label:
                    continue
                if pred in idom or pred == entry:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
            if new_idom is None:
                continue
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True
    return DominatorTree(idom, entry)
