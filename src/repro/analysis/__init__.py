"""Dataflow and structural analyses shared by the optimization phases."""

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.loops import Loop, find_natural_loops
from repro.analysis.liveness import Liveness, compute_liveness, SlotLiveness, compute_slot_liveness
from repro.analysis.reaching import (
    Definedness,
    ENTRY_DEFINED,
    compute_definedness,
    uninitialized_uses,
)
from repro.analysis.defuse import (
    rewrite_uses,
    defined_reg,
    instruction_registers,
    single_def_registers,
)
from repro.analysis.cache import (
    AnalysisCache,
    cfg_of,
    dominators_of,
    liveness_of,
    loops_of,
    set_cache_enabled,
    set_paranoid,
    slot_liveness_of,
)

__all__ = [
    "AnalysisCache",
    "cfg_of",
    "dominators_of",
    "liveness_of",
    "loops_of",
    "set_cache_enabled",
    "set_paranoid",
    "slot_liveness_of",
    "DominatorTree",
    "compute_dominators",
    "Loop",
    "find_natural_loops",
    "Liveness",
    "compute_liveness",
    "SlotLiveness",
    "compute_slot_liveness",
    "rewrite_uses",
    "defined_reg",
    "instruction_registers",
    "single_def_registers",
    "Definedness",
    "ENTRY_DEFINED",
    "compute_definedness",
    "uninitialized_uses",
]
