"""Dataflow and structural analyses shared by the optimization phases."""

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.loops import Loop, find_natural_loops
from repro.analysis.liveness import Liveness, compute_liveness, SlotLiveness, compute_slot_liveness
from repro.analysis.defuse import (
    rewrite_uses,
    defined_reg,
    instruction_registers,
    single_def_registers,
)

__all__ = [
    "DominatorTree",
    "compute_dominators",
    "Loop",
    "find_natural_loops",
    "Liveness",
    "compute_liveness",
    "SlotLiveness",
    "compute_slot_liveness",
    "rewrite_uses",
    "defined_reg",
    "instruction_registers",
    "single_def_registers",
]
