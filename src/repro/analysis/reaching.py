"""Reaching-definitions style definedness analysis.

The sanitizer's def-before-use check needs to know, at every program
point, which registers are *definitely defined* (some definition
reaches the point along **every** path from the entry).  A use of a
register outside that set may read garbage — on real hardware that is
undefined behaviour; our VM papers over it by reading 0.  The same forward
walk tracks whether a :class:`~repro.ir.instructions.Compare` reaches
each point, so a conditional branch whose condition code may be unset
can be diagnosed statically.

This is the must-variant of reaching definitions: sets intersect at
joins and the entry block starts from the calling convention's defined
set (argument registers, frame and stack pointers).  Unreachable
blocks are left at TOP — they never execute, so uses inside them are
not reported (the ``d`` phase deletes them eventually).

Calls define the caller-saved registers (``r0``–``r3``) and preserve
everything else, including the condition code: the VM gives every
frame its own ``cc``, so a call can never clobber the caller's
compare result.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Return
from repro.ir.operands import Reg
from repro.machine.target import ARG_REGS, FP, RV, SP

#: registers the calling convention guarantees are defined on entry:
#: the four argument registers plus the frame and stack pointers.
ENTRY_DEFINED: FrozenSet[Reg] = frozenset(ARG_REGS) | {FP, SP}


def entry_defined_for(func: Function) -> FrozenSet[Reg]:
    """Registers actually defined on entry to *func*.

    The convention guarantees only as many argument registers as the
    function declares parameters; seeding all four would make the
    return-value register (= the first argument register) look defined
    in zero-argument functions and mask uninitialized returns.  The
    frontend does not populate ``Function.params`` — parameters own
    ``is_param`` frame slots instead, which no phase removes.
    """
    arity = max(
        len(func.params),
        sum(1 for slot in func.frame.values() if slot.is_param),
    )
    return frozenset(ARG_REGS[:arity]) | {FP, SP}

_MAX_ITERATIONS = 10_000


class Definedness:
    """Per-block definitely-defined register sets and cc state.

    ``defined_in[label]`` / ``defined_out[label]`` are frozensets of
    :class:`Reg`; ``cc_in[label]`` / ``cc_out[label]`` are booleans
    (condition code definitely set).  Unreachable blocks are absent
    from all four maps.
    """

    __slots__ = ("defined_in", "defined_out", "cc_in", "cc_out", "_func")

    def __init__(
        self,
        defined_in: Dict[str, FrozenSet[Reg]],
        defined_out: Dict[str, FrozenSet[Reg]],
        cc_in: Dict[str, bool],
        cc_out: Dict[str, bool],
        func: Function,
    ) -> None:
        self.defined_in = defined_in
        self.defined_out = defined_out
        self.cc_in = cc_in
        self.cc_out = cc_out
        self._func = func

    def walk(self, label: str) -> Iterator[Tuple[Instruction, FrozenSet[Reg], bool]]:
        """Yield ``(inst, defined_before, cc_defined_before)`` for each
        instruction of a reachable block, in order."""
        defined = set(self.defined_in[label])
        cc = self.cc_in[label]
        for inst in self._func.block(label).insts:
            yield inst, frozenset(defined), cc
            defined |= inst.defs()
            if inst.sets_cc():
                cc = True


def _transfer(
    insts, defined: FrozenSet[Reg], cc: bool
) -> Tuple[FrozenSet[Reg], bool]:
    out = set(defined)
    for inst in insts:
        out |= inst.defs()
        if inst.sets_cc():
            cc = True
    return frozenset(out), cc


def compute_definedness(
    func: Function,
    cfg: Optional[CFG] = None,
    entry_defined: FrozenSet[Reg] = ENTRY_DEFINED,
) -> Definedness:
    """Run the forward must-defined fixpoint over *func*."""
    if cfg is None:
        cfg = build_cfg(func)
    entry = func.entry.label
    order = [label for label in cfg.order if label in cfg.reachable(entry)]
    defined_in: Dict[str, FrozenSet[Reg]] = {entry: frozenset(entry_defined)}
    defined_out: Dict[str, FrozenSet[Reg]] = {}
    cc_in: Dict[str, bool] = {entry: False}
    cc_out: Dict[str, bool] = {}
    blocks = func.block_map()
    changed = True
    iterations = 0
    while changed:
        iterations += 1
        if iterations > _MAX_ITERATIONS:  # pragma: no cover - defensive
            raise RuntimeError(f"{func.name}: definedness did not converge")
        changed = False
        for label in order:
            if label != entry:
                merged = None
                merged_cc = True
                for pred in cfg.preds.get(label, ()):
                    if pred not in defined_out:
                        continue  # optimistic TOP: not yet computed
                    out = defined_out[pred]
                    merged = out if merged is None else merged & out
                    merged_cc = merged_cc and cc_out[pred]
                if merged is None:
                    continue  # only TOP predecessors so far
                defined_in[label] = merged
                cc_in[label] = merged_cc
            new_out, new_cc = _transfer(
                blocks[label].insts, defined_in[label], cc_in[label]
            )
            if defined_out.get(label) != new_out or cc_out.get(label) != new_cc:
                defined_out[label] = new_out
                cc_out[label] = new_cc
                changed = True
    return Definedness(defined_in, defined_out, cc_in, cc_out, func)


def uninitialized_uses(func: Function, cfg: Optional[CFG] = None):
    """Yield ``(label, index, inst, regs)`` for every instruction whose
    register uses may be uninitialized, plus cc/return diagnostics.

    Each yielded ``regs`` is the frozenset of maybe-undefined registers
    read by the instruction.  Condition-code problems are yielded with
    ``regs is None`` (the instruction is a :class:`CondBranch` whose cc
    may be unset).  ``Return`` in a value-returning function is treated
    as a use of the return-value register.
    """
    if cfg is None:
        cfg = build_cfg(func)
    state = compute_definedness(func, cfg, entry_defined_for(func))
    for label in cfg.order:
        if label not in state.defined_in:
            continue  # unreachable: never executes
        for index, (inst, defined, cc) in enumerate(state.walk(label)):
            uses = inst.uses()
            if isinstance(inst, Return) and func.returns_value:
                uses = uses | {RV}
            missing = frozenset(reg for reg in uses if reg not in defined)
            if missing:
                yield label, index, inst, missing
            if inst.uses_cc() and not cc:
                yield label, index, inst, None
