"""Def/use helpers for rewriting instructions."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    Compare,
    Instruction,
)
from repro.ir.operands import Expr, Mem, Reg, substitute


def defined_reg(inst: Instruction) -> Optional[Reg]:
    """The single register defined by a plain register assignment."""
    if isinstance(inst, Assign) and isinstance(inst.dst, Reg):
        return inst.dst
    return None


def instruction_registers(inst: Instruction) -> Iterator[Reg]:
    """All registers mentioned by *inst* (defs and uses)."""
    yield from inst.uses()
    yield from inst.defs()


def rewrite_uses(inst: Instruction, mapping: Dict[Expr, Expr]) -> Instruction:
    """Rebuild *inst* with its *used* operands substituted per *mapping*.

    The destination register of an assignment is a definition and is
    never substituted; the address of a store destination is a use and
    is substituted.
    """
    if isinstance(inst, Assign):
        src = substitute(inst.src, mapping)
        dst = inst.dst
        if isinstance(dst, Mem):
            new_addr = substitute(dst.addr, mapping)
            if new_addr is not dst.addr:
                dst = Mem(new_addr)
        if src is inst.src and dst is inst.dst:
            return inst
        return Assign(dst, src)
    if isinstance(inst, Compare):
        left = substitute(inst.left, mapping)
        right = substitute(inst.right, mapping)
        if left is inst.left and right is inst.right:
            return inst
        return Compare(left, right)
    return inst


def rewrite_registers(inst: Instruction, regmap: Dict[Reg, Reg]) -> Instruction:
    """Rebuild *inst* with registers renamed per *regmap* (defs and uses)."""
    if isinstance(inst, Assign):
        src = substitute(inst.src, regmap)
        dst = inst.dst
        if isinstance(dst, Reg):
            dst = regmap.get(dst, dst)
        else:
            new_addr = substitute(dst.addr, regmap)
            if new_addr is not dst.addr:
                dst = Mem(new_addr)
        if src is inst.src and dst is inst.dst:
            return inst
        return Assign(dst, src)
    if isinstance(inst, Compare):
        left = substitute(inst.left, regmap)
        right = substitute(inst.right, regmap)
        if left is inst.left and right is inst.right:
            return inst
        return Compare(left, right)
    return inst


def single_def_registers(func: Function) -> Dict[Reg, Instruction]:
    """Registers whose value has exactly one source in the function.

    Returns a map from each such register to its defining instruction.
    Registers defined by calls (the caller-saved set) are excluded, and
    registers that are live into the entry block (function arguments)
    carry an *implicit* definition at entry, so a textual single def
    does not make them single-source.
    """
    from repro.analysis.liveness import compute_liveness

    counts: Dict[Reg, int] = {}
    definer: Dict[Reg, Instruction] = {}
    for reg in compute_liveness(func).live_in[func.entry.label]:
        counts[reg] = 1  # implicit definition at function entry
    for inst in func.instructions():
        for reg in inst.defs():
            counts[reg] = counts.get(reg, 0) + 1
            definer[reg] = inst
    return {
        reg: inst
        for reg, inst in definer.items()
        if counts[reg] == 1 and isinstance(inst, Assign)
    }
