"""Frame-reference analysis: classify memory accesses against the stack.

Naive code reaches stack slots through address registers
(``t1 = fp + 8; t2 = M[t1]``), so a syntactic check of the memory
address is not enough to know which frame slot an access touches.  This
module runs a forward dataflow that tracks, per program point, which
registers hold ``fp + constant``, and classifies every memory reference
as:

- a *slot* access with a known fp offset,
- a *non-scalar* access (globals, array elements — derived pointers are
  assumed in-bounds, so they never alias scalar slots; mini-C cannot
  take the address of a scalar), or
- a *wild* access (an address that may be frame-derived with an unknown
  offset), which must be assumed to touch any scalar slot.

Calls neither read nor write scalar slots: scalar locals' addresses
never escape in mini-C (only array base addresses are passed).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function
from repro.ir.instructions import Assign, Compare, Instruction
from repro.ir.operands import BinOp, Const, Expr, Mem, Reg
from repro.machine.target import FP

# Abstract values for the register -> fp-offset lattice.
_OTHER = "other"  # definitely not fp + constant
_WILD = "wild"  # may be fp + unknown constant


class InstSlotRefs(NamedTuple):
    """Scalar-slot effects of one instruction."""

    reads: frozenset  # slot offsets read
    writes: frozenset  # slot offsets written
    wild_read: bool  # may read any scalar slot
    wild_write: bool  # may write any scalar slot


_NO_REFS = InstSlotRefs(frozenset(), frozenset(), False, False)


def _meet(a, b):
    if a == b:
        return a
    if a is None:
        return b
    if b is None:
        return a
    if a == _OTHER and b == _OTHER:
        return _OTHER
    return _WILD


def _eval_abstract(expr: Expr, state: Dict[Reg, object]):
    """Abstract value of an address expression under *state*."""
    if isinstance(expr, Reg):
        if expr == FP:
            return 0
        return state.get(expr, _OTHER)
    if isinstance(expr, Const):
        return _OTHER  # a plain constant is not frame-derived
    if isinstance(expr, BinOp) and expr.op == "add":
        left = _eval_abstract(expr.left, state)
        if isinstance(expr.right, Const) and not isinstance(expr.right.value, float):
            if isinstance(left, int):
                return left + expr.right.value
            return left
        right = _eval_abstract(expr.right, state)
        # fp+c plus a non-constant: a derived in-bounds pointer (array
        # element) — never a scalar slot.
        if isinstance(left, int) or isinstance(right, int):
            if left == _WILD or right == _WILD:
                return _WILD
            return _OTHER
        if left == _WILD or right == _WILD:
            return _WILD
        return _OTHER
    if isinstance(expr, BinOp) and expr.op == "sub":
        left = _eval_abstract(expr.left, state)
        if isinstance(expr.right, Const) and not isinstance(expr.right.value, float):
            if isinstance(left, int):
                return left - expr.right.value
            return left
        if left == _WILD:
            return _WILD
        if isinstance(left, int):
            return _OTHER
        return left
    # Any other shape: wild only if it mentions a frame-derived register.
    for reg in expr.registers():
        value = state.get(reg, _OTHER) if reg != FP else 0
        if isinstance(value, int) or value == _WILD:
            return _WILD
    return _OTHER


def _transfer(inst: Instruction, state: Dict[Reg, object]) -> None:
    if isinstance(inst, Assign) and isinstance(inst.dst, Reg):
        state[inst.dst] = _src_value(inst.src, state)
        return
    for reg in inst.defs():
        state[reg] = _OTHER  # call results are never frame pointers


def _src_value(src: Expr, state: Dict[Reg, object]):
    if isinstance(src, Mem):
        return _OTHER  # loaded values are data, never frame addresses
    return _eval_abstract(src, state)


def _mem_exprs(inst: Instruction):
    """Yield (mem, is_write) for every memory reference of *inst*."""
    if isinstance(inst, Assign):
        for node in inst.src.walk():
            if isinstance(node, Mem):
                yield node, False
        if isinstance(inst.dst, Mem):
            for node in inst.dst.addr.walk():
                if isinstance(node, Mem):
                    yield node, False
            yield inst.dst, True
    elif isinstance(inst, Compare):
        for expr in (inst.left, inst.right):
            for node in expr.walk():
                if isinstance(node, Mem):
                    yield node, False


class FrameRefs:
    """Per-instruction scalar-slot effects for a whole function."""

    __slots__ = ("refs", "tracked", "has_wild")

    def __init__(
        self,
        refs: Dict[str, List[InstSlotRefs]],
        tracked: frozenset,
        has_wild: bool,
    ):
        self.refs = refs  # block label -> per-instruction effects
        self.tracked = tracked  # offsets of scalar slots
        self.has_wild = has_wild  # any wild reference in the function


def compute_frame_refs(func: Function, cfg: Optional[CFG] = None) -> FrameRefs:
    """Run the fp-offset dataflow and classify every memory reference."""
    if cfg is None:
        cfg = build_cfg(func)
    tracked = frozenset(slot.offset for slot in func.scalar_slots())

    # Forward dataflow of register -> abstract fp-offset.
    # None state means "not yet reached".
    in_states: Dict[str, Optional[Dict[Reg, object]]] = {
        block.label: None for block in func.blocks
    }
    entry = func.entry.label
    in_states[entry] = {}
    order = cfg.reverse_postorder(entry)
    changed = True
    while changed:
        changed = False
        for label in order:
            state = in_states[label]
            if state is None:
                continue
            current = dict(state)
            for inst in func.block(label).insts:
                _transfer(inst, current)
            for succ in cfg.succs.get(label, ()):
                existing = in_states[succ]
                if existing is None:
                    in_states[succ] = dict(current)
                    changed = True
                    continue
                merged = {}
                for reg in set(existing) | set(current):
                    value = _meet(existing.get(reg, _OTHER), current.get(reg, _OTHER))
                    merged[reg] = value
                if merged != existing:
                    in_states[succ] = merged
                    changed = True

    refs: Dict[str, List[InstSlotRefs]] = {}
    has_wild = False
    for block in func.blocks:
        state = in_states[block.label]
        current = dict(state) if state is not None else {}
        block_refs: List[InstSlotRefs] = []
        for inst in block.insts:
            reads: Set[int] = set()
            writes: Set[int] = set()
            wild_read = False
            wild_write = False
            for mem, is_write in _mem_exprs(inst):
                value = _eval_abstract(mem.addr, current)
                if isinstance(value, int):
                    if value in tracked:
                        (writes if is_write else reads).add(value)
                elif value == _WILD:
                    if is_write:
                        wild_write = True
                    else:
                        wild_read = True
            if wild_read or wild_write:
                has_wild = True
            block_refs.append(
                InstSlotRefs(frozenset(reads), frozenset(writes), wild_read, wild_write)
            )
            _transfer(inst, current)
        refs[block.label] = block_refs
    return FrameRefs(refs, tracked, has_wild)
