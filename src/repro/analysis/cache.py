"""Per-function dataflow analysis cache with dirty-bit invalidation.

Phases rebuild the CFG, liveness, dominators, and loop nest from
scratch on every query, which dominates the per-edge cost of the
enumeration hot path.  This module memoizes those analyses on the
function itself (``Function._analyses``) so a fixpoint that queries
liveness five times between mutations computes it once.

The contract (documented on :meth:`Function.invalidate_analyses`):

- Every mutation commit point calls ``func.invalidate_analyses()``,
  which *rebinds* ``_analyses`` to ``None`` rather than clearing the
  cache object.
- ``Function.clone()`` copies the ``_analyses`` reference.  A clone is
  content-equal to its source at that moment, so the cached analyses
  describe it too; the rebinding discipline means neither side can
  clobber the other's view.
- :class:`Liveness`/:class:`SlotLiveness` hold a back-reference to the
  function they were computed over (their per-instruction iterators
  re-walk ``self.func``).  When a cached view is requested for a
  *different* (cloned) function object, the getter rebinds a view onto
  the current function — same dataflow dicts, correct back-reference.

Two switches support differential testing and the hot-path bench:

- ``REPRO_NO_ANALYSIS_CACHE=1`` (or :func:`set_cache_enabled(False)`)
  disables the cache entirely — every getter recomputes.
- ``REPRO_PARANOID_ANALYSIS=1`` (or :func:`set_paranoid(True)`)
  recomputes on every hit and raises if a cached analysis disagrees
  with a fresh one, catching any phase that mutates without
  invalidating.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.liveness import (
    Liveness,
    SlotLiveness,
    compute_liveness,
    compute_slot_liveness,
)
from repro.analysis.loops import find_natural_loops
from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function
from repro.observability import tracer as _obs

_ENABLED = not os.environ.get("REPRO_NO_ANALYSIS_CACHE")
_PARANOID = bool(os.environ.get("REPRO_PARANOID_ANALYSIS"))


def _note(hit: bool) -> None:
    """Count one cache query on the active tracer, if any (the counters
    surface as a run-level ``analysis_cache_stats`` event)."""
    tr = _obs.ACTIVE
    if tr is not None:
        tr.analysis_event(hit)


def set_cache_enabled(enabled: bool) -> bool:
    """Enable/disable the analysis cache; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    return previous


def set_paranoid(enabled: bool) -> bool:
    """Recompute-and-compare on every cache hit (differential mode)."""
    global _PARANOID
    previous = _PARANOID
    _PARANOID = enabled
    return previous


class AnalysisCache:
    """Lazily-filled analyses for one function *content* (shared by
    content-equal clones)."""

    __slots__ = ("cfg", "liveness", "slot_liveness", "dominators", "loops")

    def __init__(self) -> None:
        self.cfg: Optional[CFG] = None
        self.liveness: Optional[Liveness] = None
        self.slot_liveness: Optional[SlotLiveness] = None
        self.dominators: Optional[DominatorTree] = None
        self.loops = None


def _cache_of(func: Function) -> AnalysisCache:
    cache = func._analyses
    if cache is None:
        cache = AnalysisCache()
        func._analyses = cache
    return cache


def cfg_of(func: Function) -> CFG:
    """The function's CFG, cached until the next invalidation."""
    if not _ENABLED:
        _note(False)
        return build_cfg(func)
    cache = _cache_of(func)
    _note(cache.cfg is not None)
    if cache.cfg is None:
        cache.cfg = build_cfg(func)
    elif _PARANOID:
        _compare_cfg(func, cache.cfg)
    return cache.cfg


def liveness_of(func: Function) -> Liveness:
    """Register liveness, cached; rebound to *func* on clone sharing."""
    if not _ENABLED:
        _note(False)
        return compute_liveness(func)
    cache = _cache_of(func)
    _note(cache.liveness is not None)
    if cache.liveness is None:
        cache.liveness = compute_liveness(func, cfg_of(func))
    elif _PARANOID:
        _compare_dicts(
            func, "liveness", cache.liveness.live_in, compute_liveness(func).live_in
        )
    if cache.liveness.func is not func:
        cache.liveness = Liveness(
            cache.liveness.live_in, cache.liveness.live_out, func
        )
    return cache.liveness


def slot_liveness_of(func: Function) -> SlotLiveness:
    """Frame-slot liveness, cached; rebound to *func* on clone sharing."""
    if not _ENABLED:
        _note(False)
        return compute_slot_liveness(func)
    cache = _cache_of(func)
    _note(cache.slot_liveness is not None)
    if cache.slot_liveness is None:
        cache.slot_liveness = compute_slot_liveness(func, cfg_of(func))
    elif _PARANOID:
        _compare_dicts(
            func,
            "slot_liveness",
            cache.slot_liveness.live_in,
            compute_slot_liveness(func).live_in,
        )
    if cache.slot_liveness.func is not func:
        old = cache.slot_liveness
        cache.slot_liveness = SlotLiveness(
            old.live_in, old.live_out, func, old.tracked, old.frame_refs
        )
    return cache.slot_liveness


def dominators_of(func: Function) -> DominatorTree:
    """The dominator tree, cached until the next invalidation."""
    if not _ENABLED:
        _note(False)
        return compute_dominators(func)
    cache = _cache_of(func)
    _note(cache.dominators is not None)
    if cache.dominators is None:
        cache.dominators = compute_dominators(func, cfg_of(func))
    elif _PARANOID:
        _compare_dicts(
            func,
            "dominators",
            cache.dominators.idom,
            compute_dominators(func).idom,
        )
    return cache.dominators


def loops_of(func: Function):
    """The natural-loop nest (innermost first), cached."""
    if not _ENABLED:
        _note(False)
        return find_natural_loops(func)
    cache = _cache_of(func)
    _note(cache.loops is not None)
    if cache.loops is None:
        cache.loops = find_natural_loops(func, cfg_of(func), dominators_of(func))
    elif _PARANOID:
        fresh = find_natural_loops(func)
        got = [(l.header, frozenset(l.body)) for l in cache.loops]
        want = [(l.header, frozenset(l.body)) for l in fresh]
        if got != want:
            raise RuntimeError(
                f"{func.name}: stale cached loops {got} != fresh {want} "
                "(a phase mutated without invalidate_analyses())"
            )
    return cache.loops


def _compare_cfg(func: Function, cached: CFG) -> None:
    fresh = build_cfg(func)
    if cached.succs != fresh.succs or cached.order != fresh.order:
        raise RuntimeError(
            f"{func.name}: stale cached CFG "
            "(a phase mutated without invalidate_analyses())"
        )


def _compare_dicts(func: Function, what: str, cached, fresh) -> None:
    if cached != fresh:
        raise RuntimeError(
            f"{func.name}: stale cached {what} "
            "(a phase mutated without invalidate_analyses())"
        )
