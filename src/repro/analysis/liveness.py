"""Backward liveness analysis over registers and local frame slots."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Instruction, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import FP, RV


class Liveness:
    """Per-block live-in/live-out register sets."""

    __slots__ = ("live_in", "live_out", "func")

    def __init__(
        self,
        live_in: Dict[str, FrozenSet[Reg]],
        live_out: Dict[str, FrozenSet[Reg]],
        func: Function,
    ):
        self.live_in = live_in
        self.live_out = live_out
        self.func = func

    def live_before_each(self, label: str) -> List[Set[Reg]]:
        """For each instruction of block *label*, registers live before it.

        The returned list is parallel to ``block.insts``; entry ``i`` is
        the live set immediately before instruction ``i``.
        """
        block = self.func.block(label)
        live = set(self.live_out[label])
        result: List[Set[Reg]] = [set()] * len(block.insts)
        for i in range(len(block.insts) - 1, -1, -1):
            inst = block.insts[i]
            live -= inst.defs()
            live |= inst.uses()
            if isinstance(inst, Return) and self.func.returns_value:
                live.add(RV)
            result[i] = set(live)
        return result

    def live_after_each(self, label: str) -> List[Set[Reg]]:
        """For each instruction of block *label*, registers live after it."""
        block = self.func.block(label)
        live = set(self.live_out[label])
        result: List[Set[Reg]] = [set()] * len(block.insts)
        for i in range(len(block.insts) - 1, -1, -1):
            inst = block.insts[i]
            result[i] = set(live)
            live -= inst.defs()
            live |= inst.uses()
            if isinstance(inst, Return) and self.func.returns_value:
                live.add(RV)
        return result


def _block_use_def(block_insts, returns_value: bool) -> Tuple[Set[Reg], Set[Reg]]:
    use: Set[Reg] = set()
    defs: Set[Reg] = set()
    for inst in block_insts:
        for reg in inst.uses():
            if reg not in defs:
                use.add(reg)
        if isinstance(inst, Return) and returns_value and RV not in defs:
            use.add(RV)
        defs |= inst.defs()
    return use, defs


def compute_liveness(func: Function, cfg: Optional[CFG] = None) -> Liveness:
    """Standard backward may-liveness over registers."""
    if cfg is None:
        cfg = build_cfg(func)
    use: Dict[str, Set[Reg]] = {}
    defs: Dict[str, Set[Reg]] = {}
    for block in func.blocks:
        use[block.label], defs[block.label] = _block_use_def(
            block.insts, func.returns_value
        )

    live_in: Dict[str, Set[Reg]] = {block.label: set() for block in func.blocks}
    live_out: Dict[str, Set[Reg]] = {block.label: set() for block in func.blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out: Set[Reg] = set()
            for succ in cfg.succs.get(label, ()):
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    return Liveness(
        {label: frozenset(value) for label, value in live_in.items()},
        {label: frozenset(value) for label, value in live_out.items()},
        func,
    )


# ----------------------------------------------------------------------
# Local-slot liveness (for dead stores and register allocation)
# ----------------------------------------------------------------------


class SlotLiveness:
    """Per-block live-in/out sets of scalar frame-slot offsets.

    Built on :mod:`repro.analysis.framerefs`, which resolves accesses
    made through address registers (``t = fp + 8; M[t]``) to their slot
    and flags genuinely unknown frame-derived addresses as wild.
    """

    __slots__ = ("live_in", "live_out", "func", "tracked", "frame_refs")

    def __init__(self, live_in, live_out, func, tracked, frame_refs):
        self.live_in = live_in
        self.live_out = live_out
        self.func = func
        self.tracked = tracked
        self.frame_refs = frame_refs

    def live_after_each(self, label: str) -> List[Set[int]]:
        block = self.func.block(label)
        refs = self.frame_refs.refs[label]
        live = set(self.live_out[label])
        result: List[Set[int]] = [set()] * len(block.insts)
        for i in range(len(block.insts) - 1, -1, -1):
            ref = refs[i]
            result[i] = set(live)
            if not ref.wild_write:
                live -= ref.writes
            if ref.wild_read:
                live |= self.tracked
            else:
                live |= ref.reads
        return result


def compute_slot_liveness(func: Function, cfg: Optional[CFG] = None) -> SlotLiveness:
    """Liveness of scalar local slots (arrays are never tracked)."""
    from repro.analysis.framerefs import compute_frame_refs

    if cfg is None:
        cfg = build_cfg(func)
    frame_refs = compute_frame_refs(func, cfg)
    tracked = set(frame_refs.tracked)

    use: Dict[str, Set[int]] = {}
    defs: Dict[str, Set[int]] = {}
    for block in func.blocks:
        block_use: Set[int] = set()
        block_def: Set[int] = set()
        for ref in frame_refs.refs[block.label]:
            if ref.wild_read:
                block_use |= tracked - block_def
            else:
                block_use |= ref.reads - block_def
            if not ref.wild_write:
                block_def |= ref.writes
        use[block.label] = block_use
        defs[block.label] = block_def

    live_in: Dict[str, Set[int]] = {block.label: set() for block in func.blocks}
    live_out: Dict[str, Set[int]] = {block.label: set() for block in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out: Set[int] = set()
            for succ in cfg.succs.get(label, ()):
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return SlotLiveness(live_in, live_out, func, tracked, frame_refs)
