"""Natural loop detection from back edges."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function


class Loop:
    """A natural loop: header plus the body of its back edges."""

    __slots__ = ("header", "body", "latches", "depth")

    def __init__(self, header: str, body: Set[str], latches: Set[str]):
        self.header = header
        self.body = body
        self.latches = latches
        self.depth = 1  # filled in by find_natural_loops

    def exits(self, cfg: CFG) -> List[str]:
        """Blocks outside the loop reachable directly from inside it."""
        result = []
        for label in self.body:
            for succ in cfg.succs.get(label, ()):
                if succ not in self.body and succ not in result:
                    result.append(succ)
        return result

    def exiting_blocks(self, cfg: CFG) -> List[str]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for label in self.body:
            if any(succ not in self.body for succ in cfg.succs.get(label, ())):
                result.append(label)
        return result

    def __repr__(self):
        return f"<Loop header={self.header} body={sorted(self.body)}>"


def find_natural_loops(
    func: Function,
    cfg: Optional[CFG] = None,
    dom: Optional[DominatorTree] = None,
) -> List[Loop]:
    """Find natural loops; loops sharing a header are merged.

    Returned loops are sorted innermost-first (deepest nesting level
    first), matching the order VPO processes loops in its loop phases.
    """
    if cfg is None:
        cfg = build_cfg(func)
    if dom is None:
        dom = compute_dominators(func, cfg)

    reachable = cfg.reachable(func.entry.label)
    loops_by_header: Dict[str, Loop] = {}
    # Iterate in positional block order, not set order: the discovery
    # order decides how same-depth loops tie-break after the sort below,
    # and phases act on the first candidate loop.
    for label in cfg.order:
        if label not in reachable:
            continue
        for succ in cfg.succs.get(label, ()):
            if succ in reachable and dom.dominates(succ, label):
                # Back edge label -> succ.
                header = succ
                body = {header, label}
                stack = [label]
                while stack:
                    current = stack.pop()
                    if current == header:
                        continue
                    for pred in cfg.preds.get(current, ()):
                        if pred in reachable and pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loop = loops_by_header.get(header)
                if loop is None:
                    loops_by_header[header] = Loop(header, body, {label})
                else:
                    loop.body |= body
                    loop.latches.add(label)

    loops = list(loops_by_header.values())
    # Nesting depth: loop A contains loop B when B's header is in A's
    # body and B's body is a subset of A's.
    for loop in loops:
        loop.depth = 1 + sum(
            1
            for other in loops
            if other is not loop
            and loop.header in other.body
            and loop.body <= other.body
        )
    loops.sort(key=lambda loop: -loop.depth)
    return loops
