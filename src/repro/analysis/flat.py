"""Dataflow analyses over the flat IR (bitmask registers, int blocks).

Mirrors of :mod:`repro.analysis` for :class:`~repro.ir.flat.FlatFunction`:
the same fixpoints compute the same facts — liveness as int bitmasks
over interned register ids, CFGs and dominators over positional block
indices — so the flat phase kernels reach bit-identical decisions to
their object counterparts without touching instruction objects.

Caching follows the exact discipline of :mod:`repro.analysis.cache`:
analyses live on ``FlatFunction._analyses``, clones share the cache
object, and every mutation commit point rebinds it via
``invalidate_analyses()``.  Additionally, per-block use/def masks are
cached *globally* by interned block content — a block's gen/kill sets
are a pure function of its instruction ids, and the same few hundred
distinct blocks recur across the whole enumeration space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.framerefs import (
    _NO_REFS,
    InstSlotRefs,
    _eval_abstract,
    _meet,
    _transfer,
)
from repro.ir.flat import (
    DEF_MASK,
    FLAGS,
    F_TRANSFER,
    INST_OBJS,
    KIND,
    K_ASSIGN,
    K_CONDBR,
    K_JUMP,
    K_RET,
    MEM_REFS,
    TARGET_LID,
    USE_MASK,
    FlatFunction,
    block_id,
)
from repro.observability import tracer as _obs

#: rid of the return-value register (hardware r0 is seeded at rid 0).
RV_RID = 0
RV_BIT = 1 << RV_RID


def _note(hit: bool) -> None:
    tr = _obs.ACTIVE
    if tr is not None:
        tr.analysis_event(hit)


# ----------------------------------------------------------------------
# CFG over block indices
# ----------------------------------------------------------------------


class FlatCFG:
    """Successor/predecessor block-index lists (positional order)."""

    __slots__ = ("succs", "preds")

    def __init__(self, succs: List[List[int]]):
        self.succs = succs
        self.preds: List[List[int]] = [[] for _ in succs]
        for i, targets in enumerate(succs):
            for target in targets:
                self.preds[target].append(i)

    def reachable(self, entry: int = 0) -> Set[int]:
        seen = {entry}
        stack = [entry]
        while stack:
            block = stack.pop()
            for succ in self.succs[block]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reverse_postorder(self, entry: int = 0) -> List[int]:
        seen = {entry}
        postorder: List[int] = []
        stack: List[Tuple[int, int]] = [(entry, 0)]
        while stack:
            current, pos = stack[-1]
            succs = self.succs[current]
            advanced = False
            while pos < len(succs):
                succ = succs[pos]
                pos += 1
                if succ not in seen:
                    seen.add(succ)
                    stack[-1] = (current, pos)
                    stack.append((succ, 0))
                    advanced = True
                    break
            if not advanced:
                stack[-1] = (current, pos)
                if pos >= len(succs):
                    postorder.append(current)
                    stack.pop()
        return postorder[::-1]


def build_flat_cfg(flat: FlatFunction) -> FlatCFG:
    index = {lid: i for i, lid in enumerate(flat.labels)}
    n = len(flat.blocks)
    succs: List[List[int]] = []
    for i, block in enumerate(flat.blocks):
        targets: List[int] = []
        last = block[-1] if block else -1
        kind = KIND[last] if last >= 0 and FLAGS[last] & F_TRANSFER else -1
        if kind == K_JUMP:
            targets = [index[TARGET_LID[last]]]
        elif kind == K_CONDBR:
            targets = [index[TARGET_LID[last]]]
            if i + 1 < n and i + 1 != targets[0]:
                targets.append(i + 1)
        elif kind == K_RET:
            targets = []
        else:
            if i + 1 < n:
                targets = [i + 1]
        succs.append(targets)
    return FlatCFG(succs)


# ----------------------------------------------------------------------
# Register liveness (bitmasks)
# ----------------------------------------------------------------------

#: (block content id, returns_value) -> (use mask, def mask)
_BLOCK_USE_DEF: Dict[Tuple[int, bool], Tuple[int, int]] = {}


def _block_use_def(block: List[int], returns_value: bool) -> Tuple[int, int]:
    key = (block_id(tuple(block)), returns_value)
    cached = _BLOCK_USE_DEF.get(key)
    if cached is not None:
        return cached
    use = 0
    defs = 0
    for iid in block:
        use |= USE_MASK[iid] & ~defs
        if returns_value and KIND[iid] == K_RET and not defs & RV_BIT:
            use |= RV_BIT
        defs |= DEF_MASK[iid]
    result = (use, defs)
    _BLOCK_USE_DEF[key] = result
    return result


class FlatLiveness:
    """Per-block live-in/live-out register masks."""

    __slots__ = ("live_in", "live_out", "func", "after_memo")

    def __init__(
        self,
        live_in: List[int],
        live_out: List[int],
        func: FlatFunction,
        after_memo: Optional[Dict[int, List[int]]] = None,
    ):
        self.live_in = live_in
        self.live_out = live_out
        self.func = func
        # per-block memo of live_after_each, carried across rebinds
        # (the fixpoint lists are shared, so the memo stays valid)
        self.after_memo = {} if after_memo is None else after_memo

    def live_after_each(self, block_index: int) -> List[int]:
        """Mask of registers live after each instruction of the block."""
        memo = self.after_memo.get(block_index)
        if memo is not None:
            return memo
        block = self.func.blocks[block_index]
        returns_value = self.func.returns_value
        live = self.live_out[block_index]
        result = [0] * len(block)
        for i in range(len(block) - 1, -1, -1):
            iid = block[i]
            result[i] = live
            live = (live & ~DEF_MASK[iid]) | USE_MASK[iid]
            if returns_value and KIND[iid] == K_RET:
                live |= RV_BIT
        self.after_memo[block_index] = result
        return result

    def live_before_each(self, block_index: int) -> List[int]:
        block = self.func.blocks[block_index]
        returns_value = self.func.returns_value
        live = self.live_out[block_index]
        result = [0] * len(block)
        for i in range(len(block) - 1, -1, -1):
            iid = block[i]
            live = (live & ~DEF_MASK[iid]) | USE_MASK[iid]
            if returns_value and KIND[iid] == K_RET:
                live |= RV_BIT
            result[i] = live
        return result


def compute_flat_liveness(
    flat: FlatFunction, cfg: Optional[FlatCFG] = None
) -> FlatLiveness:
    if cfg is None:
        cfg = build_flat_cfg(flat)
    returns_value = flat.returns_value
    blocks = flat.blocks
    n = len(blocks)
    use = [0] * n
    defs = [0] * n
    for i, block in enumerate(blocks):
        use[i], defs[i] = _block_use_def(block, returns_value)

    live_in = [0] * n
    live_out = [0] * n
    succs = cfg.succs
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = 0
            for succ in succs[i]:
                out |= live_in[succ]
            new_in = use[i] | (out & ~defs[i])
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i] = out
                live_in[i] = new_in
                changed = True
    return FlatLiveness(live_in, live_out, flat)


# ----------------------------------------------------------------------
# Frame references and slot liveness
# ----------------------------------------------------------------------


class FlatFrameRefs:
    """Per-instruction scalar-slot effects, by block index."""

    __slots__ = ("refs", "tracked", "has_wild")

    def __init__(self, refs: List[List[InstSlotRefs]], tracked: frozenset, has_wild: bool):
        self.refs = refs
        self.tracked = tracked
        self.has_wild = has_wild


def compute_flat_frame_refs(
    flat: FlatFunction, cfg: Optional[FlatCFG] = None
) -> FlatFrameRefs:
    """The fp-offset dataflow of :mod:`repro.analysis.framerefs`, driven
    over flat blocks (abstract state transfer reuses the object-IR
    helpers on the interned instruction objects)."""
    if cfg is None:
        cfg = build_flat_cfg(flat)
    tracked = flat.scalar_slot_offsets()
    insts = INST_OBJS

    n = len(flat.blocks)
    in_states: List[Optional[Dict]] = [None] * n
    in_states[0] = {}
    order = cfg.reverse_postorder(0)
    changed = True
    while changed:
        changed = False
        for bi in order:
            state = in_states[bi]
            if state is None:
                continue
            current = dict(state)
            for iid in flat.blocks[bi]:
                _transfer(insts[iid], current)
            for succ in cfg.succs[bi]:
                existing = in_states[succ]
                if existing is None:
                    in_states[succ] = dict(current)
                    changed = True
                    continue
                merged = {}
                for reg in set(existing) | set(current):
                    merged[reg] = _meet(
                        existing.get(reg, "other"), current.get(reg, "other")
                    )
                if merged != existing:
                    in_states[succ] = merged
                    changed = True

    refs: List[List[InstSlotRefs]] = []
    has_wild = False
    mem_refs = MEM_REFS
    for bi, block in enumerate(flat.blocks):
        state = in_states[bi]
        current = dict(state) if state is not None else {}
        block_refs: List[InstSlotRefs] = []
        for iid in block:
            touched = mem_refs[iid]
            if not touched:
                block_refs.append(_NO_REFS)
                _transfer(insts[iid], current)
                continue
            reads: Set[int] = set()
            writes: Set[int] = set()
            wild_read = False
            wild_write = False
            for mem, is_write in touched:
                value = _eval_abstract(mem.addr, current)
                if isinstance(value, int):
                    if value in tracked:
                        (writes if is_write else reads).add(value)
                elif value == "wild":
                    if is_write:
                        wild_write = True
                    else:
                        wild_read = True
            if wild_read or wild_write:
                has_wild = True
            block_refs.append(
                InstSlotRefs(frozenset(reads), frozenset(writes), wild_read, wild_write)
            )
            _transfer(insts[iid], current)
        refs.append(block_refs)
    return FlatFrameRefs(refs, tracked, has_wild)


class FlatSlotLiveness:
    """Per-block live-in/out sets of scalar frame-slot offsets."""

    __slots__ = (
        "live_in",
        "live_out",
        "func",
        "tracked",
        "frame_refs",
        "after_memo",
    )

    def __init__(
        self, live_in, live_out, func, tracked, frame_refs, after_memo=None
    ):
        self.live_in = live_in
        self.live_out = live_out
        self.func = func
        self.tracked = tracked
        self.frame_refs = frame_refs
        self.after_memo: Dict[int, List[Set[int]]] = (
            {} if after_memo is None else after_memo
        )

    def live_after_each(self, block_index: int) -> List[Set[int]]:
        memo = self.after_memo.get(block_index)
        if memo is not None:
            return memo
        block = self.func.blocks[block_index]
        refs = self.frame_refs.refs[block_index]
        live = set(self.live_out[block_index])
        result: List[Set[int]] = [set()] * len(block)
        for i in range(len(block) - 1, -1, -1):
            ref = refs[i]
            result[i] = set(live)
            if not ref.wild_write:
                live -= ref.writes
            if ref.wild_read:
                live |= self.tracked
            else:
                live |= ref.reads
        self.after_memo[block_index] = result
        return result


def compute_flat_slot_liveness(
    flat: FlatFunction, cfg: Optional[FlatCFG] = None
) -> FlatSlotLiveness:
    if cfg is None:
        cfg = build_flat_cfg(flat)
    frame_refs = compute_flat_frame_refs(flat, cfg)
    tracked = set(frame_refs.tracked)

    n = len(flat.blocks)
    use: List[Set[int]] = [set() for _ in range(n)]
    defs: List[Set[int]] = [set() for _ in range(n)]
    for bi in range(n):
        block_use = use[bi]
        block_def = defs[bi]
        for ref in frame_refs.refs[bi]:
            if ref.wild_read:
                block_use |= tracked - block_def
            else:
                block_use |= ref.reads - block_def
            if not ref.wild_write:
                block_def |= ref.writes

    live_in: List[Set[int]] = [set() for _ in range(n)]
    live_out: List[Set[int]] = [set() for _ in range(n)]
    succs = cfg.succs
    changed = True
    while changed:
        changed = False
        for bi in range(n - 1, -1, -1):
            out: Set[int] = set()
            for succ in succs[bi]:
                out |= live_in[succ]
            new_in = use[bi] | (out - defs[bi])
            if out != live_out[bi] or new_in != live_in[bi]:
                live_out[bi] = out
                live_in[bi] = new_in
                changed = True
    return FlatSlotLiveness(live_in, live_out, flat, tracked, frame_refs)


# ----------------------------------------------------------------------
# Dominators and natural loops over block indices
# ----------------------------------------------------------------------


class FlatDominatorTree:
    """Immediate-dominator tree over reachable block indices."""

    __slots__ = ("idom", "entry", "_depth")

    def __init__(self, idom: Dict[int, Optional[int]], entry: int = 0):
        self.idom = idom
        self.entry = entry
        self._depth: Dict[int, int] = {}
        for block in idom:
            depth = 0
            current: Optional[int] = block
            while current is not None and current != entry:
                current = idom[current]
                depth += 1
            self._depth[block] = depth

    def dominates(self, a: int, b: int) -> bool:
        current: Optional[int] = b
        while current is not None:
            if current == a:
                return True
            if current == self.entry:
                return False
            current = self.idom[current]
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, block: int) -> int:
        return self._depth[block]


def compute_flat_dominators(
    flat: FlatFunction, cfg: Optional[FlatCFG] = None
) -> FlatDominatorTree:
    if cfg is None:
        cfg = build_flat_cfg(flat)
    entry = 0
    rpo = cfg.reverse_postorder(entry)
    position = {block: i for i, block in enumerate(rpo)}
    idom: Dict[int, Optional[int]] = {entry: None}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block == entry:
                continue
            new_idom: Optional[int] = None
            for pred in cfg.preds[block]:
                if pred not in position or pred == block:
                    continue
                if pred in idom or pred == entry:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
            if new_idom is None:
                continue
            if idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True
    return FlatDominatorTree(idom, entry)


class FlatLoop:
    """A natural loop over block indices."""

    __slots__ = ("header", "body", "latches", "depth")

    def __init__(self, header: int, body: Set[int], latches: Set[int]):
        self.header = header
        self.body = body
        self.latches = latches
        self.depth = 1


def find_flat_loops(
    flat: FlatFunction,
    cfg: Optional[FlatCFG] = None,
    dom: Optional[FlatDominatorTree] = None,
) -> List[FlatLoop]:
    if cfg is None:
        cfg = build_flat_cfg(flat)
    if dom is None:
        dom = compute_flat_dominators(flat, cfg)

    reachable = cfg.reachable(0)
    loops_by_header: Dict[int, FlatLoop] = {}
    # Positional order, mirroring find_natural_loops' cfg.order walk.
    for block in sorted(reachable):
        for succ in cfg.succs[block]:
            if succ in reachable and dom.dominates(succ, block):
                header = succ
                body = {header, block}
                stack = [block]
                while stack:
                    current = stack.pop()
                    if current == header:
                        continue
                    for pred in cfg.preds[current]:
                        if pred in reachable and pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loop = loops_by_header.get(header)
                if loop is None:
                    loops_by_header[header] = FlatLoop(header, body, {block})
                else:
                    loop.body |= body
                    loop.latches.add(block)

    loops = list(loops_by_header.values())
    for loop in loops:
        loop.depth = 1 + sum(
            1
            for other in loops
            if other is not loop
            and loop.header in other.body
            and loop.body <= other.body
        )
    loops.sort(key=lambda loop: -loop.depth)
    return loops


# ----------------------------------------------------------------------
# Per-function cache (FlatFunction._analyses)
# ----------------------------------------------------------------------


class FlatAnalyses:
    """Lazily-filled flat analyses for one function content."""

    __slots__ = (
        "cfg",
        "liveness",
        "slot_liveness",
        "dominators",
        "loops",
        "single_defs",
        "reg_use_counts",
    )

    def __init__(self) -> None:
        self.cfg: Optional[FlatCFG] = None
        self.liveness: Optional[FlatLiveness] = None
        self.slot_liveness: Optional[FlatSlotLiveness] = None
        self.dominators: Optional[FlatDominatorTree] = None
        self.loops: Optional[List[FlatLoop]] = None
        self.single_defs: Optional[Dict[int, int]] = None
        self.reg_use_counts: Optional[Dict[int, int]] = None


#: (content key, returns_value, tracked slot offsets) -> FlatAnalyses.
#: Every fact in FlatAnalyses is a pure function of that triple, so
#: functions with equal content *share* their analysis cache object —
#: independent phase orders converging on the same code (the very
#: merges the DAG detects) pay each fixpoint once per process.
_ANALYSES_BY_CONTENT: Dict[Tuple, FlatAnalyses] = {}
_ANALYSES_MAX = 1 << 16


def _cache_of(flat: FlatFunction) -> FlatAnalyses:
    cache = flat._analyses
    if cache is None:
        key = (
            flat.content_key(),
            flat.returns_value,
            flat.scalar_slot_offsets(),
        )
        cache = _ANALYSES_BY_CONTENT.get(key)
        if cache is None:
            cache = FlatAnalyses()
            if len(_ANALYSES_BY_CONTENT) >= _ANALYSES_MAX:
                _ANALYSES_BY_CONTENT.clear()
            _ANALYSES_BY_CONTENT[key] = cache
        flat._analyses = cache
    return cache


def flat_cfg_of(flat: FlatFunction) -> FlatCFG:
    cache = _cache_of(flat)
    _note(cache.cfg is not None)
    if cache.cfg is None:
        cache.cfg = build_flat_cfg(flat)
    return cache.cfg


def flat_liveness_of(flat: FlatFunction) -> FlatLiveness:
    cache = _cache_of(flat)
    _note(cache.liveness is not None)
    if cache.liveness is None:
        cache.liveness = compute_flat_liveness(flat, flat_cfg_of(flat))
    elif cache.liveness.func is not flat:
        cache.liveness = FlatLiveness(
            cache.liveness.live_in,
            cache.liveness.live_out,
            flat,
            cache.liveness.after_memo,
        )
    return cache.liveness


def flat_slot_liveness_of(flat: FlatFunction) -> FlatSlotLiveness:
    cache = _cache_of(flat)
    _note(cache.slot_liveness is not None)
    if cache.slot_liveness is None:
        cache.slot_liveness = compute_flat_slot_liveness(flat, flat_cfg_of(flat))
    elif cache.slot_liveness.func is not flat:
        old = cache.slot_liveness
        cache.slot_liveness = FlatSlotLiveness(
            old.live_in,
            old.live_out,
            flat,
            old.tracked,
            old.frame_refs,
            old.after_memo,
        )
    return cache.slot_liveness


def flat_dominators_of(flat: FlatFunction) -> FlatDominatorTree:
    cache = _cache_of(flat)
    _note(cache.dominators is not None)
    if cache.dominators is None:
        cache.dominators = compute_flat_dominators(flat, flat_cfg_of(flat))
    return cache.dominators


def flat_loops_of(flat: FlatFunction) -> List[FlatLoop]:
    cache = _cache_of(flat)
    _note(cache.loops is not None)
    if cache.loops is None:
        cache.loops = find_flat_loops(flat, flat_cfg_of(flat), flat_dominators_of(flat))
    return cache.loops


def flat_single_defs_of(flat: FlatFunction) -> Dict[int, int]:
    """``single_def_registers`` over the flat IR: rid -> defining iid.

    A register counts as multiply-defined when it is live into the
    entry block (implicit definition by the caller or a predecessor
    incarnation).  Only ``Assign``-defined registers are returned —
    the CSE kernel's propagation sources.
    """
    cache = _cache_of(flat)
    _note(cache.single_defs is not None)
    if cache.single_defs is None:
        counts: Dict[int, int] = {}
        definer: Dict[int, int] = {}
        live_entry = flat_liveness_of(flat).live_in[0]
        while live_entry:
            bit = live_entry & -live_entry
            counts[bit.bit_length() - 1] = 1
            live_entry ^= bit
        for block in flat.blocks:
            for iid in block:
                mask = DEF_MASK[iid]
                while mask:
                    bit = mask & -mask
                    rid = bit.bit_length() - 1
                    counts[rid] = counts.get(rid, 0) + 1
                    definer[rid] = iid
                    mask ^= bit
        cache.single_defs = {
            rid: iid
            for rid, iid in definer.items()
            if counts[rid] == 1 and KIND[iid] == K_ASSIGN
        }
    return cache.single_defs


def reset_flat_analysis_caches() -> None:
    _BLOCK_USE_DEF.clear()
    _ANALYSES_BY_CONTENT.clear()
