"""Translation validation: per-edge semantic equivalence.

Classifies each DAG edge ``before --phase--> after`` as:

``proved``
    the two functions are symbolically equivalent: their CFGs match
    block-for-block (a simulation from the entry) and every matched
    block has identical observable effects — live-out register values,
    the memory write log, the call sequence, the branch condition and
    the return value — under sound normalization only (constant
    folding with the VM's exact 32-bit semantics, commutative operand
    sorting, and linear-form canonicalization of add/sub/mul-by-
    constant/shift-by-constant chains, all exact in mod-2^32
    arithmetic);
``tested``
    symbolic matching failed (e.g. the phase restructured the CFG or
    renamed registers) but seeded VM co-execution of both versions
    agreed on every comparable input vector;
``refuted``
    co-execution found a diverging vector — the edge is semantically
    wrong and the guard quarantines it;
``unverified``
    neither approach could compare anything (no program context, or
    every vector failed on the reference side).

The prover is deliberately one-sided: any doubt — an unmodelled
construct, a mismatched shape, an exception inside the prover itself —
falls through to testing, never to ``proved``.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.analysis.cache import cfg_of, liveness_of
from repro.ir.function import Function, Program
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import (
    BinOp,
    COMMUTATIVE_OPS,
    Const,
    Mem,
    Reg,
    Sym,
    UnOp,
    _mask32,
    fold_binop,
    fold_unop,
)
from repro.machine.target import RV
from repro.vm.interpreter import Interpreter, VMError

PROVED = "proved"
TESTED = "tested"
UNVERIFIED = "unverified"
REFUTED = "refuted"

#: verdicts in confidence order; ``refuted`` is a guard failure, not a
#: classification of a surviving edge
VERDICTS = (PROVED, TESTED, UNVERIFIED, REFUTED)

_REF_CACHE_LIMIT = 512


class EdgeVerdict(NamedTuple):
    status: str
    detail: str


class _NotProvable(Exception):
    """Internal: abandon the symbolic proof, fall back to testing."""


# ----------------------------------------------------------------------
# Symbolic values are hashable tuples:
#   ("reg", index, pseudo)      register value at block entry
#   ("const", int)              a known 32-bit constant
#   ("sym", name, part)         address half of a global
#   ("load", k, addr)           load from *addr* after k memory events
#   ("call", k, index)          r<index> after the k-th call
#   ("lin", ((atom, coeff), ...), const)   linear combination mod 2^32
#   ("op", op, operands...)     anything else, commutatively sorted
# ----------------------------------------------------------------------


def _const(value: int) -> Tuple:
    return ("const", _mask32(value))


def _linearize(value: Tuple) -> Optional[Tuple[Dict[Tuple, int], int]]:
    """View *value* as ``sum(coeff * atom) + const`` mod 2^32, or None."""
    if value[0] == "const":
        return {}, value[1]
    if value[0] == "lin":
        return dict(value[1]), value[2]
    return {value: 1}, 0


def _make_linear(terms: Dict[Tuple, int], const: int) -> Tuple:
    cleaned = {}
    for atom, coeff in terms.items():
        coeff = coeff & 0xFFFFFFFF
        if coeff:
            cleaned[atom] = coeff
    const = _mask32(const)
    if not cleaned:
        return _const(const)
    if len(cleaned) == 1 and const == 0:
        (atom, coeff), = cleaned.items()
        if coeff == 1:
            return atom
    ordered = tuple(sorted(cleaned.items(), key=lambda item: repr(item[0])))
    return ("lin", ordered, const)


def _sym_binop(op: str, left: Tuple, right: Tuple) -> Tuple:
    if left[0] == "const" and right[0] == "const":
        folded = fold_binop(op, left[1], right[1])
        if isinstance(folded, int):
            return _const(folded)
    if op in ("add", "sub"):
        a = _linearize(left)
        b = _linearize(right)
        sign = 1 if op == "add" else -1
        terms = dict(a[0])
        for atom, coeff in b[0].items():
            terms[atom] = terms.get(atom, 0) + sign * coeff
        return _make_linear(terms, a[1] + sign * b[1])
    if op == "mul" and (left[0] == "const" or right[0] == "const"):
        scale, other = (left[1], right) if left[0] == "const" else (right[1], left)
        terms, const = _linearize(other)
        return _make_linear(
            {atom: coeff * scale for atom, coeff in terms.items()},
            const * scale,
        )
    if op == "lsl" and right[0] == "const" and 0 <= right[1] < 32:
        # x << c is exactly x * 2^c in mod-2^32 arithmetic
        return _sym_binop("mul", left, _const(1 << right[1]))
    if op in COMMUTATIVE_OPS:
        left, right = sorted((left, right), key=repr)
    return ("op", op, left, right)


def _sym_unop(op: str, operand: Tuple) -> Tuple:
    if operand[0] == "const":
        folded = fold_unop(op, operand[1])
        if isinstance(folded, int):
            return _const(folded)
    if op == "neg":
        terms, const = _linearize(operand)
        return _make_linear(
            {atom: -coeff for atom, coeff in terms.items()}, -const
        )
    return ("op", op, operand)


def _addresses_distinct(a: Tuple, b: Tuple) -> bool:
    """True only when the two accesses provably hit different cells.

    The VM's memory is a flat address -> word map (cells never
    overlap), so two addresses with identical linear terms and any
    nonzero constant difference are distinct."""
    if a == b:
        return False
    la = _linearize(a)
    lb = _linearize(b)
    if la[0] != lb[0]:
        return False
    return _mask32(la[1] - lb[1]) != 0


class _SymState:
    """Symbolic execution state for one basic block."""

    __slots__ = ("env", "mem", "calls", "cc", "returns_value", "oracle")

    def __init__(self, returns_value: bool, oracle=None):
        self.env: Dict[Tuple[int, bool], Tuple] = {}
        #: memory event log: ("store", addr, value) | ("call", k)
        self.mem: List[Tuple] = []
        self.calls: List[Tuple] = []
        self.cc: Optional[Tuple] = None
        self.returns_value = returns_value
        #: optional AliasOracle adding layout/frontend distinctness facts
        self.oracle = oracle

    def _reg(self, reg: Reg) -> Tuple:
        return self.env.get((reg.index, reg.pseudo), ("reg", reg.index, reg.pseudo))

    def _distinct(self, a: Tuple, b: Tuple) -> bool:
        if _addresses_distinct(a, b):
            return True
        return self.oracle is not None and self.oracle.distinct(a, b)

    def _load(self, addr: Tuple) -> Tuple:
        for position in range(len(self.mem) - 1, -1, -1):
            event = self.mem[position]
            if event[0] == "call":
                break  # the call may have written anything
            if event[1] == addr:
                return event[2]
            if not self._distinct(event[1], addr):
                break  # may alias: value unknown
        else:
            position = -1
        # Opaque token: "whatever this address holds after the first
        # `position + 1` memory events".  Equal tokens on both sides
        # denote the same value once the logs themselves match.
        return ("load", position + 1, addr)

    def eval(self, expr) -> Tuple:
        if isinstance(expr, Reg):
            return self._reg(expr)
        if isinstance(expr, Const):
            return _const(expr.value)
        if isinstance(expr, Sym):
            return ("sym", expr.name, expr.part)
        if isinstance(expr, Mem):
            return self._load(self.eval(expr.addr))
        if isinstance(expr, BinOp):
            return _sym_binop(expr.op, self.eval(expr.left), self.eval(expr.right))
        if isinstance(expr, UnOp):
            return _sym_unop(expr.op, self.eval(expr.operand))
        raise _NotProvable(f"unmodelled expression {expr!r}")

    def execute(self, inst) -> None:
        if isinstance(inst, Assign):
            value = self.eval(inst.src)
            if isinstance(inst.dst, Reg):
                self.env[(inst.dst.index, inst.dst.pseudo)] = value
            elif isinstance(inst.dst, Mem):
                self.mem.append(("store", self.eval(inst.dst.addr), value))
            else:
                raise _NotProvable(f"unmodelled destination {inst.dst!r}")
            return
        if isinstance(inst, Compare):
            self.cc = ("cmp", self.eval(inst.left), self.eval(inst.right))
            return
        if isinstance(inst, Call):
            index = len(self.calls)
            args = tuple(
                self._reg(Reg(i, pseudo=False)) for i in range(inst.nargs)
            )
            self.calls.append((inst.name, inst.nargs, args, len(self.mem)))
            for i in range(4):
                self.env[(i, False)] = ("call", index, i)
            self.mem.append(("call", index))
            return
        if isinstance(inst, (Jump, CondBranch, Return)):
            return  # control flow is handled by the block matching
        raise _NotProvable(f"unmodelled instruction {inst!r}")

    def observables(self, live_out, terminator) -> Tuple:
        regs = {}
        for reg in live_out:
            regs[(reg.index, reg.pseudo)] = self._reg(reg)
        branch = None
        if isinstance(terminator, CondBranch):
            if self.cc is None:
                raise _NotProvable("conditional branch with unset cc")
            branch = (terminator.relop, self.cc)
        returned = None
        if isinstance(terminator, Return) and self.returns_value:
            returned = self._reg(RV)
        return regs, tuple(self.mem), tuple(self.calls), branch, returned


def _frame_shape(func: Function) -> Tuple:
    return (
        func.frame_size,
        tuple(
            sorted(
                (slot.name, slot.offset, slot.words)
                for slot in func.frame.values()
            )
        ),
    )


def prove_equivalent(before: Function, after: Function, oracle=None) -> bool:
    """Symbolic block-level simulation proof; False means *unknown*.

    *oracle* (an :class:`~repro.staticanalysis.alias.AliasOracle`)
    optionally strengthens the store-skipping distinctness test with
    layout and frontend memory facts.
    """
    try:
        return _prove(before, after, oracle)
    except _NotProvable:
        return False


def _prove(before: Function, after: Function, oracle=None) -> bool:
    if before.returns_value != after.returns_value:
        return False
    if len(before.params) != len(after.params):
        return False
    if _frame_shape(before) != _frame_shape(after):
        return False
    cfg_a = cfg_of(before)
    cfg_b = cfg_of(after)
    live_a = liveness_of(before)
    live_b = liveness_of(after)
    entry_pair = (before.entry.label, after.entry.label)
    mapping: Dict[str, str] = {entry_pair[0]: entry_pair[1]}
    queue = [entry_pair]
    visited = set()
    while queue:
        label_a, label_b = queue.pop()
        if (label_a, label_b) in visited:
            continue
        visited.add((label_a, label_b))
        block_a = before.block(label_a)
        block_b = after.block(label_b)
        term_a = block_a.terminator()
        term_b = block_b.terminator()
        succs_a = cfg_a.succs.get(label_a, [])
        succs_b = cfg_b.succs.get(label_b, [])
        if len(succs_a) != len(succs_b):
            return False
        if len(succs_a) == 2:
            # Two-way blocks must agree on the branch sense so that
            # [target, fallthrough] positions correspond.
            if not isinstance(term_a, CondBranch) or not isinstance(
                term_b, CondBranch
            ):
                return False
            if term_a.relop != term_b.relop:
                return False
        state_a = _SymState(before.returns_value, oracle)
        state_b = _SymState(after.returns_value, oracle)
        for inst in block_a.insts:
            state_a.execute(inst)
        for inst in block_b.insts:
            state_b.execute(inst)
        live_out = live_a.live_out.get(label_a, frozenset()) | live_b.live_out.get(
            label_b, frozenset()
        )
        if state_a.observables(live_out, term_a) != state_b.observables(
            live_out, term_b
        ):
            return False
        for succ_a, succ_b in zip(succs_a, succs_b):
            mapped = mapping.get(succ_a)
            if mapped is None:
                mapping[succ_a] = succ_b
            elif mapped != succ_b:
                return False
            queue.append((succ_a, succ_b))
    return True


def _function_key(func: Function) -> Tuple:
    return (
        func.name,
        func.frame_size,
        func.returns_value,
        tuple((block.label, tuple(block.insts)) for block in func.blocks),
    )


class TranslationValidator:
    """Classify edges, with seeded VM co-execution as the fallback.

    *program* and *entry* give the co-execution context (the program
    the enumerated function belongs to); without them the fallback is
    unavailable and unprovable edges classify as ``unverified``.
    """

    def __init__(
        self,
        program: Optional[Program] = None,
        entry: Optional[str] = None,
        fuel: int = 2_000_000,
        alias_oracle: bool = True,
    ):
        self.program = program
        self.entry = entry
        self.fuel = fuel
        #: consult frontend mem_facts / layout facts while proving.
        #: The semantic DAG collapse turns this off so that collapse
        #: verdicts never depend on source-level contracts.
        self.alias_oracle = alias_oracle
        self._ref_cache: Dict[Tuple, List[Tuple[Tuple[int, ...], object]]] = {}

    # ------------------------------------------------------------------

    def _oracle_for(self, func: Function):
        if not self.alias_oracle:
            return None
        from repro.staticanalysis.alias import oracle_for

        return oracle_for(func, self.program)

    def classify(self, before: Function, after: Function) -> EdgeVerdict:
        try:
            proved = _prove(before, after, self._oracle_for(before))
        except _NotProvable:
            proved = False
        except (KeyboardInterrupt, SystemExit, MemoryError):
            raise
        except Exception:  # prover bug: never block enumeration
            proved = False
        if proved:
            return EdgeVerdict(PROVED, "symbolic block-level match")
        return self._co_execute(before, after)

    # ------------------------------------------------------------------

    def _vectors(self, func: Function) -> Tuple[Tuple[int, ...], ...]:
        from repro.staticanalysis.sanitize import declared_arity

        arity = declared_arity(func)
        if arity == 0:
            return ((),)
        primes = (2, 3, 5, 7)
        return (
            (0,) * arity,
            (1,) * arity,
            tuple(primes[i % len(primes)] for i in range(arity)),
        )

    def _spliced(self, func: Function) -> Program:
        spliced = Program()
        spliced.globals = self.program.globals
        spliced.functions = dict(self.program.functions)
        spliced.functions[self.entry] = func
        return spliced

    def _run_reference(self, before: Function):
        key = _function_key(before)
        cached = self._ref_cache.get(key)
        if cached is not None:
            return cached
        reference = []
        spliced = self._spliced(before)
        for vector in self._vectors(before):
            try:
                value = Interpreter(spliced, fuel=self.fuel).run(
                    self.entry, vector
                ).value
            except VMError:
                continue
            reference.append((vector, value))
        if len(self._ref_cache) >= _REF_CACHE_LIMIT:
            self._ref_cache.clear()
        self._ref_cache[key] = reference
        return reference

    def _co_execute(self, before: Function, after: Function) -> EdgeVerdict:
        if self.program is None or self.entry is None:
            return EdgeVerdict(UNVERIFIED, "no program context for co-execution")
        if before.name != self.entry:
            return EdgeVerdict(
                UNVERIFIED, f"function {before.name!r} is not the entry"
            )
        reference = self._run_reference(before)
        if not reference:
            return self._driver_execute(before, after)
        spliced = self._spliced(after)
        for vector, expected in reference:
            try:
                value = Interpreter(spliced, fuel=self.fuel).run(
                    self.entry, vector
                ).value
            except VMError as error:
                return EdgeVerdict(
                    REFUTED, f"args={vector}: transformed code crashed: {error}"
                )
            if value != expected:
                return EdgeVerdict(
                    REFUTED,
                    f"args={vector}: expected {expected}, got {value}",
                )
        return EdgeVerdict(
            TESTED, f"co-executed on {len(reference)} input vectors"
        )

    def _driver_execute(self, before: Function, after: Function) -> EdgeVerdict:
        """Last resort: drive the function through the whole program.

        Some functions cannot run in isolation (they divide by or
        index globals another function must initialize first).  When
        ``main`` exists, executing the full program with the candidate
        spliced in still covers them with realistic state.
        """
        driver = "main"
        if driver not in self.program.functions or self.entry == driver:
            return EdgeVerdict(UNVERIFIED, "no executable input vectors")
        key = ("driver",) + _function_key(before)
        expected = self._ref_cache.get(key)
        if expected is None:
            try:
                expected = (
                    Interpreter(self._spliced(before), fuel=self.fuel)
                    .run(driver, ())
                    .value,
                )
            except VMError:
                return EdgeVerdict(
                    UNVERIFIED, "no executable input vectors (main failed too)"
                )
            if len(self._ref_cache) >= _REF_CACHE_LIMIT:
                self._ref_cache.clear()
            self._ref_cache[key] = expected
        try:
            value = Interpreter(self._spliced(after), fuel=self.fuel).run(
                driver, ()
            ).value
        except VMError as error:
            return EdgeVerdict(
                REFUTED, f"via main(): transformed code crashed: {error}"
            )
        if value != expected[0]:
            return EdgeVerdict(
                REFUTED, f"via main(): expected {expected[0]}, got {value}"
            )
        return EdgeVerdict(TESTED, "co-executed the whole program via main()")
