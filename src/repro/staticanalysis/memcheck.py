"""Memory-access sanitizer: wild, misaligned and out-of-bounds checks.

A forward dataflow tracks, per program point, which registers hold a
*known* abstract address:

- ``("fp", c)`` — frame pointer plus constant,
- ``("glob", name, c)`` — a global's HI/LO pair plus constant,
- ``("hi", name)`` — the high half alone (waiting for its LO),
- ``("const", v)`` — a compile-time constant,
- ``UNKNOWN`` — anything else.

Unlike the frame-reference analysis (which must be conservative in the
*may-alias* direction), these checks fire only on **must** information:
a finding means the access is wrong on every execution that reaches
it, so joining two different values degrades to ``UNKNOWN`` and no
finding.  The codes extend the sanitizer catalogue:

========  =========================================================
MEM001    load from a compile-time-constant address (wild load)
MEM002    store to a compile-time-constant address (wild store)
MEM003    access at an address that is provably misaligned
MEM004    global access with a known offset outside the object
========  =========================================================

Programs never legitimately materialize data addresses as plain
constants — globals resolve through HI/LO relocation and frame slots
through ``fp`` — so a constant address is wild by construction
(MEM001/MEM002).  These checks run in the sanitizer's ``full`` mode,
where they catch frontend or phase bugs that frame-bounds checking
(FRAME003) cannot see: null and garbage pointers, unscaled global
indexing, and stores past a global's extent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.framerefs import _mem_exprs
from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function, Program
from repro.ir.instructions import Assign, Instruction
from repro.ir.operands import BinOp, Const, Expr, Reg, Sym, UnOp
from repro.machine.target import FP

UNKNOWN = "unknown"

#: MEM code -> one-line summary (mirrors the sanitize.py catalogue)
CATALOG = {
    "MEM001": "load from a compile-time-constant address (wild load)",
    "MEM002": "store to a compile-time-constant address (wild store)",
    "MEM003": "access at an address that is provably misaligned",
    "MEM004": "global access with a known offset outside the object",
}


def _join(a, b):
    return a if a == b else UNKNOWN


def _eval(expr: Expr, state: Dict[Reg, object]):
    """Abstract address value of *expr* under *state*."""
    if isinstance(expr, Reg):
        if expr == FP:
            return ("fp", 0)
        return state.get(expr, UNKNOWN)
    if isinstance(expr, Const):
        if isinstance(expr.value, float):
            return UNKNOWN
        return ("const", expr.value)
    if isinstance(expr, Sym):
        return ("hi", expr.name) if expr.part == "hi" else UNKNOWN
    if isinstance(expr, BinOp):
        left = _eval(expr.left, state)
        # HI[g] + LO[g] completes a global base address.
        if (
            expr.op == "add"
            and left[0] == "hi"
            and isinstance(expr.right, Sym)
            and expr.right.part == "lo"
            and expr.right.name == left[1]
        ):
            return ("glob", left[1], 0)
        right = _eval(expr.right, state)
        if expr.op in ("add", "sub"):
            sign = 1 if expr.op == "add" else -1
            if left[0] == "const" and right[0] == "const":
                return ("const", left[1] + sign * right[1])
            if left[0] in ("fp", "const") and right[0] == "const":
                return (left[0], left[1] + sign * right[1])
            if left[0] == "glob" and right[0] == "const":
                return ("glob", left[1], left[2] + sign * right[1])
            if expr.op == "add" and right[0] in ("fp", "glob") and left[0] == "const":
                offset = right[-1] + left[1]
                return right[:-1] + (offset,)
            return UNKNOWN
        if expr.op == "mul" and left[0] == "const" and right[0] == "const":
            return ("const", left[1] * right[1])
        if expr.op == "lsl" and left[0] == "const" and right[0] == "const":
            if 0 <= right[1] < 32:
                return ("const", left[1] << right[1])
        return UNKNOWN
    if isinstance(expr, UnOp):
        operand = _eval(expr.operand, state)
        if expr.op == "neg" and operand[0] == "const":
            return ("const", -operand[1])
        return UNKNOWN
    return UNKNOWN  # Mem loads and anything else: data, not addresses


def _transfer(inst: Instruction, state: Dict[Reg, object]) -> None:
    if isinstance(inst, Assign) and isinstance(inst.dst, Reg):
        state[inst.dst] = _eval(inst.src, state)
        return
    for reg in inst.defs():
        state[reg] = UNKNOWN


def memory_findings(
    func: Function,
    cfg: Optional[CFG] = None,
    program: Optional[Program] = None,
) -> List["Finding"]:
    """Run the abstract-address dataflow and report MEM001-MEM004."""
    from repro.staticanalysis.sanitize import Finding

    if cfg is None:
        cfg = build_cfg(func)
    globals_words: Dict[str, int] = {}
    if program is not None:
        globals_words = {v.name: v.words for v in program.globals.values()}

    entry = func.entry.label
    in_states: Dict[str, Optional[Dict[Reg, object]]] = {
        block.label: None for block in func.blocks
    }
    in_states[entry] = {}
    order = cfg.reverse_postorder(entry)
    changed = True
    while changed:
        changed = False
        for label in order:
            state = in_states[label]
            if state is None:
                continue
            current = dict(state)
            for inst in func.block(label).insts:
                _transfer(inst, current)
            for succ in cfg.succs.get(label, ()):
                existing = in_states[succ]
                if existing is None:
                    in_states[succ] = dict(current)
                    changed = True
                    continue
                merged = {
                    reg: _join(
                        existing.get(reg, UNKNOWN), current.get(reg, UNKNOWN)
                    )
                    for reg in set(existing) | set(current)
                }
                if merged != existing:
                    in_states[succ] = merged
                    changed = True

    findings: List[Finding] = []
    for label in order:
        state = in_states[label]
        current = dict(state) if state is not None else {}
        for index, inst in enumerate(func.block(label).insts):
            for mem, is_write in _mem_exprs(inst):
                value = _eval(mem.addr, current)
                where = f"{label}#{index}"
                access = "store" if is_write else "load"
                if value[0] == "const":
                    findings.append(
                        Finding(
                            "MEM002" if is_write else "MEM001",
                            func.name,
                            where,
                            f"wild {access} at constant address {value[1]}",
                        )
                    )
                elif value[0] in ("fp", "glob") and value[-1] % 4 != 0:
                    findings.append(
                        Finding(
                            "MEM003",
                            func.name,
                            where,
                            f"misaligned {access} at offset {value[-1]} "
                            f"from {value[0]}",
                        )
                    )
                elif value[0] == "glob" and value[1] in globals_words:
                    extent = 4 * globals_words[value[1]]
                    offset = value[2]
                    if offset < 0 or offset + 4 > extent:
                        findings.append(
                            Finding(
                                "MEM004",
                                func.name,
                                where,
                                f"global {access} at {value[1]}+{offset} is "
                                f"outside the object of {extent} bytes",
                            )
                        )
            _transfer(inst, current)
    return findings
