"""Phase contracts: declared invariants checked across every edge.

Each of the 17 phases — the 15 candidate phases of Table 1 plus the
two implicit ones (compulsory register assignment and control-flow
cleanup) — declares three invariant tuples:

``requires``
    must hold on the function *before* the phase runs (its legality
    precondition, mirroring ``Phase.applicable``);
``establishes``
    must hold *after* any active application;
``breaks``
    monotone invariants the phase is allowed to destroy (none of the
    current phases break any).

Candidate phases declare these as class attributes on their
:class:`~repro.opt.base.Phase` subclass; the two implicit phases
declare module-level ``CONTRACT`` dicts.  The checker also enforces
**monotonicity**: an invariant from :data:`MONOTONE` that held before
an edge and is not in the phase's ``breaks`` must still hold after —
this is what catches a phase that silently destroys a downstream
precondition (e.g. reintroducing pseudo registers after assignment).

Violations are reported as sanitizer findings with codes:

======  ======================================================
CON001  a ``requires`` invariant did not hold before the phase
CON002  an ``establishes`` invariant missing after the phase
CON003  a preserved monotone invariant was broken by the phase
======  ======================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.ir.function import Function
from repro.staticanalysis.sanitize import Finding

#: synthetic phase ids for the two implicit phases
REGISTER_ASSIGNMENT_ID = "assign"
CLEANUP_ID = "cleanup"


def _has_pseudo(func: Function) -> bool:
    for block in func.blocks:
        for inst in block.insts:
            for reg in inst.defs() | inst.uses():
                if reg.pseudo:
                    return True
    return False


#: invariant name -> predicate over a function
INVARIANTS: Dict[str, Callable[[Function], bool]] = {
    "registers-assigned": lambda func: func.reg_assigned,
    "no-pseudo-registers": lambda func: not _has_pseudo(func),
    "selection-done": lambda func: func.sel_applied,
    "allocation-done": lambda func: func.alloc_applied,
    "pre-assignment": lambda func: not func.reg_assigned,
}

#: invariants that, once established, no phase may silently destroy
#: (unless it declares them in ``breaks``)
MONOTONE: Tuple[str, ...] = (
    "registers-assigned",
    "no-pseudo-registers",
    "selection-done",
    "allocation-done",
)


class PhaseContract(NamedTuple):
    phase_id: str
    name: str
    requires: Tuple[str, ...]
    establishes: Tuple[str, ...]
    breaks: Tuple[str, ...]


def _contract_from_phase(phase) -> PhaseContract:
    return PhaseContract(
        phase_id=phase.id,
        name=phase.name,
        requires=tuple(phase.contract_requires),
        establishes=tuple(phase.contract_establishes),
        breaks=tuple(phase.contract_breaks),
    )


_REGISTRY: Optional[Dict[str, PhaseContract]] = None


def contract_registry() -> Dict[str, PhaseContract]:
    """All 17 contracts, keyed by phase id (built lazily once)."""
    global _REGISTRY
    if _REGISTRY is None:
        from repro.opt import PHASES, cleanup, register_assignment

        registry = {
            phase.id: _contract_from_phase(phase) for phase in PHASES
        }
        registry[REGISTER_ASSIGNMENT_ID] = PhaseContract(
            phase_id=REGISTER_ASSIGNMENT_ID,
            name="register assignment",
            **register_assignment.CONTRACT,
        )
        registry[CLEANUP_ID] = PhaseContract(
            phase_id=CLEANUP_ID,
            name="control-flow cleanup",
            **cleanup.CONTRACT,
        )
        _REGISTRY = registry
    return _REGISTRY


def contract_for(phase_id: str) -> PhaseContract:
    registry = contract_registry()
    if phase_id not in registry:
        raise KeyError(f"no contract declared for phase {phase_id!r}")
    return registry[phase_id]


def validate_contracts() -> List[str]:
    """Self-check of the registry: every declared invariant name must
    exist, and the two flag-coupled phases must declare what the
    engine's ``apply_phase`` flow guarantees.  Returns problems."""
    problems: List[str] = []
    registry = contract_registry()
    if len(registry) != 17:
        problems.append(f"expected 17 contracts, found {len(registry)}")
    for contract in registry.values():
        for field in ("requires", "establishes", "breaks"):
            for invariant in getattr(contract, field):
                if invariant not in INVARIANTS:
                    problems.append(
                        f"phase {contract.phase_id!r} {field} unknown "
                        f"invariant {invariant!r}"
                    )
    from repro.opt import PHASES

    for phase in PHASES:
        contract = registry[phase.id]
        if phase.requires_assignment and (
            "registers-assigned" not in contract.establishes
        ):
            problems.append(
                f"phase {phase.id!r} triggers compulsory assignment but "
                "does not declare establishes registers-assigned"
            )
    return problems


def check_contract(
    phase_id: str, before: Function, after: Function
) -> List[Finding]:
    """Check one applied edge ``before --phase--> after``.

    *before* is the pre-phase snapshot, *after* the function the phase
    (plus any triggered assignment and implicit cleanup) produced.
    """
    contract = contract_for(phase_id)
    findings: List[Finding] = []
    held_before: Dict[str, bool] = {}
    for invariant in MONOTONE:
        held_before[invariant] = INVARIANTS[invariant](before)
    for invariant in contract.requires:
        holds = held_before.get(invariant)
        if holds is None:
            holds = INVARIANTS[invariant](before)
        if not holds:
            findings.append(
                Finding(
                    "CON001",
                    after.name,
                    phase_id,
                    f"precondition {invariant!r} of phase {phase_id!r} "
                    "did not hold before the phase ran",
                )
            )
    for invariant in contract.establishes:
        if not INVARIANTS[invariant](after):
            findings.append(
                Finding(
                    "CON002",
                    after.name,
                    phase_id,
                    f"phase {phase_id!r} claims to establish "
                    f"{invariant!r} but it does not hold afterwards",
                )
            )
    for invariant in MONOTONE:
        if invariant in contract.breaks:
            continue
        if held_before[invariant] and not INVARIANTS[invariant](after):
            findings.append(
                Finding(
                    "CON003",
                    after.name,
                    phase_id,
                    f"phase {phase_id!r} broke the previously-established "
                    f"invariant {invariant!r}",
                )
            )
    return findings
