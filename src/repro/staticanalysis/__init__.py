"""Static verification of enumerated IR: sanitizer, contracts, transval.

Three layers, each usable on its own:

- :mod:`repro.staticanalysis.sanitize` — dataflow-powered IR checks
  with stable diagnostic codes (``CFG*``, ``DFA*``, ``MACH*``,
  ``FRAME*``, ``CC*``);
- :mod:`repro.staticanalysis.contracts` — per-phase invariant
  declarations (requires / establishes / may-break) checked across
  every applied phase edge;
- :mod:`repro.staticanalysis.transval` — per-edge translation
  validation classifying each DAG edge ``proved`` / ``tested`` /
  ``unverified`` (or ``refuted``).

:class:`repro.staticanalysis.checker.EdgeChecker` bundles all three
behind the ``--sanitize[=fast|full]`` guard hook; ``repro lint`` runs
the battery standalone.  See docs/STATIC_ANALYSIS.md for the check
catalogue and the contract table.
"""

from repro.staticanalysis.sanitize import (
    FAST,
    FULL,
    Finding,
    sanitize_function,
    sanitize_program,
    structural_findings,
)
from repro.staticanalysis.contracts import (
    PhaseContract,
    check_contract,
    contract_for,
    contract_registry,
    validate_contracts,
)
from repro.staticanalysis.transval import EdgeVerdict, TranslationValidator
from repro.staticanalysis.checker import EdgeChecker

__all__ = [
    "FAST",
    "FULL",
    "Finding",
    "sanitize_function",
    "sanitize_program",
    "structural_findings",
    "PhaseContract",
    "check_contract",
    "contract_for",
    "contract_registry",
    "validate_contracts",
    "EdgeVerdict",
    "TranslationValidator",
    "EdgeChecker",
]
