"""IR-level alias oracle: layout and frontend facts for the prover.

:mod:`repro.staticanalysis.transval` proves two blocks equivalent by
matching their memory event logs; when a load walks back over the log
it may skip a store only if the two addresses *provably* differ.  The
baseline test — identical linear terms, nonzero constant difference —
cannot separate a frame slot from a global, or two different globals,
because their symbolic bases differ.  This oracle adds exactly those
facts:

- **Region disjointness** (unconditional): the data segment and every
  stack frame occupy disjoint address ranges in the VM, so an in-frame
  ``fp + c`` access never aliases an in-bounds global access, and
  in-bounds accesses to two *different* globals never alias.
- **Frame privacy** (from the frontend): codegen records, per
  function, the frame offsets of scalar slots whose address is never
  taken (``Function.mem_facts["frame_private"]``).  No source pointer
  to such a slot exists, so an access whose address is built purely
  from source-level values cannot touch it.

Frame privacy is subtle because *compiler-generated* code may carry a
private slot's address in ways the source never could: register
allocation can spill an address register to a new frame slot and
reload it, and a value live across a call or a block boundary surfaces
as an opaque atom.  The oracle therefore only claims privacy
distinctness when every atom of the other address is **source-valued**
— a global address half, or a load from a cell that provably holds
source data (a private scalar slot, a global, or a dynamically indexed
frame array), recursively.  Opaque registers, call-clobber tokens and
unmodelled operators disqualify the claim.

The privacy fact (and the in-bounds treatment of dynamically indexed
accesses) is sound for programs accepted by the frontend's semantic
gate with well-defined behaviour — the same contract the rest of the
pipeline already assumes for out-of-bounds indexing.  Hand-built IR
carries no ``mem_facts``, so the oracle degrades to the layout facts
alone.  The structural canonicalizer (:mod:`.canon`) deliberately does
*not* consult this oracle: DAG collapse guarantees stay purely
structural.

Address classification works on the prover's *linearized* form — a
``(terms, const)`` pair where ``terms`` maps atoms such as
``("reg", index, pseudo)``, ``("sym", name, part)`` and
``("load", position, addr)`` to integer coefficients (mod 2^32).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.function import Program
from repro.machine.target import FP

#: the linear-form atom the frame pointer evaluates to in the prover
_FP_ATOM = ("reg", FP.index, FP.pseudo)

#: bound on _cell_holds_source_data recursion (pointer chains)
_MAX_DEPTH = 8


class AliasOracle:
    """Answer "are these two symbolic addresses provably distinct?"."""

    __slots__ = ("global_words", "frame_size", "frame_private")

    def __init__(
        self,
        program: Optional[Program] = None,
        frame_size: int = 0,
        mem_facts: Optional[dict] = None,
    ):
        self.global_words: Dict[str, int] = {}
        if program is not None:
            for var in program.globals.values():
                self.global_words[var.name] = var.words
        self.frame_size = frame_size
        facts = mem_facts or {}
        self.frame_private = frozenset(facts.get("frame_private", ()))

    # ------------------------------------------------------------------
    # Linear-form helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _coeffs(linear: Tuple) -> Dict[Tuple, int]:
        terms, __ = linear
        return {atom: coeff for atom, coeff in terms.items() if coeff}

    def _frame_exact(self, linear: Tuple) -> Optional[int]:
        """The constant c when the address is exactly ``fp + c``."""
        coeffs = self._coeffs(linear)
        if coeffs.pop(_FP_ATOM, 0) == 1 and not coeffs:
            return linear[1]
        return None

    def _global_base(self, linear: Tuple) -> Optional[Tuple[str, int, bool]]:
        """``(name, offset, exact)`` when the address is one global's
        HI/LO pair plus an offset (exact=False with runtime terms)."""
        coeffs = self._coeffs(linear)
        if coeffs.pop(_FP_ATOM, 0):
            return None
        names = {atom[1] for atom in coeffs if atom[0] == "sym"}
        if len(names) != 1:
            return None
        name = names.pop()
        if coeffs.pop(("sym", name, "hi"), 0) != 1:
            return None
        if coeffs.pop(("sym", name, "lo"), 0) != 1:
            return None
        if name not in self.global_words:
            return None
        return name, linear[1], not coeffs

    def _global_in_bounds(self, base: Tuple[str, int, bool]) -> bool:
        name, offset, exact = base
        if not exact:
            return True  # dynamic index: in bounds by contract
        return 0 <= offset and offset + 4 <= 4 * self.global_words[name]

    def _frame_in_bounds(self, offset: int) -> bool:
        return 0 <= offset and offset + 4 <= self.frame_size

    # ------------------------------------------------------------------
    # Frame privacy
    # ------------------------------------------------------------------

    def _cell_holds_source_data(self, addr: Tuple, depth: int) -> bool:
        """The cell at symbolic *addr* holds a source-level value —
        never a compiler-materialized frame address (e.g. a spill of an
        address register)."""
        if depth <= 0:
            return False
        linear = _linearize(addr)
        offset = self._frame_exact(linear)
        if offset is not None:
            # A private scalar slot holds the source variable's value.
            # Any other exact frame offset may be a spill slot.
            return offset in self.frame_private
        coeffs = self._coeffs(linear)
        fp_coeff = coeffs.pop(_FP_ATOM, 0)
        if fp_coeff == 1:
            # fp plus runtime terms: a frame *array* element (spill
            # code uses exact offsets only) — holds source data.
            return True
        if fp_coeff:
            return False
        # No frame base: sound when the address itself is source-built
        # (then, being dereferenced, it lands in a source object, and
        # source objects hold source data).
        return self._atoms_are_source_values(coeffs, depth)

    def _atoms_are_source_values(self, coeffs: Dict[Tuple, int], depth: int) -> bool:
        for atom in coeffs:
            if atom[0] == "sym":
                continue  # a global address half
            if atom[0] == "load" and self._cell_holds_source_data(
                atom[2], depth - 1
            ):
                continue
            # "reg" (live-in value), "call" (call-preserved register)
            # and "op" atoms may all carry a frame address planted by
            # compiler-generated code: no claim.
            return False
        return True

    def _avoids_private_slots(self, linear: Tuple) -> bool:
        """The address provably never lands on a frame-private slot."""
        coeffs = self._coeffs(linear)
        fp_coeff = coeffs.pop(_FP_ATOM, 0)
        if fp_coeff == 1 and coeffs:
            # A dynamically indexed frame access stays inside its array
            # (in bounds by contract); arrays are never private slots.
            return True
        if fp_coeff:
            return False  # exact frame addresses are compared directly
        # Source-built fp-free address: dereferenced, it must hit a
        # source-visible object, and no source pointer to a private
        # slot exists.  (A pure constant address is UB to dereference,
        # so the claim holds vacuously under the contract.)
        return self._atoms_are_source_values(coeffs, _MAX_DEPTH)

    # ------------------------------------------------------------------

    def distinct(self, a: Tuple, b: Tuple) -> bool:
        """True only when symbolic addresses *a*, *b* provably refer to
        different memory cells.  Arguments are prover value tuples."""
        la = _linearize(a)
        lb = _linearize(b)
        frame_a = self._frame_exact(la)
        frame_b = self._frame_exact(lb)
        glob_a = self._global_base(la)
        glob_b = self._global_base(lb)
        # Region disjointness: frame vs data segment, global vs global.
        if frame_a is not None and glob_b is not None:
            return self._frame_in_bounds(frame_a) and self._global_in_bounds(glob_b)
        if glob_a is not None and frame_b is not None:
            return self._global_in_bounds(glob_a) and self._frame_in_bounds(frame_b)
        if glob_a is not None and glob_b is not None and glob_a[0] != glob_b[0]:
            return self._global_in_bounds(glob_a) and self._global_in_bounds(glob_b)
        # Frame privacy.
        if frame_a is not None and frame_a in self.frame_private:
            return self._avoids_private_slots(lb)
        if frame_b is not None and frame_b in self.frame_private:
            return self._avoids_private_slots(la)
        return False


def _linearize(value: Tuple) -> Tuple[Dict[Tuple, int], int]:
    """Mirror of the prover's linear view (kept import-cycle-free)."""
    if value[0] == "const":
        return {}, value[1]
    if value[0] == "lin":
        return dict(value[1]), value[2]
    return {value: 1}, 0


def oracle_for(func, program: Optional[Program] = None) -> AliasOracle:
    """Build the oracle for one enumerated function."""
    return AliasOracle(
        program=program,
        frame_size=func.frame_size,
        mem_facts=getattr(func, "mem_facts", None),
    )
