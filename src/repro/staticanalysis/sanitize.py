"""IR sanitizer: dataflow-powered legality checks with diagnostic codes.

Every check produces a :class:`Finding` with a stable code so tests,
quarantine records and the lint report can key on *what* went wrong,
not on message phrasing:

========  =========================================================
code      meaning
========  =========================================================
CFG001    function has no blocks
CFG002    duplicate block label within one function
CFG003    control transfer not at the end of its block
CFG004    branch to a label that does not exist
CFG005    last block falls off the end of the function
CFG006    no Return is reachable from the entry block
CFG007    a reachable block cannot reach any function exit
CFG008    branch to a label defined in another function's namespace
DFA001    register may be used before any definition reaches it
DFA002    conditional branch may execute with the condition code unset
MACH001   instruction shape is illegal for the target machine
MACH002   immediate operand exceeds the target's width limits
MACH003   hardware register outside the register file
MACH004   pseudo register present after register assignment
MACH005   pseudo register index was never allocated
FRAME001  frame slot extends outside the frame
FRAME002  frame slots overlap
FRAME003  frame reference with a known offset is out of bounds
CC001     dangling registers live into the entry block
CC002     return-value register may be uninitialized at a return
CC003     call to a function the program does not define
CC004     call argument count disagrees with the callee's parameters
MEM001    load from a compile-time-constant address (wild load)
MEM002    store to a compile-time-constant address (wild store)
MEM003    access at an address that is provably misaligned
MEM004    global access with a known offset outside the object
========  =========================================================

The sanitizer runs in two modes.  **fast** covers everything the
legacy ``ir/validate.py`` battery did (structure, machine legality,
register discipline, frame layout, entry liveness) plus the two checks
it historically missed — duplicate labels and cross-function branch
targets.  **full** adds the definedness dataflow (DFA001/DFA002,
CC002), frame-reference bounds (FRAME003) and the memory-access
checks (MEM001-MEM004, see :mod:`.memcheck`).  Structural findings
short-circuit: dataflow over a malformed CFG would be meaningless.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.framerefs import (
    _OTHER,
    _eval_abstract,
    _meet,
    _mem_exprs,
    _transfer as _frame_transfer,
)
from repro.analysis.cache import cfg_of, liveness_of
from repro.analysis.reaching import entry_defined_for, uninitialized_uses
from repro.ir.cfg import CFG, build_cfg
from repro.ir.function import Function, Program
from repro.ir.instructions import Call, CondBranch, Jump, Return
from repro.ir.operands import Reg
from repro.machine.target import DEFAULT_TARGET, NUM_HW_REGS, RV, Target

#: sanitizer modes, in increasing strength/cost order
FAST = "fast"
FULL = "full"
MODES = (FAST, FULL)

#: a Target with effectively unbounded immediates: an instruction that
#: is illegal for the real target but legal here has a pure *width*
#: problem (MACH002) rather than a shape problem (MACH001)
_WIDE_TARGET = Target(
    alu_imm_limit=1 << 60, mem_offset_limit=1 << 60, cmp_imm_limit=1 << 60
)


class Finding:
    """One sanitizer diagnostic: code + location + human detail."""

    __slots__ = ("code", "function", "where", "detail")

    def __init__(self, code: str, function: str, where: str, detail: str):
        self.code = code
        self.function = function
        self.where = where
        self.detail = detail

    def __str__(self) -> str:
        return f"{self.code} {self.function}[{self.where}]: {self.detail}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self!s})"

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "function": self.function,
            "where": self.where,
            "detail": self.detail,
        }


def _program_labels(program: Program) -> Dict[str, str]:
    """Map every block label in *program* to its owning function."""
    owners: Dict[str, str] = {}
    for name, func in program.functions.items():
        for block in func.blocks:
            owners.setdefault(block.label, name)
    return owners


def structural_findings(
    func: Function, program: Optional[Program] = None
) -> List[Finding]:
    """CFG well-formedness: the checks that must pass before any
    dataflow over the function makes sense."""
    name = func.name
    if not func.blocks:
        return [Finding("CFG001", name, "-", "function has no blocks")]
    findings: List[Finding] = []
    seen: Dict[str, bool] = {}
    for block in func.blocks:
        if block.label in seen:
            findings.append(
                Finding(
                    "CFG002",
                    name,
                    block.label,
                    f"duplicate block labels: {block.label!r}",
                )
            )
        seen[block.label] = True
    labels = set(seen)
    owners = _program_labels(program) if program is not None else {}
    for block in func.blocks:
        for index, inst in enumerate(block.insts):
            if inst.is_transfer and index != len(block.insts) - 1:
                findings.append(
                    Finding(
                        "CFG003",
                        name,
                        block.label,
                        f"transfer not at block end (instruction {index})",
                    )
                )
            if isinstance(inst, (Jump, CondBranch)) and inst.target not in labels:
                owner = owners.get(inst.target)
                if owner is not None and owner != name:
                    findings.append(
                        Finding(
                            "CFG008",
                            name,
                            block.label,
                            f"branch to label {inst.target} defined in "
                            f"function {owner!r}",
                        )
                    )
                else:
                    findings.append(
                        Finding(
                            "CFG004",
                            name,
                            block.label,
                            f"branch to unknown label {inst.target}",
                        )
                    )
    last = func.blocks[-1]
    terminator = last.terminator()
    if terminator is None or not terminator.is_transfer:
        findings.append(
            Finding(
                "CFG005", name, last.label, "last block falls off the function"
            )
        )
    if findings:
        return findings

    # Structure is sound; reachability checks need the CFG.
    cfg = cfg_of(func)
    entry = func.entry.label
    reachable = cfg.reachable(entry)
    exits = {
        block.label
        for block in func.blocks
        if isinstance(block.terminator(), Return) and block.label in reachable
    }
    if not exits:
        findings.append(
            Finding(
                "CFG006", name, entry, "no Return is reachable from the entry block"
            )
        )
        return findings
    # Backward reachability from the exits: a reachable block outside
    # this set is an inescapable loop.
    can_exit = set(exits)
    stack = list(exits)
    while stack:
        label = stack.pop()
        for pred in cfg.preds.get(label, ()):
            if pred not in can_exit:
                can_exit.add(pred)
                stack.append(pred)
    for label in cfg.order:
        if label in reachable and label not in can_exit:
            findings.append(
                Finding(
                    "CFG007", name, label, "block cannot reach any function exit"
                )
            )
    return findings


def machine_findings(func: Function, target: Target) -> List[Finding]:
    """Target legality, operand widths and register discipline."""
    findings: List[Finding] = []
    name = func.name
    for block in func.blocks:
        for inst in block.insts:
            if not target.is_legal(inst):
                if _WIDE_TARGET.is_legal(inst):
                    findings.append(
                        Finding(
                            "MACH002",
                            name,
                            block.label,
                            f"immediate operand exceeds the target's width "
                            f"limits: {inst}",
                        )
                    )
                else:
                    findings.append(
                        Finding(
                            "MACH001",
                            name,
                            block.label,
                            f"illegal instruction for the target: {inst}",
                        )
                    )
            for reg in inst.defs() | inst.uses():
                findings.extend(_register_findings(func, block.label, reg))
    return findings


def register_discipline_findings(func: Function) -> List[Finding]:
    """The register-discipline subset of :func:`machine_findings`,
    usable without a target (legacy ``check_ir(func)`` callers)."""
    findings: List[Finding] = []
    for block in func.blocks:
        for inst in block.insts:
            for reg in inst.defs() | inst.uses():
                findings.extend(_register_findings(func, block.label, reg))
    return findings


def _register_findings(func: Function, where: str, reg: Reg) -> List[Finding]:
    if reg.pseudo:
        if func.reg_assigned:
            return [
                Finding(
                    "MACH004",
                    func.name,
                    where,
                    f"pseudo register {reg} present after register assignment",
                )
            ]
        if reg.index >= func.next_pseudo:
            return [
                Finding(
                    "MACH005",
                    func.name,
                    where,
                    f"pseudo register {reg} was never allocated",
                )
            ]
    elif not 0 <= reg.index < NUM_HW_REGS:
        return [
            Finding(
                "MACH003",
                func.name,
                where,
                f"hardware register {reg} outside the register file "
                f"(0..{NUM_HW_REGS - 1})",
            )
        ]
    return []


def frame_layout_findings(func: Function) -> List[Finding]:
    """Slot bounds and overlaps in the declared frame layout."""
    findings: List[Finding] = []
    slots = sorted(func.frame.values(), key=lambda slot: slot.offset)
    for slot in slots:
        if slot.offset < 0 or slot.offset + 4 * slot.words > func.frame_size:
            findings.append(
                Finding(
                    "FRAME001",
                    func.name,
                    slot.name,
                    f"slot {slot.name!r} at offset {slot.offset} "
                    f"({slot.words} words) lies outside the frame "
                    f"of {func.frame_size} bytes",
                )
            )
    for first, second in zip(slots, slots[1:]):
        if first.offset + 4 * first.words > second.offset:
            findings.append(
                Finding(
                    "FRAME002",
                    func.name,
                    second.name,
                    f"slots {first.name!r} and {second.name!r} overlap",
                )
            )
    return findings


def dangling_entry_findings(func: Function) -> List[Finding]:
    """CC001: registers live into entry beyond the calling convention."""
    liveness = liveness_of(func)
    entry = func.entry.label
    dangling = liveness.live_in.get(entry, frozenset()) - entry_defined_for(func)
    if not dangling:
        return []
    regs = ", ".join(str(reg) for reg in sorted(dangling, key=_reg_key))
    return [
        Finding(
            "CC001",
            func.name,
            entry,
            f"dangling registers live into the entry block: {regs}",
        )
    ]


def _reg_key(reg: Reg):
    return (reg.pseudo, reg.index)


def declared_arity(func: Function) -> int:
    """Parameter count of *func*.

    The frontend does not populate ``Function.params``; each parameter
    instead owns an ``is_param`` frame slot (its home after the entry
    spill), and no phase ever removes frame slots — so the slot count
    is the declared arity wherever it exceeds the ``params`` list.
    """
    slots = sum(1 for slot in func.frame.values() if slot.is_param)
    return max(len(func.params), slots)


def call_findings(func: Function, program: Program) -> List[Finding]:
    """CC003/CC004: calls resolved against the whole program."""
    findings: List[Finding] = []
    for block in func.blocks:
        for inst in block.insts:
            if not isinstance(inst, Call):
                continue
            callee = program.functions.get(inst.name)
            if callee is None:
                findings.append(
                    Finding(
                        "CC003",
                        func.name,
                        block.label,
                        f"call to unknown function {inst.name!r}",
                    )
                )
            elif declared_arity(callee) != inst.nargs:
                findings.append(
                    Finding(
                        "CC004",
                        func.name,
                        block.label,
                        f"call passes {inst.nargs} arguments but "
                        f"{inst.name!r} declares "
                        f"{declared_arity(callee)} parameters",
                    )
                )
    return findings


def definedness_findings(func: Function, cfg: Optional[CFG] = None) -> List[Finding]:
    """DFA001/DFA002/CC002 via the must-defined dataflow."""
    findings: List[Finding] = []
    for label, index, inst, regs in uninitialized_uses(func, cfg):
        where = f"{label}#{index}"
        if regs is None:
            findings.append(
                Finding(
                    "DFA002",
                    func.name,
                    where,
                    f"conditional branch may execute with the condition "
                    f"code unset: {inst}",
                )
            )
        elif isinstance(inst, Return) and regs == frozenset({RV}):
            findings.append(
                Finding(
                    "CC002",
                    func.name,
                    where,
                    f"return-value register {RV} may be uninitialized "
                    "at this return",
                )
            )
        else:
            regs_text = ", ".join(str(reg) for reg in sorted(regs, key=_reg_key))
            findings.append(
                Finding(
                    "DFA001",
                    func.name,
                    where,
                    f"registers may be used before definition: "
                    f"{regs_text} in {inst}",
                )
            )
    return findings


def frame_bounds_findings(func: Function, cfg: Optional[CFG] = None) -> List[Finding]:
    """FRAME003: frame references that resolve to a known fp offset
    outside ``[0, frame_size)``.

    Reuses the abstract fp-offset dataflow from
    :mod:`repro.analysis.framerefs` but, unlike ``compute_frame_refs``
    (which only classifies accesses to tracked scalar slots), inspects
    **every** integer-resolved offset.
    """
    if cfg is None:
        cfg = build_cfg(func)
    entry = func.entry.label
    in_states: Dict[str, Optional[Dict[Reg, object]]] = {
        block.label: None for block in func.blocks
    }
    in_states[entry] = {}
    order = cfg.reverse_postorder(entry)
    changed = True
    while changed:
        changed = False
        for label in order:
            state = in_states[label]
            if state is None:
                continue
            current = dict(state)
            for inst in func.block(label).insts:
                _frame_transfer(inst, current)
            for succ in cfg.succs.get(label, ()):
                existing = in_states[succ]
                if existing is None:
                    in_states[succ] = dict(current)
                    changed = True
                    continue
                merged = {
                    reg: _meet(existing.get(reg, _OTHER), current.get(reg, _OTHER))
                    for reg in set(existing) | set(current)
                }
                if merged != existing:
                    in_states[succ] = merged
                    changed = True
    findings: List[Finding] = []
    for label in order:
        state = in_states[label]
        current = dict(state) if state is not None else {}
        for index, inst in enumerate(func.block(label).insts):
            for mem, is_write in _mem_exprs(inst):
                value = _eval_abstract(mem.addr, current)
                if isinstance(value, int) and not (
                    0 <= value and value + 4 <= func.frame_size
                ):
                    access = "write" if is_write else "read"
                    findings.append(
                        Finding(
                            "FRAME003",
                            func.name,
                            f"{label}#{index}",
                            f"frame {access} at fp+{value} is outside the "
                            f"frame of {func.frame_size} bytes",
                        )
                    )
            _frame_transfer(inst, current)
    return findings


def sanitize_function(
    func: Function,
    target: Optional[Target] = None,
    program: Optional[Program] = None,
    mode: str = FULL,
) -> List[Finding]:
    """Run the sanitizer battery over one function.

    Structural findings short-circuit everything else; with a clean
    structure the remaining checks all run and their findings
    accumulate.  *program* (optional) enables the cross-function checks
    (CFG008, CC003, CC004).
    """
    if mode not in MODES:
        raise ValueError(f"unknown sanitizer mode {mode!r} (expected fast|full)")
    if target is None:
        target = DEFAULT_TARGET
    findings = structural_findings(func, program)
    if findings:
        return findings
    findings.extend(machine_findings(func, target))
    findings.extend(frame_layout_findings(func))
    findings.extend(dangling_entry_findings(func))
    if program is not None:
        findings.extend(call_findings(func, program))
    if mode == FULL:
        from repro.staticanalysis.memcheck import memory_findings

        cfg = cfg_of(func)
        findings.extend(definedness_findings(func, cfg))
        findings.extend(frame_bounds_findings(func, cfg))
        findings.extend(memory_findings(func, cfg, program))
    return findings


def sanitize_program(
    program: Program,
    target: Optional[Target] = None,
    mode: str = FULL,
) -> List[Finding]:
    """Sanitize every function of *program*, in definition order."""
    findings: List[Finding] = []
    for func in program.functions.values():
        findings.extend(sanitize_function(func, target, program, mode))
    return findings
