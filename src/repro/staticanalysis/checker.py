"""EdgeChecker: the guard-facing bundle of all three static layers.

One instance rides inside a :class:`GuardedPhaseRunner` for a whole
enumeration.  After every *active* phase application the guard hands
it the pre-phase snapshot and the transformed function;
:meth:`check_edge` runs, in order:

1. the IR sanitizer over the transformed function (quarantine kind
   ``sanitizer``);
2. the phase contract across the edge (kind ``contract``);
3. in ``full`` mode, the translation validator — a ``refuted`` verdict
   quarantines under the existing ``semantics`` kind, the same bucket
   the VM difftester uses.

The checker is purely observational on healthy code: it never mutates
the function, so enumerated DAGs are bit-identical with it on or off.
Per-check counters accumulate on the instance and surface through the
``sanitize_stats`` observability event.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.function import Function, Program
from repro.machine.target import DEFAULT_TARGET, Target
from repro.staticanalysis import contracts as contracts_mod
from repro.staticanalysis import sanitize as sanitize_mod
from repro.staticanalysis.transval import (
    REFUTED,
    TranslationValidator,
)

_DETAIL_FINDINGS = 3  # findings quoted in a quarantine detail string


def _summary(findings) -> str:
    shown = "; ".join(str(finding) for finding in findings[:_DETAIL_FINDINGS])
    extra = len(findings) - _DETAIL_FINDINGS
    if extra > 0:
        shown += f" (+{extra} more)"
    return shown


class EdgeChecker:
    """Sanitizer + contract checker + translation validator for edges."""

    def __init__(
        self,
        mode: str = sanitize_mod.FAST,
        target: Optional[Target] = None,
        program: Optional[Program] = None,
        entry: Optional[str] = None,
    ):
        if mode not in sanitize_mod.MODES:
            raise ValueError(
                f"unknown sanitizer mode {mode!r} (expected fast|full)"
            )
        self.mode = mode
        self.target = target or DEFAULT_TARGET
        self.program = program
        self.transval: Optional[TranslationValidator] = None
        if mode == sanitize_mod.FULL:
            self.transval = TranslationValidator(program, entry)
        #: last full-mode verdict status, for callers that label edges
        self.last_verdict: Optional[str] = None
        self.counters: Dict[str, int] = {
            "edges": 0,
            "findings": 0,
            "contract_violations": 0,
            "proved": 0,
            "tested": 0,
            "unverified": 0,
            "refuted": 0,
        }

    # ------------------------------------------------------------------

    def check_edge(
        self, before: Function, after: Function, phase
    ) -> Optional[Tuple[str, str]]:
        """Verify one applied edge; return ``(quarantine_kind,
        detail)`` on failure, None when the edge is clean."""
        self.counters["edges"] += 1
        self.last_verdict = None
        findings = sanitize_mod.sanitize_function(
            after, self.target, self.program, self.mode
        )
        if findings:
            self.counters["findings"] += len(findings)
            return "sanitizer", _summary(findings)
        violations = contracts_mod.check_contract(phase.id, before, after)
        if violations:
            self.counters["contract_violations"] += len(violations)
            return "contract", _summary(violations)
        if self.transval is not None:
            verdict = self.transval.classify(before, after)
            self.counters[verdict.status] += 1
            self.last_verdict = verdict.status
            if verdict.status == REFUTED:
                return "semantics", f"translation validator: {verdict.detail}"
        return None

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the ``sanitize_stats`` event."""
        return dict(self.counters)
