"""Semantic canonicalization: instance merging beyond the CRC fingerprint.

The enumerator dedupes instances *syntactically* (register/label remap +
CRC-32, section 4.2 of the paper).  This module lifts the translation
validator's symbolic machinery (:mod:`repro.staticanalysis.transval`)
from edge checking to **instance merging**: two instances whose
canonical symbolic summaries coincide are candidates for collapsing
into one DAG node, shrinking every downstream workload at once (see
``docs/COLLAPSE.md``).

The canonical summary of a function is built per reachable basic block
from the symbolic evaluator's observables — live-out register values,
the memory write log, the call sequence, the branch condition, and the
returned value — under three sound normalizations on top of transval's
own constant folding:

- **commutative operand sorting** and **linear-form canonicalization**
  (inherited from the symbolic evaluator: ``a + b`` and ``b + a``
  summarize identically, as do ``(x * 4)`` and ``x << 2``);
- **dead-store normalization**: a store that is provably overwritten
  before any possible observation (no call, no load token, in the
  window up to an identical-address store) is dropped from the block's
  memory log, and the log's load/call positions are renumbered.

The summary digest is an *index*, never a proof.  Colliding instances
are only merged after :func:`prove_semantic_equivalent` (a block-level
simulation identical to transval's ``_prove`` but comparing normalized
observables) or, failing that, seeded VM co-execution agrees.  An
unproven or refuted collision **always stays split** — the enumerator
never merges on hash alone.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.analysis.cache import cfg_of, liveness_of
from repro.core import checkpoint as ckpt
from repro.ir.function import Function, Program
from repro.ir.operands import COMMUTATIVE_OPS
from repro.staticanalysis.transval import (
    REFUTED,
    TESTED,
    TranslationValidator,
    _frame_shape,
    _make_linear,
    _NotProvable,
    _SymState,
)

__all__ = [
    "SemanticCollapser",
    "canonical_summary",
    "prove_semantic_equivalent",
    "semantic_key",
]


# ----------------------------------------------------------------------
# Dead-store normalization of one block's observables
# ----------------------------------------------------------------------
#
# A ("load", k, addr) token means "whatever *addr* holds after the
# first k memory events of this block"; a call's recorded position is
# the index of its own event in the memory log.  Dropping the store at
# log index j is sound only when a later store writes the *identical*
# symbolic address with no call event and no load token observing the
# window (j, j'] — then no reader can distinguish the logs, and every
# position > j shifts down by one.


def _collect_load_positions(value, out: set) -> None:
    if not isinstance(value, tuple):
        return
    if len(value) == 3 and value[0] == "load" and isinstance(value[1], int):
        out.add(value[1])
        _collect_load_positions(value[2], out)
        return
    for part in value:
        _collect_load_positions(part, out)


def _shift_positions(value, dropped: int):
    """Renumber load tokens after dropping memory-log index *dropped*,
    re-canonicalizing the sorted forms the renumbering may perturb."""
    if not isinstance(value, tuple):
        return value
    tag = value[0]
    if tag == "load" and len(value) == 3 and isinstance(value[1], int):
        position = value[1]
        if position > dropped:
            position -= 1
        return ("load", position, _shift_positions(value[2], dropped))
    if tag == "lin":
        terms: Dict[Tuple, int] = {}
        for atom, coeff in value[1]:
            atom = _shift_positions(atom, dropped)
            terms[atom] = terms.get(atom, 0) + coeff
        return _make_linear(terms, value[2])
    if tag == "op":
        operands = tuple(_shift_positions(part, dropped) for part in value[2:])
        if len(operands) == 2 and value[1] in COMMUTATIVE_OPS:
            operands = tuple(sorted(operands, key=repr))
        return ("op", value[1]) + operands
    return tuple(_shift_positions(part, dropped) for part in value)


def _find_dead_store(mem: List[Tuple], loads: set) -> Optional[int]:
    for j, event in enumerate(mem):
        if event[0] != "store":
            continue
        for j2 in range(j + 1, len(mem)):
            later = mem[j2]
            if later[0] == "call":
                break  # the call may read the stored value
            if later[1] != event[1]:
                continue  # other cells do not revive this store
            if any(j < k <= j2 for k in loads):
                break  # a load token may observe the window
            return j
    return None


def _normalize_observables(obs) -> Tuple:
    """Canonical, hashable form of one block's observables."""
    regs, mem, calls, branch, returned = obs
    regs = dict(regs)
    mem = list(mem)
    calls = list(calls)
    while True:
        loads: set = set()
        _collect_load_positions(
            (tuple(regs.values()), tuple(mem), tuple(calls), branch, returned),
            loads,
        )
        dropped = _find_dead_store(mem, loads)
        if dropped is None:
            break
        del mem[dropped]
        regs = {
            key: _shift_positions(value, dropped)
            for key, value in regs.items()
        }
        mem = [_shift_positions(event, dropped) for event in mem]
        calls = [
            (
                name,
                nargs,
                tuple(_shift_positions(arg, dropped) for arg in args),
                position - 1 if position > dropped else position,
            )
            for (name, nargs, args, position) in calls
        ]
        if branch is not None:
            branch = (branch[0], _shift_positions(branch[1], dropped))
        if returned is not None:
            returned = _shift_positions(returned, dropped)
    return (
        tuple(sorted(regs.items(), key=lambda item: item[0])),
        tuple(mem),
        tuple(calls),
        branch,
        returned,
    )


# ----------------------------------------------------------------------
# Canonical function summaries and the semantic key
# ----------------------------------------------------------------------


def _reachable_order(func: Function) -> List[str]:
    """Deterministic preorder over reachable blocks, following the
    CFG's successor order ([target, fallthrough])."""
    cfg = cfg_of(func)
    order: List[str] = []
    seen = set()
    stack = [func.entry.label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        order.append(label)
        stack.extend(reversed(cfg.succs.get(label, [])))
    return order


def canonical_summary(func: Function) -> Tuple:
    """The function's canonical symbolic summary (raises
    :class:`_NotProvable` on unmodelled constructs).

    Blocks are visited in a deterministic reachable order and labeled
    by visit index; unreachable blocks carry no semantics and are
    excluded, so instances differing only in dead blocks summarize
    identically.  The header pins everything that shapes which phases
    are attemptable, so merging never changes a node's phase legality.
    """
    cfg = cfg_of(func)
    live = liveness_of(func)
    order = _reachable_order(func)
    labels = {label: index for index, label in enumerate(order)}
    blocks = []
    for label in order:
        block = func.block(label)
        state = _SymState(func.returns_value)
        for inst in block.insts:
            state.execute(inst)
        observables = _normalize_observables(
            state.observables(
                live.live_out.get(label, frozenset()), block.terminator()
            )
        )
        succs = tuple(labels[succ] for succ in cfg.succs.get(label, []))
        blocks.append((labels[label], succs) + observables)
    return (
        func.returns_value,
        len(func.params),
        _frame_shape(func),
        bool(func.reg_assigned),
        bool(func.sel_applied),
        bool(func.alloc_applied),
        tuple(sorted(func.unrolled)),
        tuple(blocks),
    )


def semantic_key(func: Function) -> Optional[str]:
    """Content digest of the canonical summary, or None when the
    instance has unmodelled constructs (such instances never collapse)."""
    try:
        summary = canonical_summary(func)
    except _NotProvable:
        return None
    except (KeyboardInterrupt, SystemExit, MemoryError):
        raise
    except Exception:  # canonicalizer bug: never block enumeration
        return None
    return hashlib.sha256(repr(summary).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Proof: the never-merge-unproven invariant's first line
# ----------------------------------------------------------------------


def prove_semantic_equivalent(before: Function, after: Function) -> bool:
    """Block-level simulation proof under canonical observables.

    Same skeleton as transval's ``_prove`` — a simulation from the
    entry pair requiring matching successor counts and branch senses —
    but block effects are compared after dead-store normalization, so
    instances that differ by provably-dead stores (or by anything the
    symbolic evaluator already canonicalizes) still prove equal.
    False means *unknown*, never *different*.
    """
    try:
        return _prove_canonical(before, after)
    except _NotProvable:
        return False
    except (KeyboardInterrupt, SystemExit, MemoryError):
        raise
    except Exception:  # prover bug: fall through to co-execution
        return False


def _prove_canonical(before: Function, after: Function) -> bool:
    if before.returns_value != after.returns_value:
        return False
    if len(before.params) != len(after.params):
        return False
    if _frame_shape(before) != _frame_shape(after):
        return False
    # Phase legality must survive the merge: a node stands for its
    # whole class, including which phases are attemptable on it.
    if (
        bool(before.reg_assigned) != bool(after.reg_assigned)
        or bool(before.sel_applied) != bool(after.sel_applied)
        or bool(before.alloc_applied) != bool(after.alloc_applied)
        or set(before.unrolled) != set(after.unrolled)
    ):
        return False
    cfg_a = cfg_of(before)
    cfg_b = cfg_of(after)
    live_a = liveness_of(before)
    live_b = liveness_of(after)
    from repro.ir.instructions import CondBranch

    entry_pair = (before.entry.label, after.entry.label)
    mapping: Dict[str, str] = {entry_pair[0]: entry_pair[1]}
    queue = [entry_pair]
    visited = set()
    while queue:
        label_a, label_b = queue.pop()
        if (label_a, label_b) in visited:
            continue
        visited.add((label_a, label_b))
        block_a = before.block(label_a)
        block_b = after.block(label_b)
        term_a = block_a.terminator()
        term_b = block_b.terminator()
        succs_a = cfg_a.succs.get(label_a, [])
        succs_b = cfg_b.succs.get(label_b, [])
        if len(succs_a) != len(succs_b):
            return False
        if len(succs_a) == 2:
            if not isinstance(term_a, CondBranch) or not isinstance(
                term_b, CondBranch
            ):
                return False
            if term_a.relop != term_b.relop:
                return False
        state_a = _SymState(before.returns_value)
        state_b = _SymState(after.returns_value)
        for inst in block_a.insts:
            state_a.execute(inst)
        for inst in block_b.insts:
            state_b.execute(inst)
        live_out = live_a.live_out.get(label_a, frozenset()) | live_b.live_out.get(
            label_b, frozenset()
        )
        if _normalize_observables(
            state_a.observables(live_out, term_a)
        ) != _normalize_observables(state_b.observables(live_out, term_b)):
            return False
        for succ_a, succ_b in zip(succs_a, succs_b):
            mapped = mapping.get(succ_a)
            if mapped is None:
                mapping[succ_a] = succ_b
            elif mapped != succ_b:
                return False
            queue.append((succ_a, succ_b))
    return True


# ----------------------------------------------------------------------
# The collapser: digest index + proved-merge protocol
# ----------------------------------------------------------------------


def _reaches(dag, ancestor_id: int, node_id: int) -> bool:
    """True when *ancestor_id* lies on some root path of *node_id*
    (merging into it would close a cycle in the active-edge graph)."""
    seen = set()
    stack = [node_id]
    while stack:
        current = stack.pop()
        if current == ancestor_id:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(parent for parent, _phase in dag.nodes[current].parents)
    return False


class SemanticCollapser:
    """Shared semantic-merge state of one function's enumeration.

    Both the serial enumerator and the parallel coordinator's replay
    merge drive the same instance through the same decision procedure,
    in the same serial order, so semantic DAGs stay bit-identical at
    any worker count.  Representatives are kept per semantic class —
    lazily materialized from their serialized form when a collision
    must be proved — and the whole state round-trips through
    checkpoints (:meth:`state_dict` / :meth:`restore`).
    """

    #: materialized representative cache bound (collisions cluster on
    #: few classes; re-parsing every rep on every collision would not)
    _REP_CACHE_LIMIT = 64

    def __init__(
        self,
        program: Optional[Program] = None,
        entry: Optional[str] = None,
    ):
        # No alias oracle here: collapse verdicts must stay purely
        # structural/symbolic, independent of source-level contracts.
        self.validator = TranslationValidator(
            program=program, entry=entry, alias_oracle=False
        )
        #: semantic digest -> representative node id (first wins)
        self.index: Dict[str, int] = {}
        #: rep node id -> Function or serialized function dict
        self.reps: Dict[int, object] = {}
        self._rep_cache: Dict[int, Function] = {}
        self.stats: Dict[str, int] = {
            "candidates": 0,
            "merged_proved": 0,
            "merged_tested": 0,
            "split_unproven": 0,
            "split_cycle": 0,
            "split_size": 0,
            "refuted": 0,
            "uncanonical": 0,
        }

    # ------------------------------------------------------------------

    def digest_of(self, func: Function) -> Optional[str]:
        digest = semantic_key(func)
        if digest is None:
            self.stats["uncanonical"] += 1
        return digest

    def merge_target(self, dag, node, candidate: Function):
        """Decide where *candidate* (a new instance discovered while
        expanding *node*) belongs.

        Returns ``(digest, rep_node)``: ``rep_node`` is the existing
        node to merge into (equivalence proved or co-execution-tested),
        or None when the instance must become its own node — no
        collision, an unproven/refuted collision, or a collision whose
        merge would close a cycle.
        """
        digest = self.digest_of(candidate)
        if digest is None:
            return None, None
        rep_id = self.index.get(digest)
        if rep_id is None:
            return digest, None
        self.stats["candidates"] += 1
        if rep_id == node.node_id or _reaches(dag, rep_id, node.node_id):
            # The representative is on the candidate's own root path;
            # an edge into it would make the space cyclic.  Stay split.
            self.stats["split_cycle"] += 1
            return digest, None
        rep_func = self.rep_function(rep_id)
        if rep_func is None:
            self.stats["split_unproven"] += 1
            return digest, None
        if rep_func.num_instructions() != candidate.num_instructions():
            # Canonically equal but differently sized (dead stores are
            # normalized away): merging would make the representative
            # stand in for an instance of another code size, corrupting
            # the Table 3 min/max leaf statistics.  Stay split.
            self.stats["split_size"] += 1
            return digest, None
        if prove_semantic_equivalent(rep_func, candidate):
            self.stats["merged_proved"] += 1
            return digest, dag.nodes[rep_id]
        verdict = self.validator._co_execute(rep_func, candidate)
        if verdict.status == TESTED:
            self.stats["merged_tested"] += 1
            return digest, dag.nodes[rep_id]
        if verdict.status == REFUTED:
            # A digest collision between provably different codes: the
            # hash lied, the proof discipline caught it, the instances
            # stay split.  Nonzero counts here are a canonicalizer bug.
            self.stats["refuted"] += 1
        else:
            self.stats["split_unproven"] += 1
        return digest, None

    def register(self, digest: Optional[str], node_id: int, func) -> bool:
        """Claim *digest* for a newly created node; True when claimed.

        First writer wins: a split collision keeps the original
        representative, so later candidates keep proving against it.
        *func* may be a Function or a serialized function dict.
        """
        if digest is None:
            return False
        if self.index.setdefault(digest, node_id) != node_id:
            return False
        self.reps[node_id] = func
        return True

    def forget(self, digest: str, node_id: int) -> None:
        """Undo a :meth:`register` (enumerator mid-node rollback)."""
        if self.index.get(digest) == node_id:
            del self.index[digest]
        self.reps.pop(node_id, None)
        self._rep_cache.pop(node_id, None)

    def rep_function(self, rep_id: int) -> Optional[Function]:
        rep = self.reps.get(rep_id)
        if rep is None:
            return None
        if isinstance(rep, Function):
            return rep
        cached = self._rep_cache.get(rep_id)
        if cached is not None:
            return cached
        func = ckpt.function_from_dict(rep)
        if len(self._rep_cache) >= self._REP_CACHE_LIMIT:
            self._rep_cache.clear()
        self._rep_cache[rep_id] = func
        return func

    # ------------------------------------------------------------------

    def merged(self) -> int:
        return self.stats["merged_proved"] + self.stats["merged_tested"]

    def stats_fields(self) -> Dict[str, int]:
        """The ``collapse_stats`` event payload (sans ``function``)."""
        fields = dict(self.stats)
        fields["merged"] = self.merged()
        fields["classes"] = len(self.index)
        return fields

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        reps = {}
        for node_id, rep in self.reps.items():
            if isinstance(rep, Function):
                rep = ckpt.function_to_dict(rep)
            reps[str(node_id)] = rep
        return {
            "index": dict(self.index),
            "reps": reps,
            "stats": dict(self.stats),
        }

    def restore(self, state: Dict[str, object]) -> None:
        self.index = {
            digest: int(node_id)
            for digest, node_id in state.get("index", {}).items()
        }
        self.reps = {
            int(node_id): rep for node_id, rep in state.get("reps", {}).items()
        }
        self._rep_cache.clear()
        stats = dict(self.stats)
        stats.update(state.get("stats", {}))
        self.stats = stats
