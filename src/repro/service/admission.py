"""Admission-control primitives: token buckets, quotas, circuit breaker.

Pure policy objects — no I/O, no asyncio, clocks injected — so every
load-shedding decision the server makes is unit-testable with a fake
clock, and the same classes can guard any future entry point.

The server composes them in admission order (cheapest first):

1. drain flag — a draining server sheds everything;
2. memory watermark — global backpressure;
3. per-tenant :class:`TokenBucket` — sustained request-rate limit;
4. per-tenant concurrency quota — in-flight cap;
5. queue-depth watermark — bounded admission queue;
6. per-work-key :class:`CircuitBreaker` — repeatedly failing work is
   quarantined so it cannot monopolize the worker slots.

Every rejection carries a ``retry_after`` hint that the server turns
into a ``Retry-After`` header and the bundled client obeys.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple


class TokenBucket:
    """Classic token bucket: *rate* tokens/second, burst capacity *burst*.

    ``take()`` answers ``(admitted, retry_after)`` — when the bucket is
    empty, ``retry_after`` is the exact time until one token exists, so
    a well-behaved client that honors it is admitted on its next try.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._stamp = clock()

    def take(self, amount: float = 1.0) -> Tuple[bool, float]:
        now = self.clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True, 0.0
        return False, (amount - self.tokens) / self.rate


class Tenant:
    """Per-tenant admission state: a bucket, a quota, and counters."""

    def __init__(self, rate: float, burst: float, concurrency: int, clock):
        self.bucket = TokenBucket(rate, burst, clock)
        self.concurrency = concurrency
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "in_flight": self.in_flight,
            "admitted": self.admitted,
            "shed": self.shed,
            "tokens": round(self.bucket.tokens, 2),
        }


class CircuitBreaker:
    """Per-key breaker: open after *threshold* consecutive failures.

    States per key: **closed** (normal), **open** (rejecting for
    *cooldown* seconds), **half-open** (one probe admitted after the
    cooldown; success closes, failure re-opens).  Keys with no failures
    carry no state at all.

    *on_transition*, when given, is called as ``("open", key,
    failures)``, ``("probe", key, failures)``, or ``("close", key,
    failures)`` — the server wires it to the event journal.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, int], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.on_transition = on_transition
        #: key -> {"failures", "opened_at" (None = closed), "probing"}
        self._state: Dict[str, Dict] = {}

    def _notify(self, what: str, key: str, failures: int) -> None:
        if self.on_transition is not None:
            self.on_transition(what, key, failures)

    def allow(self, key: str) -> Tuple[bool, float]:
        """Whether work under *key* may run; ``(False, retry_after)``
        while the breaker is open."""
        state = self._state.get(key)
        if state is None or state["opened_at"] is None:
            return True, 0.0
        remaining = self.cooldown - (self.clock() - state["opened_at"])
        if remaining > 0:
            return False, remaining
        if state["probing"]:
            # One probe at a time; concurrent identical requests keep
            # being shed until the probe resolves.
            return False, self.cooldown
        state["probing"] = True
        self._notify("probe", key, state["failures"])
        return True, 0.0

    def record_success(self, key: str) -> None:
        state = self._state.pop(key, None)
        if state is not None and state["opened_at"] is not None:
            self._notify("close", key, state["failures"])

    def record_failure(self, key: str) -> None:
        state = self._state.setdefault(
            key, {"failures": 0, "opened_at": None, "probing": False}
        )
        state["failures"] += 1
        was_open = state["opened_at"] is not None
        if state["failures"] >= self.threshold:
            # (Re)start the cooldown — a failed half-open probe extends
            # the quarantine rather than resetting the failure count.
            state["opened_at"] = self.clock()
            state["probing"] = False
            if not was_open:
                self._notify("open", key, state["failures"])

    def open_keys(self) -> List[str]:
        return sorted(
            key
            for key, state in self._state.items()
            if state["opened_at"] is not None
        )

    def failures(self, key: str) -> int:
        state = self._state.get(key)
        return 0 if state is None else state["failures"]
