"""The resilient enumeration server behind ``repro serve``.

A single-process asyncio front end speaking a minimal JSON-over-HTTP/1.1
protocol (hand-rolled on :func:`asyncio.start_server`; the toolchain is
stdlib-only by design).  Every admitted request runs in a fresh
:mod:`~repro.service.executor` subprocess; the server itself never
enumerates, so no request can wedge or crash it.

Resilience layers, in admission order (see docs/SERVICE.md):

- **load shedding** — a bounded admission queue; past the depth or the
  memory watermark, requests are shed with ``429``/``503`` and a
  ``Retry-After`` the bundled client honors;
- **tenant fairness** — per-tenant token buckets and concurrency
  quotas, so one noisy client degrades itself, not the service;
- **circuit breaker** — work that repeatedly crashes its executor is
  quarantined per work key (open → cooldown → half-open probe);
- **request coalescing** — identical concurrent requests share one
  execution and one store write;
- **deadlines** — a request deadline propagates into the enumeration's
  cooperative time budget; overruns get a structured ``504`` and leave
  a resumable checkpoint;
- **graceful drain** — SIGTERM/SIGINT stops admitting, SIGTERMs the
  in-flight executors (which checkpoint under their stable work keys),
  and a restarted server resumes the same work bit-identically.

Responses always carry ``X-Request-Id``; the same id threads through
the run dir's ``events.jsonl``, so ``repro report`` and one grep give
any response its full server-side history.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.observability.events import JOURNAL_NAME
from repro.observability.manifest import build_manifest
from repro.observability.tracer import Tracer
from repro.service import protocol
from repro.service.admission import CircuitBreaker, Tenant

#: marker file a started server writes into its run dir, so clients and
#: tests can discover the bound port (``port=0`` binds an ephemeral one)
SERVICE_FILE = "service.json"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: largest accepted request body
MAX_BODY = 2 * 1024 * 1024


class ServiceConfig:
    """Tunables of one server instance (see docs/SERVICE.md)."""

    def __init__(
        self,
        run_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 8,
        tenant_rate: float = 10.0,
        tenant_burst: float = 20.0,
        tenant_concurrency: int = 4,
        default_deadline: Optional[float] = None,
        max_deadline: float = 600.0,
        read_timeout: float = 10.0,
        executor_retries: int = 2,
        exec_grace: float = 5.0,
        drain_grace: float = 20.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        store_root: Optional[str] = None,
        memory_watermark_mb: Optional[float] = None,
        memory_gauge: Optional[Callable[[], float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.run_dir = run_dir
        self.host = host
        self.port = port
        #: concurrent executor subprocesses
        self.workers = workers
        #: admitted requests allowed to wait for a worker slot; beyond
        #: this the server sheds with 429 queue_full
        self.queue_depth = queue_depth
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.tenant_concurrency = tenant_concurrency
        #: deadline applied when the request names none (None = no limit)
        self.default_deadline = default_deadline
        #: hard ceiling on any requested deadline
        self.max_deadline = max_deadline
        #: seconds a client has to deliver its request bytes
        self.read_timeout = read_timeout
        #: executor crash retries per request (resume picks up the
        #: checkpoint, so retries never recompute finished levels)
        self.executor_retries = executor_retries
        #: seconds between SIGTERM and SIGKILL for an overrun executor
        self.exec_grace = exec_grace
        #: seconds a draining server waits for in-flight work
        self.drain_grace = drain_grace
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        #: SpaceStore directory shared by all requests (the
        #: cross-request cache); defaults to ``<run_dir>/store``
        self.store_root = (
            store_root
            if store_root is not None
            else os.path.join(run_dir, "store")
        )
        #: shed with 503 when resident memory exceeds this (None = off)
        self.memory_watermark_mb = memory_watermark_mb
        #: injectable for tests; defaults to the process RSS in MB
        self.memory_gauge = memory_gauge
        self.clock = clock


def _process_rss_mb() -> float:
    """Resident set size of this process in MB (Linux; 0.0 elsewhere)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    return 0.0


class _BadRequest(Exception):
    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail


async def _read_http(
    reader: asyncio.StreamReader, timeout: float
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request; the timeout covers every read, so a
    slow (or stalled) client cannot hold a connection open."""
    line = await asyncio.wait_for(reader.readline(), timeout)
    if not line:
        raise ConnectionResetError("client closed before sending a request")
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise _BadRequest(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _BadRequest(400, "bad Content-Length")
    if length < 0 or length > MAX_BODY:
        raise _BadRequest(413, f"body exceeds {MAX_BODY} bytes")
    body = b""
    if length:
        body = await asyncio.wait_for(reader.readexactly(length), timeout)
    return method, path, headers, body


def _encode_response(
    status: int,
    body: Dict[str, object],
    request_id: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> bytes:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    if request_id is not None:
        lines.append(f"X-Request-Id: {request_id}")
    if retry_after is not None:
        # Ceil to a whole second; zero would mean "retry immediately",
        # defeating the backpressure the header exists to apply.
        lines.append(f"Retry-After: {max(1, int(retry_after + 0.999))}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + payload


class EnumerationServer:
    """One long-lived service instance bound to one run dir."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        os.makedirs(config.run_dir, exist_ok=True)
        self.tracer = Tracer(
            run_dir=config.run_dir,
            manifest=build_manifest(
                tool="repro.serve",
                config={
                    "workers": config.workers,
                    "queue_depth": config.queue_depth,
                    "tenant_rate": config.tenant_rate,
                    "tenant_concurrency": config.tenant_concurrency,
                    "breaker_threshold": config.breaker_threshold,
                },
                argv=sys.argv[1:],
            ),
        )
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            clock=config.clock,
            on_transition=self._breaker_event,
        )
        self.tenants: Dict[str, Tenant] = {}
        #: work key -> future resolving to (status, body, retry_after);
        #: concurrent identical requests await the leader's future
        self._inflight: Dict[str, asyncio.Future] = {}
        #: request id -> running executor process (drain SIGTERMs these)
        self._procs: Dict[str, asyncio.subprocess.Process] = {}
        self._slots: Optional[asyncio.Semaphore] = None
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None
        self.draining = False
        self._handlers = 0
        self._waiting = 0
        self._next_id = 0
        self._started = config.clock()
        self.counters = {
            "admitted": 0,
            "coalesced": 0,
            "done": 0,
            "failed": 0,
            "interrupted": 0,
            "retried": 0,
            "shed": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def serve(self) -> None:
        """Bind, announce, and run until drained."""
        loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self.config.workers)
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError):
                signal.signal(
                    signum, lambda *_: loop.call_soon_threadsafe(self.request_drain)
                )
        self.tracer.emit("run_start", tool="repro.serve")
        self.tracer.emit("server_start", port=self.port)
        self._announce()
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # retract the announce file: a drained run dir must not
            # advertise a dead endpoint to clients or a restarted server
            try:
                os.unlink(os.path.join(self.config.run_dir, SERVICE_FILE))
            except OSError:
                pass
            self.tracer.emit("server_stop", served=self.counters["done"])
            self.tracer.close(ok=True)

    def _announce(self) -> None:
        facts = {"host": self.config.host, "port": self.port, "pid": os.getpid()}
        path = os.path.join(self.config.run_dir, SERVICE_FILE)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(facts, handle)
        print(json.dumps({"repro_serve": facts}), flush=True)

    def request_drain(self) -> None:
        """First signal: stop admitting, checkpoint in-flight work.
        Second signal: hard stop."""
        if self.draining:
            for proc in list(self._procs.values()):
                try:
                    proc.kill()
                except ProcessLookupError:
                    pass
            if self._stopped is not None:
                self._stopped.set()
            return
        self.draining = True
        self.tracer.emit("server_drain", in_flight=len(self._procs))
        for proc in list(self._procs.values()):
            try:
                proc.terminate()
            except ProcessLookupError:
                pass
        asyncio.ensure_future(self._finish_drain())

    async def _finish_drain(self) -> None:
        deadline = self.config.clock() + self.config.drain_grace
        while self._handlers > 0 and self.config.clock() < deadline:
            await asyncio.sleep(0.05)
        for proc in list(self._procs.values()):
            try:
                proc.kill()
            except ProcessLookupError:
                pass
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_id = self._new_request_id()
        try:
            try:
                method, path, _headers, body = await _read_http(
                    reader, self.config.read_timeout
                )
            except asyncio.TimeoutError:
                await self._respond(
                    writer,
                    408,
                    {"error": "request_timeout", "detail": "slow client"},
                    request_id,
                )
                return
            except _BadRequest as error:
                await self._respond(
                    writer,
                    error.status,
                    {"error": "bad_request", "detail": error.detail},
                    request_id,
                )
                return
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                UnicodeDecodeError,
            ):
                return
            status, response, retry_after = await self._dispatch(
                request_id, method, path, body
            )
            await self._respond(writer, status, response, request_id, retry_after)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            except asyncio.CancelledError:
                # loop teardown cancelled the handler while the socket
                # was flushing; the response (if any) is already out and
                # swallowing here keeps shutdown logs clean
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, object],
        request_id: str,
        retry_after: Optional[float] = None,
    ) -> None:
        try:
            writer.write(_encode_response(status, body, request_id, retry_after))
            await asyncio.wait_for(writer.drain(), self.config.read_timeout)
        except (ConnectionError, asyncio.TimeoutError, OSError):
            pass  # the client is gone; its work (if any) is checkpointed

    def _new_request_id(self) -> str:
        self._next_id += 1
        return f"r{self._next_id:06d}"

    # ------------------------------------------------------------------
    # Dispatch + admission
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request_id: str, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        if method == "GET" and path in ("/status", "/healthz"):
            return 200, self._status_body(), None
        if method != "POST":
            return 404, {"error": "not_found", "detail": f"{method} {path}"}, None
        kind = path.lstrip("/")
        if kind not in protocol.KINDS:
            return (
                404,
                {
                    "error": "not_found",
                    "detail": f"POST path must be one of "
                    f"{', '.join('/' + k for k in protocol.KINDS)}",
                },
                None,
            )
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "bad_request", "detail": "body is not JSON"}, None
        try:
            tenant_name = protocol.tenant_of(payload)
            deadline = protocol.deadline_of(payload)
            normalized = protocol.validate_request(kind, payload)
        except protocol.RequestError as error:
            return 400, {"error": "bad_request", "detail": str(error)}, None
        return await self._admit(request_id, tenant_name, deadline, normalized)

    def _shed(
        self,
        request_id: str,
        tenant: Optional[Tenant],
        reason: str,
        status: int,
        retry_after: Optional[float],
        detail: str,
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        self.counters["shed"] += 1
        if tenant is not None:
            tenant.shed += 1
        self.tracer.emit("request_shed", request=request_id, reason=reason)
        body: Dict[str, object] = {"error": reason, "detail": detail}
        if retry_after is not None:
            body["retry_after"] = round(retry_after, 3)
        return status, body, retry_after

    async def _admit(
        self,
        request_id: str,
        tenant_name: str,
        deadline: Optional[float],
        normalized: Dict[str, object],
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        config = self.config
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            tenant = self.tenants[tenant_name] = Tenant(
                config.tenant_rate,
                config.tenant_burst,
                config.tenant_concurrency,
                config.clock,
            )
        if self.draining:
            return self._shed(
                request_id, tenant, "draining", 503, config.drain_grace,
                "server is draining; in-flight work is being checkpointed",
            )
        if config.memory_watermark_mb is not None:
            gauge = config.memory_gauge or _process_rss_mb
            rss = gauge()
            if rss >= config.memory_watermark_mb:
                return self._shed(
                    request_id, tenant, "memory_pressure", 503, 2.0,
                    f"resident memory {rss:.0f} MB is over the "
                    f"{config.memory_watermark_mb:.0f} MB watermark",
                )
        admitted, retry_after = tenant.bucket.take()
        if not admitted:
            return self._shed(
                request_id, tenant, "rate_limited", 429, retry_after,
                f"tenant {tenant_name!r} is over its request rate",
            )
        if tenant.in_flight >= tenant.concurrency:
            return self._shed(
                request_id, tenant, "tenant_quota", 429, 1.0,
                f"tenant {tenant_name!r} already has {tenant.in_flight} "
                "requests in flight",
            )
        if self._waiting >= config.queue_depth:
            return self._shed(
                request_id, tenant, "queue_full", 429,
                1.0 + self._waiting * 0.5,
                f"admission queue is full ({self._waiting} waiting)",
            )
        key = protocol.work_key(normalized)
        allowed, retry_after = self.breaker.allow(key)
        if not allowed:
            return self._shed(
                request_id, tenant, "quarantined", 503, retry_after,
                f"work key {key} is circuit-broken "
                f"({self.breaker.failures(key)} recent failures)",
            )

        deadline_abs = None
        if deadline is not None or config.default_deadline is not None:
            limit = min(
                deadline if deadline is not None else config.max_deadline,
                config.max_deadline,
            )
            if config.default_deadline is not None and deadline is None:
                limit = config.default_deadline
            deadline_abs = config.clock() + limit

        tenant.in_flight += 1
        tenant.admitted += 1
        self._handlers += 1
        try:
            leader_future = self._inflight.get(key)
            if leader_future is not None:
                self.counters["coalesced"] += 1
                self.tracer.emit(
                    "request_coalesced",
                    request=request_id,
                    into=key,
                )
                status, body, retry_after = await asyncio.shield(leader_future)
                body = dict(body)
                body["request_id"] = request_id
                body["coalesced"] = True
                return status, body, retry_after
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self.counters["admitted"] += 1
            self.tracer.emit(
                "request_admitted", request=request_id, kind=normalized["kind"]
            )
            try:
                outcome = await self._execute(
                    request_id, key, normalized, deadline_abs
                )
            except BaseException:
                outcome = (
                    500,
                    {"error": "internal", "detail": "unexpected server error"},
                    None,
                )
                raise
            finally:
                self._inflight.pop(key, None)
                if not future.done():
                    future.set_result(outcome)
            status, body, retry_after = outcome
            body = dict(body)
            body["request_id"] = request_id
            return status, body, retry_after
        finally:
            self._handlers -= 1
            tenant.in_flight -= 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _spec_for(
        self, request_id: str, key: str, normalized: Dict[str, object]
    ) -> Dict[str, object]:
        run_dir = self.config.run_dir
        request_dir = os.path.join(run_dir, "requests", request_id)
        os.makedirs(request_dir, exist_ok=True)
        spec = dict(normalized)
        spec["request_id"] = request_id
        spec["config"] = dict(normalized["config"])
        # State lives under the *work key*, not the request id: a
        # retried, coalesced, or post-restart successor request finds
        # and resumes the same checkpoints.
        spec["state_dir"] = os.path.join(run_dir, "state", key)
        spec["store_root"] = self.config.store_root
        spec["result_path"] = os.path.join(request_dir, "result.json")
        spec["spec_path"] = os.path.join(request_dir, "spec.json")
        return spec

    async def _execute(
        self,
        request_id: str,
        key: str,
        normalized: Dict[str, object],
        deadline_abs: Optional[float],
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        config = self.config
        self._waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self._waiting -= 1
        try:
            if self.draining:
                return (
                    503,
                    {
                        "error": "draining",
                        "detail": "server began draining before execution",
                    },
                    config.drain_grace,
                )
            attempts = 0
            max_attempts = 1 + config.executor_retries
            while True:
                attempts += 1
                if deadline_abs is not None:
                    remaining = deadline_abs - config.clock()
                    if remaining <= 0:
                        return self._deadline_response(key)
                else:
                    remaining = None
                spec = self._spec_for(request_id, key, normalized)
                user_limit = spec["config"].get("time_limit")
                if remaining is not None and (
                    user_limit is None or remaining < user_limit
                ):
                    spec["config"]["time_limit"] = remaining
                deadline_limited = (
                    remaining is not None
                    and (user_limit is None or remaining < user_limit)
                )
                rc, result = await self._run_executor(request_id, spec, remaining)
                response = self._interpret(
                    request_id, key, rc, result, deadline_limited
                )
                if response is not None:
                    return response
                # Crash: retry against the same state dir (the
                # checkpoint survives, so finished levels are free).
                self.counters["retried"] += 1
                self.tracer.emit(
                    "request_retry", request=request_id, attempt=attempts
                )
                self.breaker.record_failure(key)
                if self.draining:
                    return (
                        503,
                        {"error": "draining", "detail": "drain during retry"},
                        config.drain_grace,
                    )
                if attempts >= max_attempts:
                    self.counters["failed"] += 1
                    self.tracer.emit(
                        "request_done", request=request_id, status=500
                    )
                    return (
                        500,
                        {
                            "error": "executor_failed",
                            "detail": f"executor crashed {attempts} time(s) "
                            f"(last exit {rc}); work key {key} counts "
                            "toward its circuit breaker",
                            "attempts": attempts,
                        },
                        None,
                    )
        finally:
            self._slots.release()

    def _deadline_response(
        self, key: str
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        state_dir = os.path.join(self.config.run_dir, "state", key)
        return (
            504,
            {
                "error": "deadline_exceeded",
                "detail": "request deadline expired; partial enumeration "
                "state is checkpointed and a repeated request resumes it",
                "checkpointed": os.path.isdir(state_dir),
            },
            None,
        )

    async def _run_executor(
        self,
        request_id: str,
        spec: Dict[str, object],
        remaining: Optional[float],
    ) -> Tuple[int, Optional[Dict[str, object]]]:
        """One executor attempt: returns (exit_status, result | None)."""
        spec_path = spec["spec_path"]
        result_path = spec["result_path"]
        try:
            os.unlink(result_path)
        except OSError:
            pass
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(spec, handle, sort_keys=True)
        log_path = os.path.join(os.path.dirname(spec_path), "executor.log")
        with open(log_path, "ab") as log:
            proc = await asyncio.create_subprocess_exec(
                sys.executable,
                "-m",
                "repro.service.executor",
                spec_path,
                stdout=asyncio.subprocess.DEVNULL,
                stderr=log,
                # Own session: terminal SIGINT aimed at the server must
                # not also hit the executors — drain signals them
                # explicitly, exactly once.
                start_new_session=True,
            )
        self._procs[request_id] = proc
        try:
            if remaining is None:
                rc = await proc.wait()
            else:
                try:
                    rc = await asyncio.wait_for(
                        proc.wait(), remaining + self.config.exec_grace
                    )
                except asyncio.TimeoutError:
                    # The cooperative budget should have stopped it;
                    # escalate SIGTERM (checkpoint) then SIGKILL.
                    proc.terminate()
                    try:
                        rc = await asyncio.wait_for(
                            proc.wait(), self.config.exec_grace
                        )
                    except asyncio.TimeoutError:
                        proc.kill()
                        rc = await proc.wait()
        finally:
            self._procs.pop(request_id, None)
        try:
            result = ckpt.load_checkpoint(result_path)
        except ckpt.CheckpointError:
            result = None
        return rc, result

    def _interpret(
        self,
        request_id: str,
        key: str,
        rc: int,
        result: Optional[Dict[str, object]],
        deadline_limited: bool,
    ) -> Optional[Tuple[int, Dict[str, object], Optional[float]]]:
        """Map one executor attempt to a response, or None to retry."""
        if rc == 3 or (rc < 0 and self.draining):
            # Graceful interruption — only meaningful during drain (or
            # an operator signaling the executor directly).
            self.counters["interrupted"] += 1
            self.tracer.emit("request_done", request=request_id, status=503)
            body: Dict[str, object] = {
                "error": "draining",
                "detail": "enumeration checkpointed mid-request; retry "
                "against the restarted server to resume bit-identically",
                "checkpointed": True,
            }
            if result is not None:
                body["partial"] = result
            return 503, body, self.config.drain_grace
        if rc == 0 and result is not None:
            if "error" in result:
                status = 500 if result["error"] == "bad_spec" else 400
                self.tracer.emit(
                    "request_done", request=request_id, status=status
                )
                return status, result, None
            if deadline_limited and result.get("abort_reason") == "time_limit":
                self.counters["failed"] += 1
                self.tracer.emit(
                    "request_done", request=request_id, status=504
                )
                return (
                    504,
                    {
                        "error": "deadline_exceeded",
                        "detail": "enumeration stopped at the deadline; "
                        "state is checkpointed and a repeated request "
                        "resumes it",
                        "checkpointed": True,
                        "partial": result,
                    },
                    None,
                )
            self.breaker.record_success(key)
            self.counters["done"] += 1
            self.tracer.emit("request_done", request=request_id, status=200)
            return 200, result, None
        return None  # crash → retry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _breaker_event(self, what: str, key: str, failures: int) -> None:
        if what == "open":
            self.tracer.emit("breaker_open", key=key, failures=failures)
        elif what == "probe":
            self.tracer.emit("breaker_probe", key=key)
        else:
            self.tracer.emit("breaker_close", key=key, failures=failures)

    def _status_body(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.draining else "serving",
            "uptime": round(self.config.clock() - self._started, 3),
            "port": self.port,
            "run_dir": self.config.run_dir,
            "in_flight": len(self._procs),
            "queued": self._waiting,
            "handlers": self._handlers,
            "counters": dict(self.counters),
            "tenants": {
                name: tenant.snapshot()
                for name, tenant in sorted(self.tenants.items())
            },
            "breaker": {"open": self.breaker.open_keys()},
            "executors": [proc.pid for proc in self._procs.values()],
        }


def serve_main(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``."""
    server = EnumerationServer(config)
    asyncio.run(server.serve())
    return 0


def read_service_file(run_dir: str) -> Optional[Dict[str, object]]:
    """The host/port/pid a server in *run_dir* announced, or None."""
    try:
        with open(
            os.path.join(run_dir, SERVICE_FILE), encoding="utf-8"
        ) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


#: re-export for consumers that discover a run dir's journal
__all__ = [
    "EnumerationServer",
    "ServiceConfig",
    "serve_main",
    "read_service_file",
    "JOURNAL_NAME",
]
