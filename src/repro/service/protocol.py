"""Request validation and the work-key scheme of the service.

Everything a client may send is declared here — the three request
kinds, the enumeration-config subset a request may set, and their
types and ranges — so the server rejects malformed input with a
structured 400 before any work is admitted, and the executor can trust
its spec file completely.

The **work key** is the service's unit of identity: a stable digest of
everything that shapes the computation (kind, source text, functions,
config).  It keys request coalescing (identical concurrent requests
share one execution), the circuit breaker (repeated failures quarantine
the work, not the client), and the on-disk checkpoint state (a drained
request's successor — even after a server restart — resumes the same
checkpoint).  Tenant, deadline, and other delivery details are
deliberately excluded: they change how a request is served, never what
it computes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.opt import PHASE_IDS
from repro.programs import PROGRAMS

#: request kinds the service accepts (POST /<kind>)
KINDS = ("compile", "enumerate", "interactions")

#: the EnumerationConfig subset a request may set, with accepted types.
#: Budgets are clamped server-side; space-shaping switches pass through.
CONFIG_FIELDS: Dict[str, tuple] = {
    "max_nodes": (int,),
    "max_levels": (int,),
    "time_limit": (int, float),
    "exact": (bool,),
    "remap": (bool,),
    "share_prefixes": (bool,),
    "validate": (bool,),
    "difftest": (bool,),
    "phase_timeout": (int, float),
    "checkpoint_interval": (int, float),
    "sanitize": (str,),
    "fault_rate": (int, float),
    "fault_seed": (int,),
    "jobs": (int,),
    "engine": (str,),
    "collapse": (str,),
}


class RequestError(ValueError):
    """A client request is malformed; maps to HTTP 400."""


def _fail(message: str) -> None:
    raise RequestError(message)


def _source_of(payload: Dict) -> str:
    """The mini-C text of a request: inline ``source`` or ``benchmark``."""
    source = payload.get("source")
    benchmark = payload.get("benchmark")
    if source is not None and benchmark is not None:
        _fail("give either 'source' or 'benchmark', not both")
    if benchmark is not None:
        if not isinstance(benchmark, str) or benchmark not in PROGRAMS:
            _fail(
                f"unknown benchmark {benchmark!r}; "
                f"try: {', '.join(sorted(PROGRAMS))}"
            )
        return PROGRAMS[benchmark].source
    if not isinstance(source, str) or not source.strip():
        _fail("'source' must be non-empty mini-C text (or pass 'benchmark')")
    return source


def _validated_config(raw: object) -> Dict[str, object]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        _fail("'config' must be an object")
    config: Dict[str, object] = {}
    for key, value in raw.items():
        types = CONFIG_FIELDS.get(key)
        if types is None:
            _fail(
                f"unknown config field {key!r}; "
                f"allowed: {', '.join(sorted(CONFIG_FIELDS))}"
            )
        # bool is an int subclass; an int where a bool belongs (and
        # vice versa) is a type error, not a coercion.
        if isinstance(value, bool) != (types == (bool,)) or not isinstance(
            value, types
        ):
            _fail(f"config field {key!r} must be {types[0].__name__}")
        config[key] = value
    sanitize = config.get("sanitize")
    if sanitize is not None and sanitize not in ("fast", "full"):
        _fail("config.sanitize must be 'fast' or 'full'")
    rate = config.get("fault_rate")
    if rate is not None and not 0.0 < rate <= 1.0:
        _fail("config.fault_rate must be in (0, 1]")
    jobs = config.get("jobs")
    if jobs is not None and not 1 <= jobs <= 64:
        _fail("config.jobs must be in [1, 64]")
    engine = config.get("engine")
    if engine is not None and engine not in ("flat", "object"):
        _fail("config.engine must be 'flat' or 'object'")
    collapse = config.get("collapse")
    if collapse is not None and collapse not in ("syntactic", "semantic"):
        _fail("config.collapse must be 'syntactic' or 'semantic'")
    for key in (
        "max_nodes",
        "max_levels",
        "time_limit",
        "phase_timeout",
        "checkpoint_interval",
    ):
        value = config.get(key)
        if value is not None and value <= 0:
            _fail(f"config.{key} must be positive")
    return config


def validate_request(kind: str, payload: object) -> Dict[str, object]:
    """Normalize one request body; raises :class:`RequestError`.

    Returns a dict with resolved ``source``, the validated ``config``
    subset, and the kind-specific fields — the exact shape the executor
    spec is built from.
    """
    if kind not in KINDS:
        _fail(f"unknown request kind {kind!r}; expected one of {KINDS}")
    if not isinstance(payload, dict):
        _fail("request body must be a JSON object")
    normalized: Dict[str, object] = {
        "kind": kind,
        "source": _source_of(payload),
        "config": _validated_config(payload.get("config")),
    }
    if kind == "enumerate":
        function = payload.get("function")
        if not isinstance(function, str) or not function:
            _fail("'function' is required for enumerate requests")
        normalized["function"] = function
        normalized["include_dag"] = bool(payload.get("include_dag", False))
    elif kind == "interactions":
        functions = payload.get("functions")
        if functions is not None:
            if not isinstance(functions, list) or not all(
                isinstance(name, str) and name for name in functions
            ):
                _fail("'functions' must be a list of function names")
            if not functions:
                _fail("'functions' must not be empty when given")
        normalized["functions"] = functions
    elif kind == "compile":
        function = payload.get("function")
        if function is not None and not isinstance(function, str):
            _fail("'function' must be a string")
        sequence = payload.get("sequence")
        if sequence is not None:
            if not isinstance(sequence, str):
                _fail("'sequence' must be a string of phase letters")
            for phase_id in sequence:
                if phase_id not in PHASE_IDS:
                    _fail(
                        f"unknown phase {phase_id!r}; "
                        f"phases: {''.join(PHASE_IDS)}"
                    )
        batch = bool(payload.get("batch", False))
        if sequence and batch:
            _fail("give either 'sequence' or 'batch', not both")
        normalized["function"] = function
        normalized["sequence"] = sequence
        normalized["batch"] = batch
    return normalized


def tenant_of(payload: object) -> str:
    """The (validated) tenant label of a raw request body."""
    if not isinstance(payload, dict):
        return "default"
    tenant = payload.get("tenant", "default")
    if (
        not isinstance(tenant, str)
        or not tenant
        or len(tenant) > 64
        or not all(ch.isalnum() or ch in "-_." for ch in tenant)
    ):
        _fail("'tenant' must be a short alphanumeric/-_. label")
    return tenant


def deadline_of(payload: object) -> Optional[float]:
    """The requested deadline in seconds, or None."""
    if not isinstance(payload, dict):
        return None
    deadline = payload.get("deadline")
    if deadline is None:
        return None
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        _fail("'deadline' must be a number of seconds")
    if deadline <= 0:
        _fail("'deadline' must be positive")
    return float(deadline)


def work_key(normalized: Dict[str, object]) -> str:
    """Stable identity digest of the computation a request names."""
    digest = hashlib.sha256(
        json.dumps(normalized, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return f"{normalized['kind']}-{digest[:16]}"


def split_key(key: str) -> Tuple[str, str]:
    """(kind, digest) halves of a work key."""
    kind, _, digest = key.partition("-")
    return kind, digest
