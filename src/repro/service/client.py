"""The bundled service client: stdlib HTTP + the shared retry policy.

One blocking client class over :mod:`http.client`, used by scripts,
the chaos tests, and the CI smoke job.  Transient failures — connection
refused/reset (a restarting server), ``429`` load shedding, ``503``
drain/quarantine — are retried with the exponential-backoff-plus-full-
jitter policy from :mod:`repro.robustness.retry`; a server-supplied
``Retry-After`` always wins over the computed backoff, so the client
cooperates with the server's admission control instead of hammering it.

Non-transient statuses (``400`` bad request, ``404``, ``500`` executor
failure, ``504`` deadline exceeded) raise immediately: retrying them
either cannot help or must be the caller's decision.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Callable, Dict, Optional

from repro.robustness.retry import RetryError, RetryPolicy

#: statuses worth retrying: shed / draining / quarantined requests are
#: expected to succeed later, and the server said when to come back
TRANSIENT_STATUSES = (408, 429, 503)


def parse_retry_after(value: object) -> Optional[float]:
    """A usable backoff hint from a ``Retry-After`` value, or ``None``.

    The value may come from a response header or a JSON body, so it can
    be anything: a number, a numeric string, an HTTP-date, or garbage
    from a proxy.  Only a non-negative finite number of seconds is a
    hint worth honouring; everything else means "no hint" — the caller
    falls back to its own backoff rather than crashing the retry loop.
    """
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        seconds = float(value)
    elif isinstance(value, str):
        try:
            seconds = float(value.strip())
        except ValueError:
            return None
    else:
        return None
    if seconds != seconds or seconds in (float("inf"), float("-inf")):
        return None
    return seconds if seconds >= 0 else None


class ServiceError(Exception):
    """A structured error response from the service."""

    def __init__(
        self,
        status: int,
        body: Dict[str, object],
        request_id: Optional[str] = None,
    ):
        self.status = status
        self.body = body
        self.error = body.get("error", "unknown")
        self.detail = body.get("detail", "")
        self.retry_after = parse_retry_after(body.get("retry_after"))
        self.request_id = request_id
        super().__init__(f"HTTP {status} {self.error}: {self.detail}")


class TransientServiceError(ServiceError):
    """A retryable rejection (shed, draining, quarantined, slow-read)."""


class ServiceClient:
    """Blocking JSON client with retry, jitter, and deadline support."""

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        timeout: float = 60.0,
        tenant: Optional[str] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.host = host
        self.port = port
        self.policy = (
            policy
            if policy is not None
            else RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=2.0)
        )
        #: per-attempt socket timeout (connect + response read)
        self.timeout = timeout
        self.tenant = tenant
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep
        self.clock = clock
        #: request ids of every response this client received (the
        #: journal join key; handy in tests and bug reports)
        self.request_ids: list = []

    # ------------------------------------------------------------------

    def _once(
        self, method: str, path: str, payload: Optional[Dict]
    ) -> Dict[str, object]:
        body = None
        headers = {}
        if payload is not None:
            if self.tenant is not None:
                payload = dict(payload)
                payload.setdefault("tenant", self.tenant)
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            request_id = response.getheader("X-Request-Id")
            if request_id:
                self.request_ids.append(request_id)
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": "bad_response", "detail": raw[:200].decode("latin-1")}
            if response.status == 200:
                return decoded
            hinted = parse_retry_after(response.getheader("Retry-After"))
            if hinted is not None and "retry_after" not in decoded:
                decoded["retry_after"] = hinted
            klass = (
                TransientServiceError
                if response.status in TRANSIENT_STATUSES
                else ServiceError
            )
            raise klass(response.status, decoded, request_id)
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        """One logical request, retried through transient failures.

        *deadline* bounds the whole retry loop in seconds; it is also
        forwarded to the server (which turns it into the enumeration's
        cooperative time budget), so client and server give up at the
        same moment with a checkpoint on disk.
        """
        if deadline is not None and payload is not None:
            payload = dict(payload)
            payload.setdefault("deadline", deadline)
        give_up_at = None if deadline is None else self.clock() + deadline
        last: Optional[Exception] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if give_up_at is not None and self.clock() >= give_up_at:
                break
            try:
                return self._once(method, path, payload)
            except (
                TransientServiceError,
                ConnectionError,
                socket.timeout,
                http.client.HTTPException,
                OSError,
            ) as error:
                if isinstance(error, ServiceError) and not isinstance(
                    error, TransientServiceError
                ):
                    raise
                last = error
                if attempt >= self.policy.max_attempts:
                    break
                delay = self.policy.delay(attempt, self.rng)
                hinted = parse_retry_after(getattr(error, "retry_after", None))
                if hinted is not None:
                    # Server backpressure outranks the local jitter.
                    delay = max(delay, hinted)
                if give_up_at is not None:
                    remaining = give_up_at - self.clock()
                    if remaining <= 0:
                        break
                    delay = min(delay, remaining)
                self.sleep(delay)
        raise RetryError(
            f"request {method} {path} failed after {attempt} attempt(s)",
            attempts=attempt,
            last_error=last,
        )

    # ------------------------------------------------------------------
    # Convenience wrappers (one per request kind)
    # ------------------------------------------------------------------

    def enumerate(
        self,
        *,
        source: Optional[str] = None,
        benchmark: Optional[str] = None,
        function: str,
        config: Optional[Dict] = None,
        include_dag: bool = False,
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "function": function,
            "include_dag": include_dag,
        }
        if source is not None:
            payload["source"] = source
        if benchmark is not None:
            payload["benchmark"] = benchmark
        if config:
            payload["config"] = config
        return self.request("POST", "/enumerate", payload, deadline)

    def compile(
        self,
        *,
        source: Optional[str] = None,
        benchmark: Optional[str] = None,
        function: Optional[str] = None,
        sequence: Optional[str] = None,
        batch: bool = False,
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"batch": batch}
        if source is not None:
            payload["source"] = source
        if benchmark is not None:
            payload["benchmark"] = benchmark
        if function is not None:
            payload["function"] = function
        if sequence is not None:
            payload["sequence"] = sequence
        return self.request("POST", "/compile", payload, deadline)

    def interactions(
        self,
        *,
        source: Optional[str] = None,
        benchmark: Optional[str] = None,
        functions: Optional[list] = None,
        config: Optional[Dict] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        if source is not None:
            payload["source"] = source
        if benchmark is not None:
            payload["benchmark"] = benchmark
        if functions is not None:
            payload["functions"] = functions
        if config:
            payload["config"] = config
        return self.request("POST", "/interactions", payload, deadline)

    def status(self) -> Dict[str, object]:
        return self.request("GET", "/status")
