"""Enumeration-as-a-service (``repro serve``; see docs/SERVICE.md).

A long-lived asyncio JSON-over-HTTP server that accepts ``compile`` /
``enumerate`` / ``interactions`` requests from many concurrent clients
and multiplexes them onto the existing enumeration machinery — the
serial :mod:`~repro.core.enumeration` engine, the parallel
coordinator, and a :class:`~repro.parallel.store.SpaceStore` shared
across requests as the cross-request cache.

The package is structured as independently testable layers:

- :mod:`~repro.service.protocol` — request validation, work keys, and
  the error vocabulary shared by server and client;
- :mod:`~repro.service.admission` — token buckets, tenant quotas, and
  the per-work-key circuit breaker (pure, clock-injected, no I/O);
- :mod:`~repro.service.executor` — the per-request worker subprocess;
  crash containment and graceful SIGTERM checkpointing live here;
- :mod:`~repro.service.server` — the asyncio front end: admission,
  load shedding, request coalescing, deadlines, drain;
- :mod:`~repro.service.client` — the bundled retrying client (also
  what the chaos tests drive the server with).
"""

from repro.service.admission import CircuitBreaker, TokenBucket
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import RequestError, validate_request, work_key
from repro.service.server import EnumerationServer, ServiceConfig

__all__ = [
    "CircuitBreaker",
    "EnumerationServer",
    "RequestError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TokenBucket",
    "validate_request",
    "work_key",
]
