"""The per-request worker process of the enumeration service.

The server runs every admitted request in a fresh subprocess::

    python -m repro.service.executor <spec.json>

which reads a spec written by the server, does the work, and writes a
result JSON **atomically** (through the checkpoint layer, so the file
carries the same version + integrity digest as every other persisted
artifact).  The process boundary is the crash-containment line: a
phase that segfaults, hangs, or eats all memory takes down one request
attempt, never the server — the server sees a missing/garbled result
and an exit status, and decides to retry, quarantine, or report.

Exit status protocol:

- ``0`` — result file written (including structured client errors such
  as a mini-C compile failure: those are results, not crashes);
- ``3`` — gracefully interrupted (SIGTERM during drain): the
  enumeration checkpointed its state under the request's stable work
  key, so a successor request — even against a restarted server —
  resumes it bit-identically;
- anything else — a crash; the server retries with the same state dir,
  so levels completed before the crash are never recomputed.

Graceful degradation: a *corrupt* checkpoint (``CKP001``) on the
resume path is discarded and the enumeration restarts fresh — the
request still succeeds, with the strict error preserved under
``degraded`` in the result for the journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.core.batch import BatchCompiler
from repro.core.enumeration import (
    EnumerationConfig,
    EnumerationResult,
    _node_key,
    enumerate_space,
)
from repro.core.fingerprint import fingerprint_function
from repro.core.interactions import analyze_interactions
from repro.frontend import CompileError, compile_source
from repro.ir.printer import format_function
from repro.opt import apply_phase, implicit_cleanup, phase_by_id
from repro.parallel.store import SpaceStore, cacheable
from repro.robustness import FaultInjector

EXIT_OK = 0
EXIT_SPEC = 2
EXIT_INTERRUPTED = 3


def _build_config(
    spec: Dict,
    *,
    program=None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    memo=None,
) -> EnumerationConfig:
    raw = spec.get("config", {})
    injector = None
    if raw.get("fault_rate"):
        injector = FaultInjector(
            seed=raw.get("fault_seed", 2006), rate=raw["fault_rate"]
        )
    needs_program = (
        raw.get("difftest")
        or raw.get("sanitize")
        or raw.get("collapse") == "semantic"
    )
    return EnumerationConfig(
        max_nodes=raw.get("max_nodes"),
        max_levels=raw.get("max_levels"),
        time_limit=raw.get("time_limit"),
        exact=raw.get("exact", False),
        share_prefixes=raw.get("share_prefixes", True),
        remap=raw.get("remap", True),
        validate=raw.get("validate", False),
        difftest=raw.get("difftest", False),
        program=program if needs_program else None,
        phase_timeout=raw.get("phase_timeout"),
        fault_injector=injector,
        # a service-grade cadence: an executor crash loses at most a
        # couple of seconds of expansion, not the CLI default's 30
        checkpoint_interval=raw.get("checkpoint_interval", 2.0),
        checkpoint_path=checkpoint_path,
        resume=resume,
        sanitize=raw.get("sanitize"),
        memo=memo,
        engine=raw.get("engine", "flat"),
        collapse=raw.get("collapse", "syntactic"),
    )


def _dag_fingerprint(dag) -> str:
    """Content digest of the full serialized space DAG — the service's
    bit-identity witness (serial == resumed == coalesced == cached)."""
    return hashlib.sha256(
        json.dumps(ckpt.dag_to_dict(dag), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _result_payload(
    name: str,
    result: EnumerationResult,
    *,
    degraded: Optional[str] = None,
) -> Dict[str, object]:
    resumed = result.resumed_from
    payload: Dict[str, object] = {
        "function": name,
        "completed": result.completed,
        "abort_reason": result.abort_reason,
        "instances": len(result.dag),
        "levels_completed": result.levels_completed,
        "attempted_phases": result.attempted_phases,
        "phases_applied": result.phases_applied,
        "elapsed": round(result.elapsed, 3),
        "resumed_from": resumed,
        "store_hit": isinstance(resumed, str) and resumed.startswith("store:"),
        "degraded": degraded,
        "quarantine": result.quarantine.to_dicts(),
        "dag_fingerprint": _dag_fingerprint(result.dag),
    }
    if result.collapse_stats is not None:
        payload["collapse_stats"] = result.collapse_stats
    return payload


def _enumerate_one(
    spec: Dict,
    name: str,
    func,
    program,
    store: Optional[SpaceStore],
    checkpoint_path: str,
) -> Tuple[EnumerationResult, Optional[str]]:
    """Enumerate one function; returns ``(result, degraded_reason)``.

    Mirrors the coordinator's store discipline exactly — same root-key
    derivation, same cacheability and memo gates — so the service, the
    CLI, and parallel runs all share one cache.
    """
    probe_config = _build_config(spec)
    root = func.clone()
    implicit_cleanup(root)
    fingerprint = fingerprint_function(
        root, keep_text=probe_config.exact, remap=probe_config.remap
    )
    root_key = _node_key(fingerprint, root)
    if store is not None:
        cached = store.get(name, root_key, probe_config)
        if cached is not None:
            return cached, None
    memo = None
    if (
        store is not None
        and not probe_config.exact
        and not probe_config.guards_enabled()
        and cacheable(probe_config)
    ):
        memo = store.load_memo(probe_config)

    config = _build_config(
        spec,
        program=program,
        checkpoint_path=checkpoint_path,
        resume=os.path.exists(checkpoint_path),
        memo=memo,
    )
    degraded = None
    try:
        result = enumerate_space(func.clone(), config)
    except ckpt.CheckpointError as error:
        # The stable checkpoint for this work key is corrupt: discard
        # it and recompute from scratch rather than failing the
        # request.  The CKP001 detail survives in the result.
        degraded = str(error)
        try:
            os.unlink(checkpoint_path)
        except OSError:
            pass
        config = _build_config(
            spec, program=program, checkpoint_path=checkpoint_path, memo=memo
        )
        result = enumerate_space(func.clone(), config)
    if memo is not None:
        store.save_memo(probe_config, memo)
    if store is not None and result.completed:
        store.put(name, root_key, probe_config, result)
    return result, degraded


def _run_enumerate(spec: Dict, program) -> Tuple[Dict[str, object], int]:
    name = spec["function"]
    func = program.functions.get(name)
    if func is None:
        return _client_error(
            "unknown_function",
            f"no function {name!r}; available: "
            f"{', '.join(program.functions)}",
        )
    state_dir = spec["state_dir"]
    os.makedirs(state_dir, exist_ok=True)
    store = SpaceStore(spec["store_root"]) if spec.get("store_root") else None
    if spec.get("config", {}).get("jobs", 1) > 1:
        return _run_enumerate_parallel(spec, name, func, state_dir, store)
    checkpoint_path = os.path.join(state_dir, "ckpt.json")
    result, degraded = _enumerate_one(
        spec, name, func, program, store, checkpoint_path
    )
    payload = _result_payload(name, result, degraded=degraded)
    if spec.get("include_dag"):
        payload["dag"] = ckpt.dag_to_dict(result.dag)
    if result.abort_reason == "interrupted":
        payload["interrupted"] = True
        payload["checkpointed"] = os.path.exists(checkpoint_path)
        return payload, EXIT_INTERRUPTED
    return payload, EXIT_OK


def _run_enumerate_parallel(
    spec: Dict, name: str, func, state_dir: str, store: Optional[SpaceStore]
) -> Tuple[Dict[str, object], int]:
    """jobs > 1: multiplex the request onto the parallel coordinator.

    The coordinator owns store consultation, level checkpoints under
    the request's stable state dir, and SIGTERM checkpointing; the
    executor just runs it and shapes the result.
    """
    from repro.parallel import (
        EnumerationRequest,
        ParallelConfig,
        ParallelEnumerator,
    )

    raw = spec.get("config", {})
    config = _build_config(spec)
    needs_source = (
        raw.get("difftest")
        or raw.get("sanitize")
        or raw.get("collapse") == "semantic"
    )
    parallel = ParallelConfig(
        jobs=raw["jobs"],
        run_dir=os.path.join(state_dir, "parallel"),
        resume=True,
        store=store,
    )
    request = EnumerationRequest(
        name, func, spec["source"] if needs_source else None
    )
    result = ParallelEnumerator(config, parallel).enumerate([request])[0]
    payload = _result_payload(name, result)
    if spec.get("include_dag"):
        payload["dag"] = ckpt.dag_to_dict(result.dag)
    return payload, EXIT_OK


def _run_interactions(spec: Dict, program) -> Tuple[Dict[str, object], int]:
    names = spec.get("functions") or list(program.functions)
    store = SpaceStore(spec["store_root"]) if spec.get("store_root") else None
    state_dir = spec["state_dir"]
    os.makedirs(state_dir, exist_ok=True)
    results: List[EnumerationResult] = []
    rows: Dict[str, Dict[str, object]] = {}
    for name in names:
        func = program.functions.get(name)
        if func is None:
            return _client_error(
                "unknown_function",
                f"no function {name!r}; available: "
                f"{', '.join(program.functions)}",
            )
        checkpoint_path = os.path.join(state_dir, f"{name}.ckpt.json")
        result, degraded = _enumerate_one(
            spec, name, func, program, store, checkpoint_path
        )
        rows[name] = _result_payload(name, result, degraded=degraded)
        if result.abort_reason == "interrupted":
            # Partial multi-function request: everything enumerated so
            # far is checkpointed (or already in the store); a retried
            # request resumes mid-list.
            return (
                {"functions": rows, "interrupted": True, "checkpointed": True},
                EXIT_INTERRUPTED,
            )
        results.append(result)
    analysis = analyze_interactions(results)
    return (
        {
            "functions": rows,
            "tables": {
                "enabling": analysis.format_enabling(),
                "disabling": analysis.format_disabling(),
                "independence": analysis.format_independence(),
            },
        },
        EXIT_OK,
    )


def _run_compile(spec: Dict, program) -> Tuple[Dict[str, object], int]:
    names = (
        [spec["function"]] if spec.get("function") else list(program.functions)
    )
    functions: Dict[str, Dict[str, object]] = {}
    for name in names:
        func = program.functions.get(name)
        if func is None:
            return _client_error(
                "unknown_function",
                f"no function {name!r}; available: "
                f"{', '.join(program.functions)}",
            )
        implicit_cleanup(func)
        applied: List[str] = []
        if spec.get("batch"):
            report = BatchCompiler().compile(func)
            applied = list(report.active_sequence)
        elif spec.get("sequence"):
            for phase_id in spec["sequence"]:
                if apply_phase(func, phase_by_id(phase_id)):
                    applied.append(phase_id)
        functions[name] = {
            "instructions": func.num_instructions(),
            "active": "".join(applied),
            "rtl": format_function(func),
        }
    return {"functions": functions}, EXIT_OK


def _client_error(error: str, detail: str) -> Tuple[Dict[str, object], int]:
    """A structured client-input failure — a *result*, not a crash."""
    return {"error": error, "detail": detail}, EXIT_OK


def run_spec(spec: Dict) -> Tuple[Dict[str, object], int]:
    kind = spec["kind"]
    try:
        program = compile_source(spec["source"])
    except CompileError as error:
        return _client_error("compile_error", str(error))
    if kind == "compile":
        return _run_compile(spec, program)
    if kind == "enumerate":
        return _run_enumerate(spec, program)
    if kind == "interactions":
        return _run_interactions(spec, program)
    return {"error": "bad_spec", "detail": f"unknown kind {kind!r}"}, EXIT_SPEC


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m repro.service.executor SPEC.json",
            file=sys.stderr,
        )
        return EXIT_SPEC
    try:
        with open(argv[0], encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"unreadable spec {argv[0]}: {error}", file=sys.stderr)
        return EXIT_SPEC
    try:
        payload, code = run_spec(spec)
    except KeyboardInterrupt:
        # SIGTERM during a parallel (jobs > 1) enumeration surfaces
        # here after the coordinator checkpointed every job.
        payload, code = (
            {"interrupted": True, "checkpointed": True},
            EXIT_INTERRUPTED,
        )
    payload.setdefault("request_id", spec.get("request_id"))
    payload.setdefault("kind", spec.get("kind"))
    ckpt.save_checkpoint(spec["result_path"], payload)
    return code


if __name__ == "__main__":
    sys.exit(main())
