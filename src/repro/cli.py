"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
compile
    Compile a mini-C file and print the RTL of one or all functions,
    optionally after a phase sequence or a full batch compilation.
run
    Execute a function (or a benchmark's entry point) in the RTL
    interpreter and report the result and dynamic instruction counts.
enumerate
    Exhaustively enumerate a function's phase order space and print its
    Table 3 row; optionally dump the space DAG as Graphviz.  Robustness
    switches: ``--validate`` (IR validation of every active phase),
    ``--difftest`` (VM differential semantics testing), ``--checkpoint``
    / ``--resume`` (crash-safe persistence), ``--inject-faults`` (the
    deterministic fault harness) — see docs/ROBUSTNESS.md.
profile
    Run one enumeration under cProfile and print where the time goes —
    the drill-down companion to ``benchmarks/bench_hotpath.py``.
interactions
    Enumerate several functions and print the Table 4/5/6 matrices.
report
    Render a human summary of a ``--run-dir``'s telemetry (manifest,
    event journal, phase outcomes, cache hit rates, quarantines) — see
    docs/OBSERVABILITY.md.
serve
    Long-lived enumeration service: a JSON-over-HTTP server with
    admission control, per-tenant quotas, request coalescing, circuit
    breaking, and graceful drain — see docs/SERVICE.md.
search
    Heuristic search for a good phase ordering — genetic algorithm,
    hill climbing, simulated annealing, bandits, random sampling, or
    the table-driven probabilistic policy (``--strategy``).
search-bench
    Score every search strategy against the *known* optimum of each
    seed function's exhaustively enumerated space, and emit a JSON
    leaderboard with per-function Pareto frontiers — see
    docs/SEARCH.md.
list-benchmarks
    Show the bundled MiBench-like benchmark programs.

Mini-C files are read from disk; the bundled benchmarks are addressed
as ``bench:NAME`` (e.g. ``bench:sha``) wherever a file is expected.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.checkpoint import CheckpointError
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.batch import BatchCompiler
from repro.core.interactions import analyze_interactions
from repro.core.stats import FunctionSpaceStats, format_stats_table, static_function_facts
from repro.frontend import CompileError, compile_source
from repro.ir.function import Program
from repro.ir.printer import format_function
from repro.opt import PHASE_IDS, apply_phase, implicit_cleanup, phase_by_id
from repro.programs import PROGRAMS
from repro.robustness import FaultInjector
from repro.search import GeneticSearcher, STRATEGY_BUILDERS, codesize_objective
from repro.vm import Interpreter, VMError


def _load_source(spec: str) -> str:
    """The mini-C text behind a file path or ``bench:NAME`` spec.

    Kept separate from compilation because the parallel service ships
    raw source to worker processes (each worker recompiles it) instead
    of pickling compiled Program objects.
    """
    if spec.startswith("bench:"):
        name = spec[len("bench:") :]
        if name not in PROGRAMS:
            raise SystemExit(
                f"unknown benchmark {name!r}; try: {', '.join(sorted(PROGRAMS))}"
            )
        return PROGRAMS[name].source
    try:
        with open(spec) as handle:
            return handle.read()
    except OSError as error:
        raise SystemExit(f"cannot read {spec}: {error}")


def _compile_spec(spec: str, source: str) -> Program:
    try:
        return compile_source(source)
    except CompileError as error:
        raise SystemExit(f"{spec}: {error}")


def _load_program(spec: str) -> Program:
    return _compile_spec(spec, _load_source(spec))


def _select_function(program: Program, name: Optional[str]):
    if name is None:
        raise SystemExit(
            f"--function required; available: {', '.join(program.functions)}"
        )
    func = program.functions.get(name)
    if func is None:
        raise SystemExit(
            f"no function {name!r}; available: {', '.join(program.functions)}"
        )
    return func


def _validate_sequence(sequence: str) -> str:
    for phase_id in sequence:
        if phase_id not in PHASE_IDS:
            raise SystemExit(
                f"unknown phase {phase_id!r}; phases: {''.join(PHASE_IDS)}"
            )
    return sequence


def _format_sanitize_stats(mode: str, stats) -> str:
    line = (
        f"sanitizer ({mode}): {stats.get('edges', 0)} edges checked, "
        f"{stats.get('findings', 0)} findings, "
        f"{stats.get('contract_violations', 0)} contract violations"
    )
    if mode == "full":
        line += (
            f" — verdicts: {stats.get('proved', 0)} proved, "
            f"{stats.get('tested', 0)} tested, "
            f"{stats.get('unverified', 0)} unverified, "
            f"{stats.get('refuted', 0)} refuted"
        )
    return line


def _format_collapse_stats(stats) -> str:
    return (
        f"collapse (semantic): {stats.get('merged', 0)} merged "
        f"({stats.get('merged_proved', 0)} proved, "
        f"{stats.get('merged_tested', 0)} tested) of "
        f"{stats.get('candidates', 0)} candidates — "
        f"{stats.get('split_unproven', 0)} unproven, "
        f"{stats.get('split_cycle', 0)} cycle-split, "
        f"{stats.get('split_size', 0)} size-split, "
        f"{stats.get('refuted', 0)} refuted"
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_compile(args) -> int:
    program = _load_program(args.file)
    names = [args.function] if args.function else list(program.functions)
    for name in names:
        func = program.functions.get(name)
        if func is None:
            raise SystemExit(f"no function {name!r}")
        implicit_cleanup(func)
        applied = []
        if args.batch:
            report = BatchCompiler().compile(func)
            applied = list(report.active_sequence)
        elif args.sequence:
            for phase_id in _validate_sequence(args.sequence):
                if apply_phase(func, phase_by_id(phase_id)):
                    applied.append(phase_id)
        print(f"=== {name} ({func.num_instructions()} instructions"
              + (f"; active: {''.join(applied)}" if applied else "") + ") ===")
        print(format_function(func))
        print()
    return 0


def cmd_run(args) -> int:
    program = _load_program(args.file)
    if args.batch:
        for func in program.functions.values():
            BatchCompiler().compile(func)
    entry = args.entry
    if entry is None and args.file.startswith("bench:"):
        entry = PROGRAMS[args.file[len("bench:") :]].entry
    if entry is None:
        raise SystemExit("--entry required for source files")
    arguments = [int(a) for a in args.args]
    try:
        result = Interpreter(program, fuel=args.fuel).run(entry, arguments)
    except VMError as error:
        raise SystemExit(f"execution failed: {error}")
    print(f"value: {result.value}")
    print(f"dynamic instructions: {result.total_insts}")
    for name, count in sorted(result.per_function.items()):
        print(f"  {name}: {count}")
    return 0


def _build_tracer(args, tool: str):
    """The --run-dir journal + manifest, installed as the process-global
    tracer.  The caller closes it with the run's ok flag."""
    from repro.observability import build_manifest
    from repro.observability.tracer import Tracer, install

    seeds = {}
    if getattr(args, "inject_faults", 0.0):
        seeds["fault"] = args.fault_seed
    config = {
        key: value for key, value in sorted(vars(args).items())
        if key != "handler"
    }
    manifest = build_manifest(
        tool=tool, config=config, seeds=seeds, argv=sys.argv[1:]
    )
    tracer = Tracer(run_dir=args.run_dir, manifest=manifest)
    install(tracer)
    tracer.emit("run_start", tool=tool)
    return tracer


def _close_tracer(tracer, ok: bool) -> None:
    if tracer is None:
        return
    from repro.observability.tracer import uninstall

    uninstall()
    tracer.close(ok=ok)


def _parallel_service(args, store_dir, progress, run_dir, tracer=None):
    """Build the (ParallelConfig, reporter) pair for --jobs/--store."""
    from repro.parallel import ParallelConfig, ProgressReporter, SpaceStore

    store = SpaceStore(store_dir) if store_dir else None
    # The run-dir journal belongs to the tracer; the reporter is a pure
    # event consumer driving the status line (the coordinator delivers
    # every event to both).
    reporter = ProgressReporter() if progress else None
    parallel = ParallelConfig(
        jobs=args.jobs,
        run_dir=run_dir,
        resume=getattr(args, "resume", False),
        store=store,
        progress=reporter,
        tracer=tracer,
    )
    return parallel, reporter


def _dump_profile(profiler, run_dir: Optional[str]) -> None:
    """Write ``--profile`` stats (binary + cumtime-sorted text) to the
    run dir, or the working directory when no --run-dir was given."""
    import io
    import os
    import pstats

    directory = run_dir or "."
    os.makedirs(directory, exist_ok=True)
    binary_path = os.path.join(directory, "profile.pstats")
    text_path = os.path.join(directory, "profile.txt")
    profiler.dump_stats(binary_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(40)
    with open(text_path, "w") as handle:
        handle.write(buffer.getvalue())
    print(
        f"profile: {text_path} (cumtime top 40; full data in "
        f"{binary_path}, inspect with `python -m pstats`)",
        file=sys.stderr,
    )


def cmd_enumerate(args) -> int:
    source = _load_source(args.file)
    program = _compile_spec(args.file, source)
    func = _select_function(program, args.function)
    implicit_cleanup(func)
    facts = static_function_facts(func)
    use_parallel = args.jobs > 1 or bool(args.store)
    if args.resume and not (args.checkpoint or args.run_dir):
        raise SystemExit("--resume requires --checkpoint PATH (or --run-dir DIR)")
    if use_parallel and args.checkpoint:
        raise SystemExit(
            "--checkpoint is the serial persistence flag; "
            "use --run-dir DIR with --jobs/--store"
        )
    injector = None
    if args.inject_faults:
        if not 0.0 < args.inject_faults <= 1.0:
            raise SystemExit("--inject-faults RATE must be in (0, 1]")
        injector = FaultInjector(seed=args.fault_seed, rate=args.inject_faults)
    # A serial --run-dir run checkpoints into the run dir, so
    # --run-dir DIR --resume works the same with and without --jobs.
    checkpoint_path = args.checkpoint
    if not use_parallel and args.run_dir and not checkpoint_path:
        checkpoint_path = os.path.join(args.run_dir, "checkpoint.json")
    config = EnumerationConfig(
        max_nodes=args.max_nodes,
        time_limit=args.time_limit,
        exact=args.exact,
        validate=args.validate,
        difftest=args.difftest,
        program=(
            program
            if (
                (
                    args.difftest
                    or args.sanitize
                    or args.collapse == "semantic"
                )
                and not use_parallel
            )
            else None
        ),
        phase_timeout=args.phase_timeout,
        fault_injector=injector,
        checkpoint_path=None if use_parallel else checkpoint_path,
        resume=False if use_parallel else args.resume,
        sanitize=args.sanitize,
        engine=args.engine,
        collapse=args.collapse,
    )
    tracer = _build_tracer(args, "repro.enumerate") if args.run_dir else None
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    ok = False
    try:
        if use_parallel:
            from repro.parallel import EnumerationRequest, ParallelEnumerator

            parallel, reporter = _parallel_service(
                args, args.store, args.progress, args.run_dir, tracer
            )
            request = EnumerationRequest(
                args.function,
                func,
                (
                    source
                    if (
                        args.difftest
                        or args.sanitize
                        or args.collapse == "semantic"
                    )
                    else None
                ),
            )
            try:
                result = ParallelEnumerator(config, parallel).enumerate(
                    [request]
                )[0]
            finally:
                if reporter is not None:
                    reporter.close()
            if parallel.store is not None:
                print(
                    f"store: {parallel.store.hits} hit(s), "
                    f"{parallel.store.misses} miss(es) ({args.store})",
                    file=sys.stderr,
                )
        else:
            result = enumerate_space(func, config)
        ok = True
    except CheckpointError as error:
        raise SystemExit(str(error))
    finally:
        if profiler is not None:
            profiler.disable()
            _dump_profile(profiler, args.run_dir)
        _close_tracer(tracer, ok)
    stats = FunctionSpaceStats(args.function, *facts, result)
    print(format_stats_table([stats]))
    if result.resumed_from:
        print(f"(resumed from {result.resumed_from})")
    if not result.completed:
        print(f"(aborted: {result.abort_reason})")
        if args.checkpoint and not use_parallel:
            print(
                f"(state saved; rerun with --checkpoint {args.checkpoint} "
                "--resume to continue)"
            )
        elif args.run_dir:
            print(
                f"(state saved; rerun with --run-dir {args.run_dir} "
                "--resume to continue)"
            )
    if injector is not None:
        if use_parallel:
            # Per-shard injector counters live in the workers; the
            # quarantine log below is the merged record of what fired.
            print(
                f"fault injection: seed={injector.seed}, "
                f"rate={injector.rate} (per-shard; see quarantine report)"
            )
        else:
            print(
                f"fault injection: {injector.injected} fault(s) over "
                f"{injector.applications} guarded applications "
                f"(seed={injector.seed}, rate={injector.rate})"
            )
    if config.guards_enabled() or (use_parallel and args.difftest):
        print(result.quarantine.format_report())
    if args.sanitize and result.sanitize_stats is not None:
        print(_format_sanitize_stats(args.sanitize, result.sanitize_stats))
    if result.collapse_stats is not None:
        print(_format_collapse_stats(result.collapse_stats))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(result.dag.to_dot())
        print(f"space DAG written to {args.dot}")
    return 0



def cmd_profile(args) -> int:
    """One enumeration under cProfile, with an edge-throughput summary.

    The profiling companion to ``benchmarks/bench_hotpath.py``: the
    benchmark tells you *whether* the engine regressed, this command
    tells you *where* the time went.  ``--cold`` resets the flat-kernel
    caches first so the run measures what a fresh process would pay.
    """
    import cProfile
    import time

    source = _load_source(args.file)
    program = _compile_spec(args.file, source)
    func = _select_function(program, args.function)
    implicit_cleanup(func)
    config = EnumerationConfig(
        max_nodes=args.max_nodes,
        time_limit=args.time_limit,
        engine=args.engine,
    )
    if args.cold:
        from repro.opt.flat import reset_flat_kernel_caches

        reset_flat_kernel_caches()
    tracer = _build_tracer(args, "repro.profile") if args.run_dir else None
    ok = False
    profiler = cProfile.Profile()
    try:
        start = time.perf_counter()
        profiler.enable()
        result = enumerate_space(func, config)
        profiler.disable()
        wall = time.perf_counter() - start
        edges = result.attempted_phases
        if tracer is not None:
            tracer.emit(
                "profile_run",
                function=args.function,
                engine=args.engine,
                wall=round(wall, 4),
                edges=edges,
            )
        ok = True
    finally:
        if not ok:
            profiler.disable()
        _close_tracer(tracer, ok)
    status = "complete" if result.completed else f"aborted: {result.abort_reason}"
    print(
        f"{args.function}: {edges} edges in {wall:.3f}s "
        f"({edges / wall:,.0f} edges/s, engine={args.engine}, {status})"
    )
    import pstats

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.run_dir:
        _dump_profile(profiler, args.run_dir)
    return 0


def cmd_lint(args) -> int:
    """Run the IR sanitizer over a program, an .ir dump, or a run dir."""
    from repro.staticanalysis import sanitize_function, sanitize_program

    findings = []
    checked = 0
    if os.path.isdir(args.target):
        findings, checked = _lint_run_dir(args.target, args.mode)
    elif args.target.endswith(".ir"):
        from repro.ir.parser import RTLParseError, parse_function

        try:
            with open(args.target) as handle:
                text = handle.read()
        except OSError as error:
            raise SystemExit(f"cannot read {args.target}: {error}")
        name = os.path.splitext(os.path.basename(args.target))[0]
        try:
            func = parse_function(text, name)
        except RTLParseError as error:
            raise SystemExit(f"{args.target}: {error}")
        _infer_ir_metadata(func)
        findings = sanitize_function(func, mode=args.mode)
        checked = 1
    else:
        return _lint_source_target(args)
    for finding in findings:
        print(finding)
    noun = "function" if checked == 1 else "functions"
    print(
        f"lint ({args.mode}): {checked} {noun} checked, "
        f"{len(findings)} finding(s)"
    )
    return 1 if findings else 0


def _lint_source_target(args) -> int:
    """Source mode of ``repro lint``: semantic diagnostics with caret
    spans first, then the IR sanitizer over the compiled program."""
    from repro.staticanalysis import sanitize_function, sanitize_program

    tracer = (
        _build_tracer(args, "repro.lint")
        if getattr(args, "run_dir", None)
        else None
    )
    ok = False
    try:
        source = _load_source(args.target)
        diagnostics = _lint_source(args.target, source)
        if diagnostics is None:
            total = 1  # unparseable: the parse error is the finding
            checked = 0
            findings = []
        elif any(d.severity == "error" for d in diagnostics):
            print(
                f"lint (source): {len(diagnostics)} diagnostic(s), "
                "IR checks skipped"
            )
            total = len(diagnostics)
            checked = 0
            findings = []
        else:
            program = _compile_spec(args.target, source)
            for func in program.functions.values():
                implicit_cleanup(func)
            if args.function:
                func = _select_function(program, args.function)
                findings = sanitize_function(
                    func, program=program, mode=args.mode
                )
                checked = 1
            else:
                findings = sanitize_program(program, mode=args.mode)
                checked = len(program.functions)
            total = len(diagnostics) + len(findings)
            for finding in findings:
                print(finding)
            noun = "function" if checked == 1 else "functions"
            print(
                f"lint ({args.mode}): {checked} {noun} checked, "
                f"{total} finding(s)"
            )
        if tracer is not None:
            tracer.emit(
                "lint_source",
                target=args.target,
                diagnostics=total - len(findings),
                findings=len(findings),
                functions=checked,
            )
        ok = True
    finally:
        _close_tracer(tracer, ok)
    return 1 if total else 0


def _lint_source(spec: str, source: str):
    """Source-level diagnostics for a mini-C target, spans included.

    Prints every semantic diagnostic with its caret span and returns
    the diagnostic list, or None after reporting a parse error (which
    also carries a span when the error has a position).
    """
    from repro.frontend import parse
    from repro.frontend.errors import CompileError, format_error
    from repro.frontend.sema import analyze

    filename = spec if not spec.startswith("bench:") else f"<{spec}>"
    try:
        unit = parse(source)
    except CompileError as error:
        print(format_error(error, source, filename))
        return None
    sema = analyze(unit)
    for diagnostic in sema.diagnostics:
        print(diagnostic.format(filename, source))
    return sema.diagnostics


def cmd_fuzz(args) -> int:
    """Stream generated well-typed programs through the full pipeline.

    Each program must clear the semantic gate with zero diagnostics,
    sanitize clean, and survive a bounded enumeration of every function
    with per-edge guards at ``--sanitize`` strength.  Any failure is
    shrunk with a line-granular ddmin before being reported.
    """
    from repro.frontend.fuzz import fuzz_source, minimize_lines

    if args.count <= 0:
        raise SystemExit("--count must be positive")
    tracer = _build_tracer(args, "repro.fuzz") if args.run_dir else None
    failures = 0
    ok = False
    try:
        for index in range(args.count):
            source = fuzz_source(args.seed, index)
            failure = _fuzz_check(source, args)
            if failure is None:
                continue
            failures += 1
            kind, detail = failure
            print(f"fuzz: program {index} (seed {args.seed}) failed "
                  f"[{kind}]: {detail}")
            if tracer is not None:
                tracer.emit(
                    "fuzz_program", index=index, kind=kind, detail=detail
                )
            if not args.no_minimize:
                def still_fails(candidate: str) -> bool:
                    result = _fuzz_check(candidate, args)
                    return result is not None and result[0] == kind

                reduced = minimize_lines(source, still_fails)
                print("minimized reproducer:")
                print(reduced)
        if tracer is not None:
            tracer.emit(
                "fuzz_run",
                count=args.count,
                seed=args.seed,
                failures=failures,
                sanitize=args.sanitize,
            )
        ok = True
    finally:
        _close_tracer(tracer, ok)
    print(
        f"fuzz: {args.count} program(s), seed {args.seed}, "
        f"sanitize={args.sanitize}, {failures} failure(s)"
    )
    return 1 if failures else 0


def _fuzz_check(args_source: str, args):
    """``(kind, detail)`` when one generated program fails, else None.

    Stages: the semantic gate (any diagnostic on generated code is a
    generator or analyzer bug), the whole-program sanitizer, then a
    bounded guarded enumeration of every function.
    """
    from repro.staticanalysis import sanitize_program

    try:
        program = compile_source(args_source)
    except CompileError as error:
        return "compile", str(error)
    except RecursionError:
        return "compile", "recursion limit exceeded"
    findings = sanitize_program(program, mode=args.sanitize)
    if findings:
        first = findings[0]
        return "sanitize", f"{len(findings)} finding(s), first: {first}"
    for name, func in program.functions.items():
        work = func.clone()
        implicit_cleanup(work)
        config = EnumerationConfig(
            max_nodes=args.max_nodes,
            time_limit=args.time_limit,
            sanitize=args.sanitize,
            difftest=args.difftest,
            program=program,
        )
        result = enumerate_space(work, config)
        if len(result.quarantine):
            record = result.quarantine.records[0]
            return (
                f"quarantine:{record.kind}",
                f"{name}: {len(result.quarantine)} rejection(s), "
                f"first: phase {record.phase_id} ({record.detail})",
            )
        stats = result.sanitize_stats or {}
        if stats.get("refuted"):
            return (
                "transval",
                f"{name}: {stats['refuted']} refuted edge(s)",
            )
    return None


def _infer_ir_metadata(func) -> None:
    """Reconstruct the metadata a bare RTL dump does not carry.

    A printed function records only blocks and instructions; the
    pseudo-register high-water mark and the frame extent are inferred
    from what the code actually touches, so the sanitizer's width and
    bounds checks run against the dump's own footprint instead of the
    zero defaults (which would flag every pseudo and frame access).
    """
    from repro.ir.instructions import Assign, Compare
    from repro.ir.operands import BinOp, Const, Mem, Reg
    from repro.machine.target import FP

    max_pseudo = -1
    frame_top = 0

    def fp_offset(expr, env):
        """Constant fp-relative offset of *expr*, or None."""
        if isinstance(expr, Reg):
            if expr == FP:
                return 0
            return env.get(expr)
        if (
            isinstance(expr, BinOp)
            and expr.op == "add"
            and isinstance(expr.right, Const)
        ):
            base = fp_offset(expr.left, env)
            if base is not None:
                return base + expr.right.value
        return None

    for block in func.blocks:
        # Local propagation of registers holding fp+c; block-scoped is
        # enough for an inference heuristic (address arithmetic is
        # emitted next to its memory access).
        env = {}
        for inst in block.insts:
            for reg in inst.defs() | inst.uses():
                if reg.pseudo:
                    max_pseudo = max(max_pseudo, reg.index)
            exprs = []
            if isinstance(inst, Assign):
                exprs = [inst.src, inst.dst]
            elif isinstance(inst, Compare):
                exprs = [inst.left, inst.right]
            for expr in exprs:
                for node in expr.walk():
                    if isinstance(node, Mem):
                        offset = fp_offset(node.addr, env)
                        if offset is not None and offset >= 0:
                            frame_top = max(frame_top, offset + 4)
            if isinstance(inst, Assign) and isinstance(inst.dst, Reg):
                offset = fp_offset(inst.src, env)
                if offset is not None:
                    env[inst.dst] = offset
                else:
                    env.pop(inst.dst, None)
    func.next_pseudo = max_pseudo + 1
    func.frame_size = frame_top

    # Arity: a dump carries no parameter list, so the definedness seed
    # would treat every argument register as undefined.  Argument
    # registers live into the entry block *are* the arguments.
    from repro.analysis.cache import liveness_of
    from repro.machine.target import ARG_REGS

    live_in = liveness_of(func).live_in.get(func.entry.label, frozenset())
    arity = max(
        (index + 1 for index, reg in enumerate(ARG_REGS) if reg in live_in),
        default=0,
    )
    func.params = [f"p{index}" for index in range(arity)]
    func.invalidate_analyses()


def _lint_run_dir(run_dir: str, mode: str):
    """Lint a run dir: journal schema + every checkpointed instance."""
    import glob
    import json as json_mod

    from repro.core import checkpoint as ckpt
    from repro.observability.events import JOURNAL_NAME, validate_journal
    from repro.staticanalysis import Finding, sanitize_function

    findings = []
    checked = 0
    journal = os.path.join(run_dir, JOURNAL_NAME)
    if os.path.exists(journal):
        _records, errors = validate_journal(journal)
        for error in errors:
            findings.append(
                Finding("JRN001", JOURNAL_NAME, "journal", error)
            )
    candidates = sorted(glob.glob(os.path.join(run_dir, "*.json")))
    saw_input = False
    for path in candidates:
        try:
            with open(path) as handle:
                state = json_mod.load(handle)
        except (OSError, ValueError):
            continue
        if not isinstance(state, dict) or "functions" not in state:
            continue
        saw_input = True
        for entry in state["functions"].values():
            try:
                func = ckpt.function_from_dict(entry)
            except Exception as error:
                findings.append(
                    Finding(
                        "CKP001",
                        entry.get("name", "?") if isinstance(entry, dict) else "?",
                        os.path.basename(path),
                        f"unparseable checkpointed instance: {error}",
                    )
                )
                continue
            findings.extend(sanitize_function(func, mode=mode))
            checked += 1
    if not saw_input and not os.path.exists(journal):
        raise SystemExit(
            f"{run_dir}: no {JOURNAL_NAME} or checkpoint files found "
            "— not a run dir?"
        )
    return findings, checked


def cmd_interactions(args) -> int:
    program = _load_program(args.file)
    names = args.functions.split(",") if args.functions else list(program.functions)
    config = EnumerationConfig(
        max_nodes=args.max_nodes,
        time_limit=args.time_limit,
        engine=args.engine,
    )
    funcs = []
    for name in names:
        func = program.functions.get(name)
        if func is None:
            raise SystemExit(f"no function {name!r}")
        clone = func.clone()
        implicit_cleanup(clone)
        funcs.append((name, clone))
    tracer = (
        _build_tracer(args, "repro.interactions")
        if getattr(args, "run_dir", None)
        else None
    )
    ok = False
    try:
        if args.jobs > 1 or args.store:
            from repro.parallel import EnumerationRequest, ParallelEnumerator

            parallel, reporter = _parallel_service(
                args, args.store, args.progress, args.run_dir, tracer
            )
            requests = [EnumerationRequest(name, func) for name, func in funcs]
            try:
                results = ParallelEnumerator(config, parallel).enumerate(requests)
            finally:
                if reporter is not None:
                    reporter.close()
        else:
            results = [enumerate_space(func, config) for _name, func in funcs]
        ok = True
    finally:
        _close_tracer(tracer, ok)
    for (name, _func), result in zip(funcs, results):
        status = "complete" if result.completed else "truncated"
        if result.resumed_from and result.resumed_from.startswith("store:"):
            status += ", cached"
        print(
            f"{name}: {len(result.dag)} instances ({status})", file=sys.stderr
        )
    analysis = analyze_interactions(results)
    print(analysis.format_enabling())
    print()
    print(analysis.format_disabling())
    print()
    print(analysis.format_independence())
    return 0


def cmd_report(args) -> int:
    import json

    from repro.observability.report import (
        ReportError,
        render_report,
        summarize_run,
    )

    try:
        summary = summarize_run(args.run_dir)
    except ReportError as error:
        raise SystemExit(str(error))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=str))
    else:
        print(render_report(summary))
    return 0


def cmd_serve(args) -> int:
    from repro.service.server import ServiceConfig, serve_main

    config = ServiceConfig(
        run_dir=args.run_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_concurrency=args.tenant_concurrency,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        executor_retries=args.executor_retries,
        drain_grace=args.drain_grace,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        store_root=args.store,
        memory_watermark_mb=args.memory_watermark,
    )
    return serve_main(config)


def cmd_search(args) -> int:
    program = _load_program(args.file)
    func = _select_function(program, args.function)
    implicit_cleanup(func)
    if args.strategy == "ga":
        # the historical direct path, so --length/--generations work
        strategy = GeneticSearcher(
            func,
            sequence_length=args.length,
            generations=args.generations,
            seed=args.seed,
        )
    else:
        interactions = None
        if args.strategy == "policy":
            # the policy is table-driven; measure this function's own
            # interaction tables from its (budgeted) enumerated space
            space = enumerate_space(
                func, EnumerationConfig(max_nodes=args.max_nodes)
            )
            interactions = analyze_interactions([space])
        strategy = STRATEGY_BUILDERS[args.strategy](
            func, codesize_objective, args.seed, interactions
        )
    result = strategy.run()
    print(f"strategy      : {strategy.name}")
    print(f"best sequence : {''.join(result.best_sequence)}")
    print(f"code size     : {result.best_fitness:.0f} instructions")
    print(
        f"evaluations   : {result.evaluations} "
        f"({result.cache_hits} avoided by the fingerprint cache), "
        f"{result.attempted_phases} phases attempted"
    )
    print(format_function(result.best_function))
    return 0


def cmd_search_bench(args) -> int:
    from repro.search.harness import (
        HarnessConfig,
        QUICK_FUNCTIONS,
        SEED_FUNCTIONS,
        SeedFunction,
        format_leaderboard,
        run_search_bench,
        write_leaderboard,
    )

    if args.functions:
        functions = []
        for spec in args.functions.split(","):
            benchmark, _, function = spec.strip().partition(".")
            if not function:
                raise SystemExit(
                    f"bad --functions entry {spec!r}; expected BENCH.FUNCTION"
                )
            if benchmark not in PROGRAMS:
                raise SystemExit(
                    f"unknown benchmark {benchmark!r}; "
                    f"try: {', '.join(sorted(PROGRAMS))}"
                )
            functions.append(SeedFunction(benchmark, function))
        functions = tuple(functions)
    else:
        functions = QUICK_FUNCTIONS if args.quick else SEED_FUNCTIONS
    strategies = (
        tuple(s.strip() for s in args.strategies.split(","))
        if args.strategies
        else tuple(STRATEGY_BUILDERS)
    )
    trials = args.trials
    if trials is None:
        trials = 2 if args.quick else 3
    config = HarnessConfig(
        functions=functions,
        strategies=strategies,
        trials=trials,
        seed=args.seed,
        objective=args.objective,
        max_nodes=args.max_nodes,
        time_limit=args.time_limit,
        store=args.store,
        quick=args.quick,
    )
    tracer = _build_tracer(args, "repro.search-bench") if args.run_dir else None
    ok = False
    try:
        try:
            leaderboard = run_search_bench(config)
        except ValueError as error:
            raise SystemExit(str(error))
        print(format_leaderboard(leaderboard))
        path = write_leaderboard(leaderboard, args.out)
        print(f"\nleaderboard written to {path}")
        ok = True
    finally:
        _close_tracer(tracer, ok)
    return 0


def cmd_list_benchmarks(args) -> int:
    for name, bench in sorted(PROGRAMS.items()):
        print(
            f"{name:14s} {bench.category:10s} entry={bench.entry:6s} "
            f"functions: {', '.join(bench.study_functions)}"
        )
    return 0


# ----------------------------------------------------------------------


def _add_parallel_arguments(p) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="enumerate with N worker processes (merged space is "
        "bit-identical to --jobs 1; see docs/PARALLEL.md)",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help="persistent space store; completed spaces are cached "
        "here and later runs hit the cache instead of re-enumerating",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="live status line on stderr (TTY only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exhaustive optimization phase order space exploration "
        "(CGO 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile mini-C and print RTL")
    p.add_argument("file", help="mini-C file or bench:NAME")
    p.add_argument("--function", help="only this function")
    p.add_argument("--sequence", help="phase letters to apply, e.g. sckshu")
    p.add_argument("--batch", action="store_true", help="full batch compilation")
    p.set_defaults(handler=cmd_compile)

    p = sub.add_parser("run", help="execute in the RTL interpreter")
    p.add_argument("file", help="mini-C file or bench:NAME")
    p.add_argument("--entry", help="function to call (benchmark default: its main)")
    p.add_argument("--batch", action="store_true", help="optimize before running")
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.add_argument(
        "--args",
        nargs="*",
        default=[],
        metavar="N",
        help="integer arguments passed to the entry function",
    )
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("enumerate", help="enumerate a phase order space")
    p.add_argument("file", help="mini-C file or bench:NAME")
    p.add_argument("--function", required=True)
    p.add_argument("--max-nodes", type=int, default=20_000)
    p.add_argument("--time-limit", type=float, default=300.0)
    p.add_argument(
        "--engine",
        choices=["flat", "object"],
        default="flat",
        help="expansion engine: 'flat' attempts phases on the packed "
        "array-of-tables IR (the default; ~10x faster cold), 'object' "
        "forces the original object-IR path (see docs/DESIGN.md)",
    )
    p.add_argument(
        "--collapse",
        choices=["syntactic", "semantic"],
        default="syntactic",
        help="instance-merging mode: 'syntactic' (the default) is the "
        "paper's remap+CRC dedup; 'semantic' additionally merges "
        "instances whose canonical symbolic summaries are proved (or "
        "VM-co-execution-tested) equivalent — unproven collisions stay "
        "split; see docs/COLLAPSE.md",
    )
    p.add_argument("--exact", action="store_true", help="verify no hash collisions")
    p.add_argument("--dot", help="write the space DAG as Graphviz to this file")
    p.add_argument(
        "--validate",
        action="store_true",
        help="validate the IR after every active phase; malformed "
        "results are quarantined instead of entering the space",
    )
    p.add_argument(
        "--difftest",
        action="store_true",
        help="differential-test every candidate in the VM interpreter "
        "against the unoptimized function on recorded input vectors",
    )
    p.add_argument(
        "--sanitize",
        nargs="?",
        const="full",
        choices=["fast", "full"],
        default=None,
        help="statically verify every applied edge: 'fast' runs the IR "
        "sanitizer and phase-contract checker, 'full' (the default "
        "when the flag is given bare) adds per-edge translation "
        "validation with VM co-execution fallback — see "
        "docs/STATIC_ANALYSIS.md",
    )
    p.add_argument(
        "--phase-timeout",
        type=float,
        metavar="SECONDS",
        help="quarantine any phase application running longer than this",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically persist the enumeration state to PATH",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from the --checkpoint file when it exists",
    )
    p.add_argument(
        "--inject-faults",
        type=float,
        default=0.0,
        metavar="RATE",
        help="sabotage this fraction of phase applications "
        "(deterministic; exercises the guard paths)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=2006,
        help="random seed for --inject-faults",
    )
    _add_parallel_arguments(p)
    p.add_argument(
        "--run-dir",
        metavar="DIR",
        help="run journal directory (events.jsonl, manifest.json, "
        "checkpoints); works for serial and --jobs runs, makes both "
        "crash-safe and resumable; inspect with `repro report DIR`",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="profile the enumeration with cProfile; writes "
        "profile.pstats and a cumtime-sorted profile.txt to --run-dir "
        "(or the working directory)",
    )
    p.set_defaults(handler=cmd_enumerate)

    p = sub.add_parser(
        "profile",
        help="profile one enumeration with cProfile and print where "
        "the time goes",
    )
    p.add_argument("file", help="mini-C file or bench:NAME")
    p.add_argument("--function", required=True)
    p.add_argument("--max-nodes", type=int, default=20_000)
    p.add_argument("--time-limit", type=float, default=300.0)
    p.add_argument(
        "--engine",
        choices=["flat", "object"],
        default="flat",
        help="expansion engine to profile (default: flat)",
    )
    p.add_argument(
        "--cold",
        action="store_true",
        help="reset the flat-kernel caches first, so the run measures "
        "a fresh process instead of this one's warm state",
    )
    p.add_argument(
        "--sort",
        default="cumulative",
        metavar="KEY",
        help="pstats sort key for the printed table "
        "(default: cumulative; try tottime, ncalls)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="rows of the stats table to print (default: 25)",
    )
    p.add_argument(
        "--run-dir",
        metavar="DIR",
        help="also write profile.pstats/profile.txt and a journal with "
        "a profile_run event here",
    )
    p.set_defaults(handler=cmd_profile)

    p = sub.add_parser(
        "lint", help="statically check IR (sanitizer + dataflow checks)"
    )
    p.add_argument(
        "target",
        help="mini-C file, bench:NAME, a printed-RTL .ir file, or a "
        "run dir with checkpointed instances",
    )
    p.add_argument("--function", help="only this function (source targets)")
    p.add_argument(
        "--mode",
        choices=["fast", "full"],
        default="full",
        help="fast: structural/machine/frame/call checks; full adds "
        "the dataflow definedness, frame-bounds and memory-access "
        "analyses",
    )
    p.add_argument(
        "--run-dir",
        metavar="DIR",
        help="write a journal with a lint_source event here "
        "(source targets)",
    )
    p.set_defaults(handler=cmd_lint)

    p = sub.add_parser(
        "fuzz",
        help="stream generated well-typed programs through the "
        "frontend, sanitizer, and guarded enumeration",
    )
    p.add_argument(
        "--count", type=int, default=25, metavar="N",
        help="programs to generate (default: 25)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="generator seed; (seed, index) fixes each program, so a "
        "failure reproduces without regenerating the stream",
    )
    p.add_argument(
        "--sanitize",
        choices=["fast", "full"],
        default="full",
        help="per-edge guard strength during enumeration (default: "
        "full — sanitizer battery, phase contracts, and translation "
        "validation)",
    )
    p.add_argument(
        "--difftest",
        action="store_true",
        help="also co-execute every instance against the source "
        "program in the VM",
    )
    p.add_argument(
        "--max-nodes", type=int, default=48, metavar="N",
        help="enumeration budget per function (default: 48)",
    )
    p.add_argument(
        "--time-limit", type=float, default=10.0, metavar="SECONDS",
        help="enumeration wall-clock budget per function (default: 10)",
    )
    p.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without shrinking them (ddmin re-runs "
        "the whole pipeline per reduction step)",
    )
    p.add_argument(
        "--run-dir",
        metavar="DIR",
        help="journal directory: one fuzz_program event per failure "
        "plus a fuzz_run summary",
    )
    p.set_defaults(handler=cmd_fuzz)

    p = sub.add_parser("interactions", help="print Tables 4/5/6")
    p.add_argument("file", help="mini-C file or bench:NAME")
    p.add_argument("--functions", help="comma-separated subset")
    p.add_argument("--max-nodes", type=int, default=4000)
    p.add_argument("--time-limit", type=float, default=60.0)
    p.add_argument(
        "--engine",
        choices=["flat", "object"],
        default="flat",
        help="expansion engine (flat: packed-IR kernels; object: the "
        "original path)",
    )
    _add_parallel_arguments(p)
    p.add_argument(
        "--run-dir",
        metavar="DIR",
        help="run journal directory (events.jsonl, manifest.json); "
        "inspect with `repro report DIR`",
    )
    p.set_defaults(handler=cmd_interactions)

    p = sub.add_parser("report", help="summarize a run dir's telemetry")
    p.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="the --run-dir of a previous enumerate/interactions run",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    p.set_defaults(handler=cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the enumeration service (JSON over HTTP); "
        "see docs/SERVICE.md",
    )
    p.add_argument(
        "--run-dir",
        required=True,
        metavar="DIR",
        help="service state root: journal, manifest, per-work-key "
        "checkpoints, the shared space store, and service.json (the "
        "bound port); a restarted server on the same DIR resumes "
        "drained work bit-identically",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound port is announced on "
        "stdout and in DIR/service.json)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent executor subprocesses",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="admitted requests allowed to wait for a worker; beyond "
        "this the server sheds with 429 + Retry-After",
    )
    p.add_argument(
        "--tenant-rate",
        type=float,
        default=10.0,
        metavar="R",
        help="sustained requests/second per tenant (token bucket)",
    )
    p.add_argument(
        "--tenant-burst", type=float, default=20.0, metavar="B",
        help="token-bucket burst capacity per tenant",
    )
    p.add_argument(
        "--tenant-concurrency",
        type=int,
        default=4,
        metavar="N",
        help="in-flight request quota per tenant",
    )
    p.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline applied to requests that name none",
    )
    p.add_argument(
        "--max-deadline", type=float, default=600.0, metavar="SECONDS",
        help="ceiling on any requested deadline",
    )
    p.add_argument(
        "--executor-retries",
        type=int,
        default=2,
        metavar="N",
        help="crash retries per request (resume makes them cheap)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="how long a SIGTERM'd server waits for in-flight work to "
        "checkpoint before exiting",
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive executor failures before a work key is "
        "circuit-broken",
    )
    p.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="how long an open circuit rejects before a half-open probe",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help="space store shared across requests (default: RUN_DIR/store)",
    )
    p.add_argument(
        "--memory-watermark",
        type=float,
        default=None,
        metavar="MB",
        help="shed with 503 while resident memory exceeds this",
    )
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser("search", help="heuristic search for a phase ordering")
    p.add_argument("file", help="mini-C file or bench:NAME")
    p.add_argument("--function", required=True)
    p.add_argument(
        "--strategy",
        choices=sorted(STRATEGY_BUILDERS),
        default="ga",
        help="which searcher to run (default: ga)",
    )
    p.add_argument("--length", type=int, default=12)
    p.add_argument("--generations", type=int, default=15)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument(
        "--max-nodes",
        type=int,
        default=20_000,
        help="space budget when --strategy policy measures its "
        "interaction tables",
    )
    p.set_defaults(handler=cmd_search)

    p = sub.add_parser(
        "search-bench",
        help="score search strategies against the exhaustive optimum",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI subset: two seed functions, two trials",
    )
    p.add_argument(
        "--functions",
        metavar="BENCH.FUNC,...",
        help="comma-separated seed functions (default: the six-benchmark set)",
    )
    p.add_argument(
        "--strategies",
        metavar="NAME,...",
        help="comma-separated strategies "
        f"(default: all of {', '.join(STRATEGY_BUILDERS)})",
    )
    p.add_argument(
        "--trials",
        type=int,
        default=None,
        help="independent seeded trials per strategy "
        "(default: 3, or 2 with --quick)",
    )
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument(
        "--objective",
        choices=("code_size", "dynamic_count", "cycles", "energy"),
        default="dynamic_count",
        help="the single objective strategies are scored on",
    )
    p.add_argument(
        "--max-nodes",
        type=int,
        default=20_000,
        help="refuse seed functions whose space exceeds this",
    )
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument(
        "--store",
        metavar="DIR",
        help="space store: enumerations are cached here and warm runs "
        "rebuild instances from the cached DAG",
    )
    p.add_argument(
        "--out",
        default=os.path.join("benchmarks", "results", "search.json"),
        help="leaderboard JSON path (default: benchmarks/results/search.json)",
    )
    p.add_argument(
        "--run-dir",
        help="write a run manifest and search_* event journal here",
    )
    p.set_defaults(handler=cmd_search_bench)

    p = sub.add_parser("list-benchmarks", help="show bundled benchmarks")
    p.set_defaults(handler=cmd_list_benchmarks)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
