"""Persistent store of merged, fully-enumerated phase order spaces.

Repeated benchmark sweeps enumerate the same functions over and over;
the store turns the second and later runs into cache hits.  Each entry
persists one *completed* enumeration — the space DAG plus its counters
— keyed by everything that shapes the space:

- the function's canonical root instance (its fingerprint key, which
  covers the actual post-``implicit_cleanup`` RTL, not just the name);
- the phase set and the space-shaping config switches (``remap``,
  ``exact``);
- the guard switches that can change dormancy (``validate``,
  ``difftest``, ``phase_timeout``).

Runs with a fault injector are never stored: sabotage makes the space
depend on the application order, which a parallel run does not
reproduce.  Truncated (aborted) enumerations are never stored either —
a cache must not serve a partial space as the real one.

Entries are single JSON files written atomically through
:func:`repro.core.checkpoint.save_checkpoint`, so a crash mid-write
can never corrupt the store.  Unreadable or incompatible entries are
treated as misses (and reported through the telemetry layer), never as
errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, Optional

from repro.core import checkpoint as ckpt
from repro.core.enumeration import EnumerationConfig, EnumerationResult
from repro.core.memo import TransitionMemo
from repro.robustness.quarantine import QuarantineLog

STORE_VERSION = 1


class StoreError(ckpt.CheckpointError):
    """A store entry is unreadable, corrupt, or incompatible.

    Subclasses :class:`~repro.core.checkpoint.CheckpointError`, so it
    carries the same ``CKP001`` diagnostic — persisted-state corruption
    is one failure class whether the file is a checkpoint or a cache
    entry.  The cache-consulting path (:meth:`SpaceStore.get`) catches
    it and degrades to a miss; :meth:`SpaceStore.load_entry` is the
    strict loader for callers that asked for this entry specifically.
    """


def store_signature(config: EnumerationConfig) -> Dict[str, object]:
    """The config fields a cached space must agree on.

    Extends the checkpoint signature with the guard switches: a space
    enumerated with ``--validate`` can differ from an unguarded one
    (quarantined applications read as dormant), so they must not share
    cache entries.  Budgets stay excluded — a *completed* run yields
    the same space under any budget.
    """
    signature = dict(config.signature())
    # difftest keys on the flag alone (not on whether a program is
    # attached): parallel runs carry source text per request rather
    # than a Program on the config, and a difftest-on space must never
    # share an entry with an unguarded one.
    signature.update(
        validate=config.validate,
        difftest=bool(config.difftest),
        phase_timeout=config.phase_timeout,
        sanitize=config.sanitize,
    )
    return signature


def cacheable(config: EnumerationConfig) -> bool:
    """Whether results under *config* may be stored at all."""
    return config.fault_injector is None


class SpaceStore:
    """A directory of merged spaces keyed by (function, phases, config)."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: store telemetry for the session
        self.hits = 0
        self.misses = 0
        #: entries that existed but failed to load (counted as misses
        #: too); a nonzero value means the store directory is damaged
        self.corrupt = 0

    # ------------------------------------------------------------------

    def entry_path(self, function_name: str, root_key, config: EnumerationConfig) -> str:
        digest = hashlib.sha256(
            json.dumps(
                {
                    "function": function_name,
                    "root_key": ckpt.key_to_json(root_key),
                    "config": store_signature(config),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()[:16]
        safe_name = re.sub(r"[^A-Za-z0-9_.-]", "_", function_name)
        return os.path.join(self.root, f"{safe_name}-{digest}.json")

    def load_entry(self, path: str, function_name: str) -> EnumerationResult:
        """Strictly load one store entry; raises :class:`StoreError`.

        Covers every way the file can be bad: unreadable/truncated
        JSON, failed integrity digest, wrong checkpoint or store
        version, an entry for a different function, and payloads that
        will not rebuild into a DAG.
        """
        try:
            state = ckpt.load_checkpoint(path)
        except ckpt.CheckpointError as error:
            raise StoreError(str(error)) from error
        if state.get("store_version") != STORE_VERSION:
            raise StoreError(
                f"store entry {path} has store_version "
                f"{state.get('store_version')!r}; this build reads "
                f"version {STORE_VERSION}"
            )
        if state.get("function_name") != function_name:
            raise StoreError(
                f"store entry {path} is for function "
                f"{state.get('function_name')!r}, not {function_name!r}"
            )
        try:
            dag = ckpt.dag_from_dict(function_name, state["dag"])
            return EnumerationResult(
                dag,
                completed=True,
                attempted_phases=state["attempted"],
                phases_applied=state["applied"],
                elapsed=state["elapsed"],
                quarantine=QuarantineLog.from_dicts(state["quarantine"]),
                levels_completed=state["levels_completed"],
                resumed_from=f"store:{path}",
            )
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise StoreError(
                f"store entry {path} is structurally invalid: "
                f"{type(error).__name__}: {error}"
            ) from error

    def get(
        self, function_name: str, root_key, config: EnumerationConfig
    ) -> Optional[EnumerationResult]:
        """The cached result for this exact space, or None.

        A damaged entry is a miss (and counts on ``self.corrupt``) —
        the caller asked "do you have this space", and a file we cannot
        trust means no.
        """
        path = self.entry_path(function_name, root_key, config)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            result = self.load_entry(path, function_name)
        except StoreError:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(
        self,
        function_name: str,
        root_key,
        config: EnumerationConfig,
        result: EnumerationResult,
    ) -> Optional[str]:
        """Persist a completed enumeration; returns its path, or None
        when the result is not cacheable (aborted, or fault-injected)."""
        if not result.completed or not cacheable(config):
            return None
        path = self.entry_path(function_name, root_key, config)
        ckpt.save_checkpoint(
            path,
            {
                "store_version": STORE_VERSION,
                "function_name": function_name,
                "root_key": ckpt.key_to_json(root_key),
                "config": store_signature(config),
                "dag": ckpt.dag_to_dict(result.dag),
                "attempted": result.attempted_phases,
                "applied": result.phases_applied,
                "elapsed": result.elapsed,
                "levels_completed": result.levels_completed,
                "quarantine": result.quarantine.to_dicts(),
            },
        )
        return path

    # ------------------------------------------------------------------
    # Phase-transition memo (the warm cross-run expansion cache)
    # ------------------------------------------------------------------

    def memo_path(self, config: EnumerationConfig) -> str:
        """One memo file per space-shaping config.

        Memo entries are keyed by content-based node keys, so a single
        table is shared by every function enumerated under the same
        phase set and switches — that is what makes cross-function and
        cross-run hits sound.
        """
        digest = hashlib.sha256(
            json.dumps(store_signature(config), sort_keys=True).encode()
        ).hexdigest()[:16]
        return os.path.join(self.root, f"memo-{digest}.json")

    def load_memo(self, config: EnumerationConfig) -> TransitionMemo:
        """The persisted memo for *config*; empty on miss/corruption."""
        path = self.memo_path(config)
        if not os.path.exists(path):
            return TransitionMemo()
        try:
            state = ckpt.load_checkpoint(path)
            return TransitionMemo.from_dict(state)
        except (ckpt.CheckpointError, KeyError, TypeError, ValueError):
            # An unreadable memo is a cold cache, never an error.
            return TransitionMemo()

    def save_memo(self, config: EnumerationConfig, memo: TransitionMemo) -> Optional[str]:
        """Persist *memo* (atomic write); None when not cacheable.

        Unlike full space entries, memo entries from an aborted run are
        still valid facts (each records one deterministic transition),
        so the caller may save after any unguarded, un-sabotaged run.
        """
        if not cacheable(config):
            return None
        path = self.memo_path(config)
        ckpt.save_checkpoint(path, memo.to_dict())
        return path

    def __len__(self) -> int:
        return sum(
            1
            for name in os.listdir(self.root)
            if name.endswith(".json") and not name.startswith("memo-")
        )

    def __repr__(self):
        return f"<SpaceStore {self.root}: {len(self)} entries>"
