"""Work-shard descriptors and per-shard crash recovery.

A **shard** is the unit of leased work: a slice of one function's
current frontier, expanded by exactly one worker at a time.  The
coordinator decomposes a compilation job top-down — program →
functions → frontier-level sub-shards when a level grows past the
shard size — and every descriptor and result is a plain
JSON-serializable dict so it can cross process boundaries and be
journaled to disk.

Shard spec (coordinator → worker)::

    {
      "shard_id":      17,            // globally unique, creation order
      "job_id":        2,             // which function job it belongs to
      "function_name": "rol",
      "source":        "...",         // mini-C text; only when difftest is on
      "level":         3,             // frontier level being expanded
      "nodes": [
        {"node_id": 41,
         "function": {...},           // repro.core.checkpoint function dict
         "skip":     ["c", "s"]},     // arrival phases at shard creation
        ...
      ]
    }

Shard result (worker → coordinator)::

    {
      "shard_id": 17, "job_id": 2, "level": 3,
      "expansions": [[41, [outcome, ...]], ...],   // frontier order
      "functions":  {keystr: function dict},       // one per new key
      "texts":      {keystr: remapped text},       // exact mode only
      "wall":       0.84, "attempts": 112,
    }

where each *outcome* is ``{"phase": id, "active": bool}`` plus — for
active phases — ``key`` (JSON-ified node key), ``num_insts``,
``cf_crc``; and, when guards ran, the ``quarantine`` records the
attempt produced.  ``keystr`` is ``json.dumps`` of the JSON-ified key,
so results stay pure JSON.

Outcomes are recorded for **every** phase not in the shard-creation
``skip`` set, in phase order; the merge step replays them serially and
discards the ones that became arrival phases after the shard was cut.

Per-shard checkpoints reuse the PR-1 checkpoint machinery
(:func:`repro.core.checkpoint.save_checkpoint` — versioned, atomic):
a worker expanding a large shard periodically persists its completed
node expansions, and whichever worker is re-leased the shard after a
crash resumes from the last instance boundary instead of restarting.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.core import checkpoint as ckpt
from repro.robustness.faults import FaultInjector


def partition(items: Sequence, size: int) -> List[List]:
    """Split *items* into consecutive chunks of at most *size*."""
    if size <= 0:
        raise ValueError(f"shard size must be positive, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def auto_shard_size(frontier_len: int, workers: int) -> int:
    """Default nodes-per-shard: enough shards to keep every worker busy
    (about two waves per level), without degenerating into per-node
    dispatch overhead on wide frontiers."""
    return max(1, min(64, -(-frontier_len // max(1, workers * 2))))


def shard_checkpoint_path(run_dir: str, shard_id: int) -> str:
    return os.path.join(run_dir, f"shard-{shard_id:06d}.json")


def save_shard_checkpoint(
    run_dir: str,
    shard_id: int,
    expansions: List,
    functions: Dict[str, dict],
    texts: Dict[str, str],
    injector: Optional[FaultInjector],
) -> None:
    """Atomically persist a shard's completed node expansions."""
    ckpt.save_checkpoint(
        shard_checkpoint_path(run_dir, shard_id),
        {
            "function_name": f"shard-{shard_id}",
            "shard_id": shard_id,
            "expansions": expansions,
            "functions": functions,
            "texts": texts,
            "injector_applications": injector.applications if injector else 0,
        },
    )


def load_shard_checkpoint(run_dir: str, shard_id: int) -> Optional[Dict]:
    """The previous lease's partial results, or None when absent/bad."""
    path = shard_checkpoint_path(run_dir, shard_id)
    if not os.path.exists(path):
        return None
    try:
        state = ckpt.load_checkpoint(path)
    except ckpt.CheckpointError:
        return None
    if state.get("shard_id") != shard_id:
        return None
    return state


def discard_shard_checkpoint(run_dir: str, shard_id: int) -> None:
    try:
        os.unlink(shard_checkpoint_path(run_dir, shard_id))
    except OSError:
        pass


def shard_fault_injector(
    fault: Optional[Dict], shard_id: int
) -> Optional[FaultInjector]:
    """A deterministic injector for one shard.

    Seeding mixes the run seed with the shard id, so a shard produces
    the same fault decisions no matter which worker runs it or how
    many times its lease is reclaimed — re-leased work is replayable.
    """
    if not fault:
        return None
    return FaultInjector(
        seed=(fault["seed"] * 1_000_003 + shard_id) & 0x7FFFFFFF,
        rate=fault["rate"],
        modes=tuple(fault["modes"]),
    )


def fast_forward_injector(
    injector: FaultInjector, applications: int, timeout: Optional[float]
) -> None:
    """Replay *applications* decisions so a resumed shard continues the
    same fault stream (the skipped nodes' decisions are re-drawn in
    order, consuming exactly the RNG state the original lease did)."""
    for _ in range(applications):
        if injector.should_inject():
            injector.choose_mode(timeout)
            injector.injected += 1
